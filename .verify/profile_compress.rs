//! Phase breakdown of QSGD compress at 4 bits / bucket 128 over 1M elems.

use cgx_compress::{pack_fixed, BitWriter};
use cgx_tensor::{Rng, Tensor};
use std::hint::black_box;
use std::time::Instant;

const N: usize = 1 << 20;

fn best(mut f: impl FnMut()) -> f64 {
    let mut b = f64::INFINITY;
    for _ in 0..7 {
        let t = Instant::now();
        f();
        b = b.min(t.elapsed().as_secs_f64());
    }
    N as f64 / b / 1e6
}

fn main() {
    let mut rng = Rng::seed_from_u64(1);
    let grad = Tensor::randn(&mut rng, &[N]);
    let data = grad.as_slice();
    let bucket_size = 128usize;
    let bits = 4u32;
    let s = 7.0f64;
    let offset = 7u32;
    const SCALE_2_53: f64 = (1u64 << 53) as f64;

    // Phase 1: norm pass (serial fold, as bucket_norm does).
    let m = best(|| {
        let mut acc = 0.0f64;
        for bucket in data.chunks(bucket_size) {
            let norm = bucket.iter().fold(0.0f64, |m, x| m.max(x.abs() as f64));
            acc += norm;
        }
        black_box(acc);
    });
    println!("norm serial fold: {m:.1} Melem/s");

    // Phase 1b: norm pass, 4-way unrolled (bit-identical for max).
    let m = best(|| {
        let mut acc = 0.0f64;
        for bucket in data.chunks(bucket_size) {
            let mut m0 = 0.0f64;
            let mut m1 = 0.0f64;
            let mut m2 = 0.0f64;
            let mut m3 = 0.0f64;
            let mut it = bucket.chunks_exact(4);
            for c in &mut it {
                m0 = m0.max(c[0].abs() as f64);
                m1 = m1.max(c[1].abs() as f64);
                m2 = m2.max(c[2].abs() as f64);
                m3 = m3.max(c[3].abs() as f64);
            }
            for &x in it.remainder() {
                m0 = m0.max(x.abs() as f64);
            }
            acc += m0.max(m1).max(m2.max(m3));
        }
        black_box(acc);
    });
    println!("norm 4-way:       {m:.1} Melem/s");

    // Phase 2: quantize to codes (RNG + rounding), no packing.
    let mut codes = vec![0u32; N];
    let mut qrng = Rng::seed_from_u64(2);
    let m = best(|| {
        let mut i = 0;
        for bucket in data.chunks(bucket_size) {
            let norm = bucket.iter().fold(0.0f64, |m, x| m.max(x.abs() as f64));
            let scale = s / norm;
            for &v in bucket {
                let scaled = (v.abs() as f64 * scale).min(s);
                let lower = scaled as u32;
                let threshold = ((scaled - lower as f64) * SCALE_2_53) as u64;
                let level = lower + u32::from((qrng.next_u64() >> 11) < threshold);
                codes[i] = if v < 0.0 { offset - level } else { offset + level };
                i += 1;
            }
        }
        black_box(codes[0]);
    });
    println!("norm+quantize:    {m:.1} Melem/s");

    // Phase 2a: branchless sign select.
    let m = best(|| {
        let mut i = 0;
        for bucket in data.chunks(bucket_size) {
            let norm = bucket.iter().fold(0.0f64, |m, x| m.max(x.abs() as f64));
            let scale = s / norm;
            for &v in bucket {
                let scaled = (v.abs() as f64 * scale).min(s);
                let lower = scaled as u32;
                let threshold = ((scaled - lower as f64) * SCALE_2_53) as u64;
                let level = lower + u32::from((qrng.next_u64() >> 11) < threshold);
                let neg = u32::from(v < 0.0);
                // offset - level when neg, offset + level otherwise.
                codes[i] = offset + level - ((neg * level) << 1);
                i += 1;
            }
        }
        black_box(codes[0]);
    });
    println!("quantize brless:  {m:.1} Melem/s");

    // Phase 2c: branchless + 2-wide rng interleave via chunks of 2.
    let m = best(|| {
        let mut i = 0;
        for bucket in data.chunks(bucket_size) {
            let norm = bucket.iter().fold(0.0f64, |m, x| m.max(x.abs() as f64));
            let scale = s / norm;
            let mut it = bucket.chunks_exact(2);
            for pair in &mut it {
                let (v0, v1) = (pair[0], pair[1]);
                let s0 = (v0.abs() as f64 * scale).min(s);
                let s1 = (v1.abs() as f64 * scale).min(s);
                let l0 = s0 as u32;
                let l1 = s1 as u32;
                let t0 = ((s0 - l0 as f64) * SCALE_2_53) as u64;
                let t1 = ((s1 - l1 as f64) * SCALE_2_53) as u64;
                let lv0 = l0 + u32::from((qrng.next_u64() >> 11) < t0);
                let lv1 = l1 + u32::from((qrng.next_u64() >> 11) < t1);
                let n0 = u32::from(v0 < 0.0);
                let n1 = u32::from(v1 < 0.0);
                codes[i] = offset + lv0 - ((n0 * lv0) << 1);
                codes[i + 1] = offset + lv1 - ((n1 * lv1) << 1);
                i += 2;
            }
            for &v in it.remainder() {
                let scaled = (v.abs() as f64 * scale).min(s);
                let lower = scaled as u32;
                let threshold = ((scaled - lower as f64) * SCALE_2_53) as u64;
                let level = lower + u32::from((qrng.next_u64() >> 11) < threshold);
                let neg = u32::from(v < 0.0);
                codes[i] = offset + level - ((neg * level) << 1);
                i += 1;
            }
        }
        black_box(codes[0]);
    });
    println!("quantize 2-wide:  {m:.1} Melem/s");

    // Phase 2b: RNG only.
    let m = best(|| {
        let mut acc = 0u64;
        for _ in 0..N {
            acc ^= qrng.next_u64();
        }
        black_box(acc);
    });
    println!("rng only:         {m:.1} Melem/s");

    // Phase 2d: phase-split — pass 1 computes lower+threshold (no RNG, no
    // branches on sign), pass 2 draws RNG in element order and selects.
    let mut lowers = vec![0u32; bucket_size];
    let mut thresholds = vec![0u64; bucket_size];
    let m = best(|| {
        let mut i = 0;
        for bucket in data.chunks(bucket_size) {
            let norm = bucket.iter().fold(0.0f64, |m, x| m.max(x.abs() as f64));
            let scale = s / norm;
            for (j, &v) in bucket.iter().enumerate() {
                let scaled = (v.abs() as f64 * scale).min(s);
                let lower = scaled as u32;
                lowers[j] = lower;
                thresholds[j] = ((scaled - lower as f64) * SCALE_2_53) as u64;
            }
            for (j, &v) in bucket.iter().enumerate() {
                let level = lowers[j] + u32::from((qrng.next_u64() >> 11) < thresholds[j]);
                codes[i] = if v < 0.0 { offset - level } else { offset + level };
                i += 1;
            }
        }
        black_box(codes[0]);
    });
    println!("quantize split:   {m:.1} Melem/s");

    // Phase 2e: phase-split, pass 2 fused directly into u64 word packing.
    let m = best(|| {
        let mut out = bytes::BytesMut::with_capacity(N / 2 + 40_000);
        use bytes::BufMut;
        for bucket in data.chunks(bucket_size) {
            let norm = bucket.iter().fold(0.0f64, |m, x| m.max(x.abs() as f64));
            let scale = s / norm;
            for (j, &v) in bucket.iter().enumerate() {
                let scaled = (v.abs() as f64 * scale).min(s);
                let lower = scaled as u32;
                lowers[j] = lower;
                thresholds[j] = ((scaled - lower as f64) * SCALE_2_53) as u64;
            }
            // 16 codes per u64 word at 4 bits.
            for (vc, (lc, tc)) in bucket
                .chunks(16)
                .zip(lowers.chunks(16).zip(thresholds.chunks(16)))
            {
                let mut acc = 0u64;
                let mut shift = 0u32;
                for ((&v, &lo), &th) in vc.iter().zip(lc).zip(tc) {
                    let level = lo + u32::from((qrng.next_u64() >> 11) < th);
                    let code = if v < 0.0 { offset - level } else { offset + level };
                    acc |= (code as u64) << shift;
                    shift += 4;
                }
                out.put_u64_le(acc);
            }
        }
        black_box(out);
    });
    println!("quantize fusepk:  {m:.1} Melem/s");

    // Phase 2f: integer-threshold quantize — decompose scaled's bit pattern
    // instead of cvttsd2si/cvtsi2sd/subsd/mulsd/cvttsd2si. Bit-identical:
    // t_all = floor(scaled * 2^53) computed exactly by shifting the mantissa.
    let m = best(|| {
        let mut i = 0;
        for bucket in data.chunks(bucket_size) {
            let norm = bucket.iter().fold(0.0f64, |m, x| m.max(x.abs() as f64));
            let scale = s / norm;
            for &v in bucket {
                let scaled = (v.abs() as f64 * scale).min(s);
                let b = scaled.to_bits();
                let sh = ((b >> 52) as i32) - 1022;
                let mant = (b & ((1u64 << 52) - 1)) | (1u64 << 52);
                let t_all = if sh >= 0 {
                    mant << sh as u32
                } else {
                    mant >> (-sh).min(63) as u32
                };
                let lower = (t_all >> 53) as u32;
                let threshold = t_all & ((1u64 << 53) - 1);
                let level = lower + u32::from((qrng.next_u64() >> 11) < threshold);
                codes[i] = if v < 0.0 { offset - level } else { offset + level };
                i += 1;
            }
        }
        black_box(codes[0]);
    });
    println!("quantize intthr:  {m:.1} Melem/s");

    // Phase 2g: split with integer-threshold pass 1 (no float->int casts,
    // pure bitcast + shifts: vectorizable), pass 2 RNG + select + code.
    let mut talls = vec![0u64; bucket_size];
    let m = best(|| {
        let mut i = 0;
        for bucket in data.chunks(bucket_size) {
            let norm = bucket.iter().fold(0.0f64, |m, x| m.max(x.abs() as f64));
            let scale = s / norm;
            for (j, &v) in bucket.iter().enumerate() {
                let scaled = (v.abs() as f64 * scale).min(s);
                let b = scaled.to_bits();
                let sh = ((b >> 52) as i32) - 1022;
                let mant = (b & ((1u64 << 52) - 1)) | (1u64 << 52);
                talls[j] = if sh >= 0 {
                    mant << (sh as u32 & 63)
                } else {
                    mant >> ((-sh) as u32).min(63)
                };
            }
            for (j, &v) in bucket.iter().enumerate() {
                let t_all = talls[j];
                let lower = (t_all >> 53) as u32;
                let threshold = t_all & ((1u64 << 53) - 1);
                let level = lower + u32::from((qrng.next_u64() >> 11) < threshold);
                codes[i] = if v < 0.0 { offset - level } else { offset + level };
                i += 1;
            }
        }
        black_box(codes[0]);
    });
    println!("quantize isplit:  {m:.1} Melem/s");

    // Pass 1 alone (vectorization probe).
    let m = best(|| {
        for bucket in data.chunks(bucket_size) {
            let norm = bucket.iter().fold(0.0f64, |m, x| m.max(x.abs() as f64));
            let scale = s / norm;
            for (j, &v) in bucket.iter().enumerate() {
                let scaled = (v.abs() as f64 * scale).min(s);
                let b = scaled.to_bits();
                let sh = ((b >> 52) as i32) - 1022;
                let mant = (b & ((1u64 << 52) - 1)) | (1u64 << 52);
                talls[j] = if sh >= 0 {
                    mant << (sh as u32 & 63)
                } else {
                    mant >> ((-sh) as u32).min(63)
                };
            }
            black_box(&talls);
        }
    });
    println!("isplit pass1:     {m:.1} Melem/s");

    // Pass 2 alone.
    let m = best(|| {
        let mut i = 0;
        for bucket in data.chunks(bucket_size) {
            for (j, &v) in bucket.iter().enumerate() {
                let t_all = talls[j];
                let lower = (t_all >> 53) as u32;
                let threshold = t_all & ((1u64 << 53) - 1);
                let level = lower + u32::from((qrng.next_u64() >> 11) < threshold);
                codes[i] = if v < 0.0 { offset - level } else { offset + level };
                i += 1;
            }
        }
        black_box(codes[0]);
    });
    println!("isplit pass2:     {m:.1} Melem/s");

    // Phase 2h: AVX2 pass 1 (explicit intrinsics) + fused pass 2/pack.
    #[cfg(target_arch = "x86_64")]
    {
        use std::arch::x86_64::*;
        #[target_feature(enable = "avx2")]
        unsafe fn talls_avx2(bucket: &[f32], scale: f64, s: f64, out: &mut [u64]) {
            let scale4 = _mm256_set1_pd(scale);
            let s4 = _mm256_set1_pd(s);
            let absmask = _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFF_FFFF_FFFF_FFFF));
            let mask52 = _mm256_set1_epi64x(0xF_FFFF_FFFF_FFFF);
            let bit52 = _mm256_set1_epi64x(1i64 << 52);
            let bias = _mm256_set1_epi64x(1022);
            let mut j = 0;
            while j + 4 <= bucket.len() {
                let v4 = _mm_loadu_ps(bucket.as_ptr().add(j));
                let d4 = _mm256_and_pd(_mm256_cvtps_pd(v4), absmask);
                let scaled = _mm256_min_pd(_mm256_mul_pd(d4, scale4), s4);
                let b = _mm256_castpd_si256(scaled);
                let sh = _mm256_sub_epi64(_mm256_srli_epi64(b, 52), bias);
                let mant = _mm256_or_si256(_mm256_and_si256(b, mask52), bit52);
                // Out-of-range shift counts yield 0 in sllv/srlv, so the
                // sh>=0 / sh<0 select collapses to an OR.
                let left = _mm256_sllv_epi64(mant, sh);
                let right = _mm256_srlv_epi64(mant, _mm256_sub_epi64(_mm256_setzero_si256(), sh));
                let t = _mm256_or_si256(left, right);
                _mm256_storeu_si256(out.as_mut_ptr().add(j) as *mut __m256i, t);
                j += 4;
            }
            for (o, &v) in out[j..bucket.len()].iter_mut().zip(&bucket[j..]) {
                let scaled = (v.abs() as f64 * scale).min(s);
                let b = scaled.to_bits();
                let sh = ((b >> 52) as i32) - 1022;
                let mant = (b & ((1u64 << 52) - 1)) | (1u64 << 52);
                *o = if sh >= 0 {
                    mant << (sh as u32 & 63)
                } else {
                    mant >> ((-sh) as u32).min(63)
                };
            }
        }

        if std::arch::is_x86_feature_detected!("avx2") {
            // Pass 1 alone.
            let m = best(|| {
                for bucket in data.chunks(bucket_size) {
                    let norm = bucket.iter().fold(0.0f64, |m, x| m.max(x.abs() as f64));
                    let scale = s / norm;
                    unsafe { talls_avx2(bucket, scale, s, &mut talls[..bucket.len()]) };
                    black_box(&talls);
                }
            });
            println!("avx2 pass1:       {m:.1} Melem/s");

            // Full compress: norm + avx2 pass1 + fused pass2/pack.
            let m = best(|| {
                use bytes::BufMut;
                let mut out = bytes::BytesMut::with_capacity(N / 2 + 40_000);
                for bucket in data.chunks(bucket_size) {
                    let norm = bucket.iter().fold(0.0f64, |m, x| m.max(x.abs() as f64));
                    let scale = s / norm;
                    unsafe { talls_avx2(bucket, scale, s, &mut talls[..bucket.len()]) };
                    for (vc, tc) in bucket.chunks(16).zip(talls.chunks(16)) {
                        let mut acc = 0u64;
                        let mut shift = 0u32;
                        for (&v, &t_all) in vc.iter().zip(tc) {
                            let lower = (t_all >> 53) as u32;
                            let threshold = t_all & ((1u64 << 53) - 1);
                            let level =
                                lower + u32::from((qrng.next_u64() >> 11) < threshold);
                            let code =
                                if v < 0.0 { offset - level } else { offset + level };
                            acc |= (code as u64) << shift;
                            shift += 4;
                        }
                        out.put_u64_le(acc);
                    }
                }
                black_box(&out);
                out.clear();
            });
            println!("avx2 full comp:   {m:.1} Melem/s");

            // Correctness: avx2 talls must match the scalar float sequence.
            let mut diffs = 0u64;
            for bucket in data.chunks(bucket_size) {
                let norm = bucket.iter().fold(0.0f64, |m, x| m.max(x.abs() as f64));
                let scale = s / norm;
                unsafe { talls_avx2(bucket, scale, s, &mut talls[..bucket.len()]) };
                for (j, &v) in bucket.iter().enumerate() {
                    let scaled = (v.abs() as f64 * scale).min(s);
                    let lower_f = scaled as u64;
                    let thr_f = ((scaled - lower_f as f64) * SCALE_2_53) as u64;
                    let t = talls[j];
                    if (t >> 53) != lower_f || (t & ((1u64 << 53) - 1)) != thr_f {
                        diffs += 1;
                    }
                }
            }
            println!("avx2 mismatches:  {diffs}");
        }
    }

    // Sanity: integer-threshold must equal the float sequence exactly.
    {
        let mut ra = Rng::seed_from_u64(9);
        let mut rb = Rng::seed_from_u64(9);
        let mut diffs = 0u64;
        for bucket in data.chunks(bucket_size) {
            let norm = bucket.iter().fold(0.0f64, |m, x| m.max(x.abs() as f64));
            let scale = s / norm;
            for &v in bucket {
                let scaled = (v.abs() as f64 * scale).min(s);
                let lower_f = scaled as u32;
                let thr_f = ((scaled - lower_f as f64) * SCALE_2_53) as u64;
                let lvl_f = lower_f + u32::from((ra.next_u64() >> 11) < thr_f);
                let b = scaled.to_bits();
                let sh = ((b >> 52) as i32) - 1022;
                let mant = (b & ((1u64 << 52) - 1)) | (1u64 << 52);
                let t_all = if sh >= 0 {
                    mant << sh as u32
                } else {
                    mant >> (-sh).min(63) as u32
                };
                let lower_i = (t_all >> 53) as u32;
                let thr_i = t_all & ((1u64 << 53) - 1);
                let lvl_i = lower_i + u32::from((rb.next_u64() >> 11) < thr_i);
                if lower_f != lower_i || thr_f != thr_i || lvl_f != lvl_i {
                    diffs += 1;
                }
            }
        }
        println!("intthr mismatches: {diffs}");
    }

    // Decode LUT: 16-entry table per bucket, then table lookup + add.
    let payload = {
        let mut out = bytes::BytesMut::with_capacity(N / 2 + 40_000);
        pack_fixed(&codes, bits, &mut out);
        out
    };
    let mut accbuf = vec![0.0f32; N];
    let norms: Vec<f64> = data
        .chunks(bucket_size)
        .map(|b| b.iter().fold(0.0f64, |m, x| m.max(x.abs() as f64)))
        .collect();
    let m = best(|| {
        let mut table = [0.0f32; 16];
        let mut i = 0;
        for (bi, norm) in norms.iter().enumerate() {
            for (c, t) in table.iter_mut().enumerate() {
                let signed = c as i64 - offset as i64;
                *t = (norm * signed as f64 / s) as f32;
            }
            let start = bi * bucket_size / 2;
            for &byte in &payload[start..start + bucket_size / 2] {
                accbuf[i] += table[(byte & 0xF) as usize];
                accbuf[i + 1] += table[(byte >> 4) as usize];
                i += 2;
            }
            black_box(&table);
        }
        black_box(accbuf[0]);
    });
    println!("lut decode_add:   {m:.1} Melem/s");

    // Phase 3: write_bits per element.
    let m = best(|| {
        let mut w = BitWriter::with_capacity(N / 2 + 40_000);
        for &c in &codes {
            w.write_bits(c, bits);
        }
        black_box(w.finish());
    });
    println!("write_bits:       {m:.1} Melem/s");

    // Phase 3b: pack_fixed.
    let m = best(|| {
        let mut out = bytes::BytesMut::with_capacity(N / 2 + 40_000);
        pack_fixed(&codes, bits, &mut out);
        black_box(out);
    });
    println!("pack_fixed:       {m:.1} Melem/s");
}
