#![warn(missing_docs)]
//! Model zoo: layer inventories and synthetic gradients for the six
//! workloads evaluated in the CGX paper.
//!
//! The paper's system-level behaviour depends on each model's *layer
//! profile* — how many parameters live in embeddings vs convolutions vs
//! norm/bias layers, and in which order gradients are produced during the
//! backward pass — rather than on the training data itself. This crate
//! reconstructs those profiles faithfully from the published architectures:
//!
//! | model | params | dominated by |
//! |---|---|---|
//! | ResNet50 | ~25.6 M | 3x3/1x1 convolutions |
//! | VGG16 | ~138 M | giant fully-connected head |
//! | ViT-B/16 | ~86 M | uniform transformer blocks |
//! | Transformer-XL base | ~191 M | a 137 M-parameter embedding |
//! | BERT base | ~109 M | transformer blocks + 23 M embedding |
//! | GPT-2 small | ~124 M | 38 M embedding + blocks |
//!
//! It also provides synthetic per-layer gradient generators with
//! layer-kind-dependent statistics, used by the accuracy and adaptive
//! compression experiments.
//!
//! # Examples
//!
//! ```
//! use cgx_models::{ModelId, ModelSpec};
//! let m = ModelSpec::build(ModelId::ResNet50);
//! assert!((m.param_count() as f64 - 25.6e6).abs() < 1.0e6);
//! assert!(m.layers().iter().any(|l| l.name().contains("bn")));
//! ```

pub mod gradients;
pub mod spec;
pub mod zoo;

pub use gradients::GradientSynth;
pub use spec::{LayerKind, LayerSpec, ModelId, ModelSpec, Precision};
