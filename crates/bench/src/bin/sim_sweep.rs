//! Million-sweep simnet driver: fans a (model x machine x bit-width x
//! reduction scheme x fault scenario x world) grid across OS threads,
//! replays every cell through the event-wheel DES, and emits
//! `BENCH_simnet.json` with throughput (events/sec, configs/sec),
//! per-cell winners, the legacy-vs-wheel speedup on the 512-rank SRA
//! graph, and a calibration pass against measured `BENCH_net.json`
//! loopback points.
//!
//! Environment:
//!
//! * `CGX_SIM_OUT` — output path (default `BENCH_simnet.json`).
//! * `CGX_SIM_GUARD` — baseline report to regression-check against
//!   (read *before* the overwrite, like `CGX_NET_GUARD`).
//! * `CGX_SIM_GUARD_TOLERANCE` — allowed slowdown factor vs the
//!   baseline's events/sec (default 2.5; CI boxes are noisy).
//! * `CGX_SIM_MAX_SECONDS` — fail if the sweep proper exceeds this.
//! * `CGX_SIM_SPEEDUP` — set to `0` to skip the (slow, allocation-heavy)
//!   legacy-core comparison.
//! * `CGX_SIM_BENCH_NET` — calibration input (default `BENCH_net.json`;
//!   calibration is skipped with a note if the file is missing).

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use cgx_compress::CompressionScheme;
use cgx_models::{ModelId, ModelSpec};
use cgx_simnet::{
    build_hierarchical, build_ring, build_sra, build_tree, calibrate, des::legacy, run,
    CommBackend, Fabric, MachineSpec, OpGraph, SimWorkspace,
};

/// Reduction layouts swept. Hierarchical applies to multi-node worlds.
const SCHEMES: [&str; 4] = ["sra", "ring", "tree", "hier"];
/// Wire bit-widths: 32 = uncompressed fp32, the rest are QSGD widths.
const BITS: [u32; 6] = [32, 2, 3, 4, 6, 8];
/// Fault/heterogeneity scenarios.
const SCENARIOS: [&str; 4] = ["uniform", "straggler", "jitter", "mixed"];
/// Full-cross world sizes (single node up to 8, then 8-GPU nodes).
const FULL_WORLDS: [usize; 5] = [4, 8, 16, 32, 64];
/// Scale-out world sizes swept on a reduced grid.
const BIG_WORLDS: [usize; 3] = [128, 256, 512];
/// Catalog interconnect for scale-out machines: ~10 GbE effective.
const INTER_BW: f64 = 1.25e9;
const INTER_ALPHA: f64 = 1.5e-3;

/// One grid cell.
#[derive(Clone, Copy)]
struct Config {
    model: usize,
    machine: usize,
    world: usize,
    bits: usize,
    scheme: usize,
    scenario: usize,
}

/// Per-model wire sizes, precomputed once.
struct ModelData {
    name: &'static str,
    raw_bytes: f64,
    wire_bytes: [f64; 6],
}

fn model_table() -> Vec<ModelData> {
    ModelId::all()
        .into_iter()
        .map(|id| {
            let spec = ModelSpec::build(id);
            let raw = spec.grad_bytes() as f64;
            let params = spec.param_count() as f64;
            let mut wire = [0.0; 6];
            for (i, &b) in BITS.iter().enumerate() {
                wire[i] = if b == 32 {
                    raw
                } else {
                    let scheme = CompressionScheme::Qsgd { bits: b, bucket_size: 128 };
                    (params * scheme.nominal_bits_per_element() / 8.0).min(raw)
                };
            }
            ModelData { name: id.name(), raw_bytes: raw, wire_bytes: wire }
        })
        .collect()
}

fn machine_table() -> Vec<MachineSpec> {
    MachineSpec::table2_systems().to_vec()
}

/// The machine instance backing a (machine, world) pair: a slice of one
/// node up to 8 ranks, 8-GPU nodes joined by the catalog interconnect
/// beyond that.
fn machine_at(base: &MachineSpec, world: usize) -> MachineSpec {
    if world <= base.gpus_per_node() {
        base.with_gpus(world)
    } else {
        base.scale_out(world / base.gpus_per_node(), INTER_BW, INTER_ALPHA)
    }
}

/// Applies a fault/heterogeneity scenario on top of a catalog fabric.
fn apply_scenario(f: &mut Fabric, scenario: usize, seed: u64) {
    match SCENARIOS[scenario] {
        "straggler" => {
            // One late, degraded rank: 2 ms release + 70% lanes.
            f.set_release(0, 2e-3).expect("release");
            f.scale_rank_bandwidth(0, 0.7).expect("scale");
        }
        "jitter" => f.set_jitter(seed, 0.08).expect("jitter"),
        "mixed" => {
            // Alternating GPU generations: odd ranks at 60% bandwidth.
            for r in (1..f.ranks()).step_by(2) {
                f.scale_rank_bandwidth(r, 0.6).expect("scale");
            }
        }
        _ => {}
    }
}

/// Graph cache key: flat graphs depend on (scheme, world); hierarchical
/// graphs also on the node split and the inter/intra byte ratio.
type GraphKey = (usize, usize, usize, u32);

fn graph_for<'c>(
    cache: &'c mut HashMap<GraphKey, OpGraph>,
    scheme: usize,
    world: usize,
    nodes: usize,
    ratio: f64,
) -> &'c OpGraph {
    let ratio_key = if SCHEMES[scheme] == "hier" { (ratio * 1000.0).round() as u32 } else { 0 };
    let nodes_key = if SCHEMES[scheme] == "hier" { nodes } else { 0 };
    cache.entry((scheme, world, nodes_key, ratio_key)).or_insert_with(|| {
        let mut g = OpGraph::new();
        match SCHEMES[scheme] {
            "sra" => build_sra(&mut g, world).expect("sra"),
            "ring" => build_ring(&mut g, world).expect("ring"),
            "tree" => build_tree(&mut g, world).expect("tree"),
            _ => build_hierarchical(&mut g, nodes, world / nodes, ratio).expect("hier"),
        }
        g
    })
}

struct CellResult {
    cfg: Config,
    seconds: f64,
    events: u64,
}

fn build_grid() -> Vec<Config> {
    let mut grid = Vec::new();
    for &world in &FULL_WORLDS {
        for model in 0..6 {
            for machine in 0..4 {
                for bits in 0..BITS.len() {
                    for scheme in 0..SCHEMES.len() {
                        if SCHEMES[scheme] == "hier" && world <= 8 {
                            continue; // single node: no node split to exploit
                        }
                        for scenario in 0..SCENARIOS.len() {
                            grid.push(Config { model, machine, world, bits, scheme, scenario });
                        }
                    }
                }
            }
        }
    }
    // Scale-out tail: 128..512 ranks on a reduced cross.
    let big_models = [0usize, 5]; // ResNet50, GPT-2
    let big_machines = [0usize, 2]; // DGX-1, RTX-3090
    let big_bits = [0usize, 3]; // fp32, q4
    let big_scenarios = [0usize, 2]; // uniform, jitter
    for &world in &BIG_WORLDS {
        for &model in &big_models {
            for &machine in &big_machines {
                for &bits in &big_bits {
                    for scheme in 0..SCHEMES.len() {
                        for &scenario in &big_scenarios {
                            grid.push(Config { model, machine, world, bits, scheme, scenario });
                        }
                    }
                }
            }
        }
    }
    grid
}

fn run_sweep(
    grid: &[Config],
    models: &[ModelData],
    machines: &[MachineSpec],
    threads: usize,
) -> Vec<CellResult> {
    // Base fabrics per (machine, world): cloned then scenario-mutated.
    let mut base_fabrics: HashMap<(usize, usize), Fabric> = HashMap::new();
    let mut worlds: Vec<usize> = FULL_WORLDS.to_vec();
    worlds.extend_from_slice(&BIG_WORLDS);
    for (mi, m) in machines.iter().enumerate() {
        for &w in &worlds {
            let fab = machine_at(m, w).fabric(CommBackend::Shm).expect("catalog fabric");
            base_fabrics.insert((mi, w), fab);
        }
    }
    let next = AtomicUsize::new(0);
    let chunk = 64;
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let next = &next;
            let base_fabrics = &base_fabrics;
            handles.push(s.spawn(move || {
                let mut cache: HashMap<GraphKey, OpGraph> = HashMap::new();
                let mut ws = SimWorkspace::new();
                let mut out = Vec::new();
                loop {
                    let lo = next.fetch_add(chunk, Ordering::Relaxed);
                    if lo >= grid.len() {
                        break;
                    }
                    for (idx, cfg) in grid[lo..grid.len().min(lo + chunk)].iter().enumerate() {
                        let md = &models[cfg.model];
                        let wire = md.wire_bytes[cfg.bits];
                        let nodes = if cfg.world <= 8 { 1 } else { cfg.world / 8 };
                        let hier = SCHEMES[cfg.scheme] == "hier";
                        let ratio = if md.raw_bytes > 0.0 { wire / md.raw_bytes } else { 1.0 };
                        let g = graph_for(&mut cache, cfg.scheme, cfg.world, nodes, ratio);
                        let mut fab = base_fabrics[&(cfg.machine, cfg.world)].clone();
                        apply_scenario(&mut fab, cfg.scenario, (lo + idx) as u64);
                        let ref_bytes = if hier { md.raw_bytes } else { wire };
                        let stats = run(g, &fab, ref_bytes, &mut ws.scratch)
                            .expect("catalog cell must simulate");
                        out.push(CellResult {
                            cfg: *cfg,
                            seconds: stats.makespan_seconds(),
                            events: stats.events,
                        });
                    }
                }
                out
            }));
        }
        handles.into_iter().flat_map(|h| h.join().expect("sweep thread")).collect()
    })
}

/// Winner rows: fastest scheme per (machine, world, model) at the CGX
/// default wire width on the uniform scenario.
fn winners(results: &[CellResult], models: &[ModelData], machines: &[MachineSpec]) -> String {
    let mut best: HashMap<(usize, usize, usize), (usize, f64)> = HashMap::new();
    for r in results {
        if BITS[r.cfg.bits] != 4 || SCENARIOS[r.cfg.scenario] != "uniform" {
            continue;
        }
        let key = (r.cfg.machine, r.cfg.world, r.cfg.model);
        let e = best.entry(key).or_insert((r.cfg.scheme, r.seconds));
        if r.seconds < e.1 {
            *e = (r.cfg.scheme, r.seconds);
        }
    }
    let mut keys: Vec<_> = best.keys().copied().collect();
    keys.sort_unstable();
    let mut s = String::new();
    for (i, key) in keys.iter().enumerate() {
        let (scheme, secs) = best[key];
        let sep = if i + 1 < keys.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"machine\": \"{}\", \"world\": {}, \"model\": \"{}\", \"scheme\": \"{}\", \"seconds\": {:.6}}}{}",
            machines[key.0].name(),
            key.1,
            models[key.2].name,
            SCHEMES[scheme],
            secs,
            sep
        );
    }
    s
}

/// Legacy (binary-heap, f64) vs wheel events/sec on the 512-rank SRA
/// graph; returns (legacy_eps, wheel_eps, speedup).
fn speedup_512() -> (f64, f64, f64) {
    let ranks = 512;
    let bytes = 100e6;
    let bw = 1e9;
    let alpha = 5e-6;
    let mut ws = SimWorkspace::new();
    build_sra(&mut ws.graph, ranks).expect("sra 512");
    let fabric = Fabric::uniform(ranks, bw, alpha).expect("fabric");
    // Warm the allocator/caches once, then time a run.
    run(&ws.graph, &fabric, bytes, &mut ws.scratch).expect("warmup");
    let t0 = Instant::now();
    let stats = run(&ws.graph, &fabric, bytes, &mut ws.scratch).expect("wheel");
    let wheel_eps = stats.events as f64 / t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let ops = legacy::sra_ops(ranks, bytes / ranks as f64);
    let net = legacy::NetworkDes::new(ranks, bw, alpha);
    let (_, legacy_makespan) = net.run(&ops);
    let legacy_eps = ops.len() as f64 / t1.elapsed().as_secs_f64();
    // Same workload: the cores must agree before we compare their speed
    // (up to integer-ns rounding accumulated over ~1000-deep chains;
    // bit-exact equivalence is asserted by the simnet corpus tests).
    assert!(
        (legacy_makespan - stats.makespan_seconds()).abs() <= 1e-4 * legacy_makespan,
        "cores disagree: legacy {legacy_makespan} vs wheel {}",
        stats.makespan_seconds()
    );
    (legacy_eps, wheel_eps, wheel_eps / legacy_eps)
}

/// Pulls `"<name>": <float>` out of a previous report.
fn baseline_field(json: &str, name: &str) -> Option<f64> {
    let key = format!("\"{name}\": ");
    let at = json.find(&key)?;
    let rest = &json[at + key.len()..];
    let end = rest.find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))?;
    rest[..end].parse().ok()
}

fn main() {
    let out_path =
        std::env::var("CGX_SIM_OUT").unwrap_or_else(|_| "BENCH_simnet.json".to_string());
    let guard_path = std::env::var("CGX_SIM_GUARD").ok();
    let tolerance: f64 = std::env::var("CGX_SIM_GUARD_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.5);
    // Snapshot the baseline BEFORE we overwrite the report file: the
    // guard path and the output path may be the same file.
    let baseline_eps = guard_path
        .as_ref()
        .and_then(|p| std::fs::read_to_string(p).ok())
        .and_then(|json| baseline_field(&json, "events_per_sec"));

    let models = model_table();
    let machines = machine_table();
    let grid = build_grid();
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    eprintln!("sim_sweep: {} configs on {} threads", grid.len(), threads);

    let t0 = Instant::now();
    let results = run_sweep(&grid, &models, &machines, threads);
    let elapsed = t0.elapsed().as_secs_f64();
    assert_eq!(results.len(), grid.len(), "every config must produce a result");
    let events: u64 = results.iter().map(|r| r.events).sum();
    let events_per_sec = events as f64 / elapsed;
    let configs_per_sec = results.len() as f64 / elapsed;
    eprintln!(
        "sim_sweep: {} configs, {} events in {:.2}s ({:.0} configs/s, {:.2}M events/s)",
        results.len(),
        events,
        elapsed,
        configs_per_sec,
        events_per_sec / 1e6
    );

    if let Some(max) = std::env::var("CGX_SIM_MAX_SECONDS").ok().and_then(|v| v.parse::<f64>().ok())
    {
        assert!(elapsed <= max, "sweep took {elapsed:.1}s > budget {max}s");
    }

    // Calibration vs measured loopback points.
    let bench_net =
        std::env::var("CGX_SIM_BENCH_NET").unwrap_or_else(|_| "BENCH_net.json".to_string());
    let mut calibration_json = String::from("  \"calibration\": null,\n");
    match std::fs::read_to_string(&bench_net) {
        Ok(json) => {
            let report = calibrate(&json)
                .expect("calibration replay")
                .expect("BENCH_net.json must contain measurement points");
            let mut pts = String::new();
            for (i, p) in report.points.iter().enumerate() {
                let sep = if i + 1 < report.points.len() { "," } else { "" };
                let _ = writeln!(
                    pts,
                    "      {{\"world\": {}, \"mode\": \"{}\", \"measured_us\": {}, \"simulated_us\": {:.1}, \"rel_err\": {:.4}}}{}",
                    p.measured.world, p.measured.mode(), p.measured.step_us, p.sim_us, p.rel_err, sep
                );
            }
            calibration_json = format!(
                "  \"calibration\": {{\n    \"source\": \"{}\",\n    \"max_rel_err\": {:.4},\n    \"points\": [\n{}    ]\n  }},\n",
                bench_net, report.max_rel_err, pts
            );
            for p in &report.points {
                assert!(
                    p.rel_err <= 0.25,
                    "calibration drifted: world {} {} off by {:.1}%",
                    p.measured.world,
                    p.measured.mode(),
                    p.rel_err * 100.0
                );
            }
            eprintln!(
                "sim_sweep: calibration max rel err {:.1}% over {} points",
                report.max_rel_err * 100.0,
                report.points.len()
            );
        }
        Err(_) => eprintln!("sim_sweep: {bench_net} not found; skipping calibration"),
    }

    // Legacy-core comparison (slow: the dense 512-rank op list alone is
    // ~0.5M heap-allocated ops).
    let mut speedup_json = String::from("  \"speedup_512_sra\": null,\n");
    if std::env::var("CGX_SIM_SPEEDUP").map(|v| v != "0").unwrap_or(true) {
        let (legacy_eps, wheel_eps, speedup) = speedup_512();
        eprintln!(
            "sim_sweep: 512-rank SRA: wheel {:.2}M ev/s vs legacy {:.3}M ev/s = {:.1}x",
            wheel_eps / 1e6,
            legacy_eps / 1e6,
            speedup
        );
        speedup_json = format!(
            "  \"speedup_512_sra\": {{\"legacy_events_per_sec\": {:.0}, \"wheel_events_per_sec\": {:.0}, \"speedup\": {:.2}}},\n",
            legacy_eps, wheel_eps, speedup
        );
        assert!(speedup >= 10.0, "wheel must be >=10x the legacy core, got {speedup:.1}x");
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"cgx-bench-simnet-v1\",\n");
    let _ = writeln!(out, "  \"configs\": {},", results.len());
    let _ = writeln!(out, "  \"events\": {events},");
    let _ = writeln!(out, "  \"elapsed_s\": {elapsed:.3},");
    let _ = writeln!(out, "  \"threads\": {threads},");
    let _ = writeln!(out, "  \"events_per_sec\": {events_per_sec:.0},");
    let _ = writeln!(out, "  \"configs_per_sec\": {configs_per_sec:.1},");
    out.push_str(&speedup_json);
    out.push_str(&calibration_json);
    out.push_str("  \"winners\": [\n");
    out.push_str(&winners(&results, &models, &machines));
    out.push_str("  ]\n}\n");
    std::fs::write(&out_path, &out).expect("write report");
    eprintln!("sim_sweep: wrote {out_path}");

    if let Some(base) = baseline_eps {
        let floor = base / tolerance;
        assert!(
            events_per_sec >= floor,
            "events/sec regressed: {events_per_sec:.0} < baseline {base:.0} / tolerance {tolerance}"
        );
        eprintln!(
            "sim_sweep: guard ok ({events_per_sec:.0} ev/s vs baseline {base:.0}, tolerance {tolerance}x)"
        );
    } else if guard_path.is_some() {
        eprintln!("sim_sweep: guard baseline missing or unreadable; skipping comparison");
    }
}
