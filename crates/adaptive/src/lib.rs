#![warn(missing_docs)]
//! Adaptive layer-wise compression (paper Section 5).
//!
//! The *adaptive compression problem*: choose per-layer bit-widths
//! `b_1..b_L` minimizing the transmitted size `Σ b_ℓ · size(L_ℓ)` subject
//! to the total compression error staying below `α · E₄`, where `E₄` is the
//! error of the uniform 4-bit assignment known to recover accuracy.
//!
//! Three solvers, as evaluated in the paper's Table 7 / Figure 5:
//!
//! * [`AdaptivePolicy::KMeans`] — Algorithm 1: 2-D k-means over
//!   `(size(L_ℓ), ‖G_ℓ‖)`, centroids sorted by `norm − size`, bit-widths
//!   mapped to clusters (the winner);
//! * [`AdaptivePolicy::Linear`] — sort layers by `‖G_ℓ‖ / size(L_ℓ)` and
//!   interpolate bit-widths linearly along that order;
//! * [`AdaptivePolicy::BayesOpt`] — black-box search over assignments (a
//!   seeded random-search surrogate standing in for the Bayesian optimizer
//!   the paper found "unstable across models").
//!
//! All solvers enforce the error budget by promoting the most sensitive
//! under-provisioned layers until the constraint holds.
//!
//! # Examples
//!
//! ```
//! use cgx_adaptive::{assign_bits, AdaptiveOptions, AdaptivePolicy, LayerProfile};
//!
//! let profiles = vec![
//!     LayerProfile::new("embedding", 10_000_000, 3.0),
//!     LayerProfile::new("attn", 1_000_000, 5.0),
//!     LayerProfile::new("head", 1_000_000, 9.0),
//! ];
//! let a = assign_bits(AdaptivePolicy::KMeans, &profiles, &AdaptiveOptions::default());
//! // The huge low-norm embedding gets the fewest bits.
//! assert!(a.bits[0] <= a.bits[2]);
//! ```

pub mod controller;
pub mod kmeans;
pub mod policy;

pub use controller::{
    AdaptiveController, AdaptivePlanTrace, AdaptiveTrainConfig, ControlledLayer, PlanRecord,
    PlanUpdate,
};
pub use kmeans::{kmeans, KMeansResult};
pub use policy::{
    assign_bits, quant_levels, uniform_assignment, AdaptiveOptions, AdaptivePolicy, BitAssignment,
    LayerProfile,
};
