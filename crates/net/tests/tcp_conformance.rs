//! Runs the generic [`cgx_collectives::conformance`] battery against the
//! TCP transport over loopback sockets — the same suite the in-process
//! `ShmTransport` passes. Tag demux, per-tag FIFO, deadline semantics,
//! stash-beats-disconnect, quiesce: one contract, two fabrics.

use cgx_collectives::conformance::{self, BoxTransport};
use cgx_net::TcpFabric;

fn tcp_builder(n: usize) -> Vec<BoxTransport> {
    TcpFabric::build_local(n)
        .into_iter()
        .map(|t| Box::new(t) as BoxTransport)
        .collect()
}

#[test]
fn tcp_transport_satisfies_the_transport_contract() {
    conformance::run_all(&tcp_builder);
}
