//! Figure 3: training throughput for ResNet50, Transformer-XL, ViT and
//! BERT across the four Table 2 machines, at 1/2/4/8 GPUs, for the vanilla
//! NCCL baseline, QNCCL, CGX, and ideal linear scaling.
//!
//! Paper shape: commodity machines scale < 50% of linear with NCCL; CGX
//! reaches 80-90% (a 2-3x self-speedup) and matches/outperforms the DGX-1
//! on Transformer-class models; QNCCL improves on NCCL but trails CGX.

use cgx_bench::{fmt_items, fmt_pct, note, render_table};
use cgx_core::estimate::{estimate, SystemSetup};
use cgx_models::ModelId;
use cgx_simnet::MachineSpec;

fn main() {
    let machines = MachineSpec::table2_systems();
    let models = [
        ModelId::ResNet50,
        ModelId::TransformerXl,
        ModelId::VitBase,
        ModelId::BertBase,
    ];
    for model in models {
        let mut rows = Vec::new();
        for machine in &machines {
            for n in [1usize, 2, 4, 8] {
                let m = machine.with_gpus(n);
                let ideal = estimate(&m, model, &SystemSetup::Ideal);
                let base = estimate(&m, model, &SystemSetup::BaselineNccl);
                let qnccl = estimate(
                    &m,
                    model,
                    &SystemSetup::Qnccl {
                        bits: 4,
                        bucket_size: 128,
                    },
                );
                let cgx = estimate(&m, model, &SystemSetup::cgx());
                rows.push(vec![
                    format!("{} x{n}", machine.name()),
                    format!("{} ({})", fmt_items(base.throughput), fmt_pct(base.scaling)),
                    format!(
                        "{} ({})",
                        fmt_items(qnccl.throughput),
                        fmt_pct(qnccl.scaling)
                    ),
                    format!("{} ({})", fmt_items(cgx.throughput), fmt_pct(cgx.scaling)),
                    fmt_items(ideal.throughput),
                ]);
            }
        }
        print!(
            "{}",
            render_table(
                &format!("Figure 3: {model} throughput ({})", model.unit()),
                &["machine", "NCCL", "QNCCL(4b)", "CGX", "ideal"],
                &rows,
            )
        );
    }
    note("percentages are fractions of ideal linear scaling on that machine.");

    // The headline claims, verified numerically.
    let rtx = MachineSpec::rtx3090();
    let dgx = MachineSpec::dgx1();
    let mut claims = Vec::new();
    for model in models {
        let base = estimate(&rtx, model, &SystemSetup::BaselineNccl);
        let cgx = estimate(&rtx, model, &SystemSetup::cgx());
        let dgx_b = estimate(&dgx, model, &SystemSetup::BaselineNccl);
        claims.push(vec![
            model.to_string(),
            format!("{:.2}x", cgx.throughput / base.throughput),
            fmt_pct(cgx.scaling),
            format!("{:.2}", cgx.throughput / dgx_b.throughput),
        ]);
    }
    print!(
        "{}",
        render_table(
            "headline claims on 8x RTX 3090",
            &[
                "model",
                "CGX self-speedup vs NCCL",
                "CGX % of linear",
                "CGX-3090 / DGX-1-NCCL",
            ],
            &claims,
        )
    );
    note("paper: 2-3x self-speedup, 80-90% of linear, matching or surpassing DGX-1 (ratio >= ~1 on transformers).");
}
