//! Property-based tests over the compression substrate: wire-size
//! predictions are exact, round-trips preserve shape, error bounds hold,
//! and the codecs are robust to adversarial inputs.

use cgx::compress::{compression_error, CompressionScheme, Compressor, NormKind, QsgdCompressor};
use cgx::tensor::{Rng, Tensor};
use proptest::prelude::*;

fn tensor_strategy(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(
        prop_oneof![(-1e3f32..1e3f32), (-1e-4f32..1e-4f32), Just(0.0f32),],
        1..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn qsgd_payload_matches_prediction(
        data in tensor_strategy(4000),
        bits in 2u32..=8,
        bucket in 1usize..2000,
        seed in 0u64..1000,
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let g = Tensor::from_slice(&data);
        let mut q = QsgdCompressor::new(bits, bucket);
        let enc = q.compress(&g, &mut rng);
        prop_assert_eq!(enc.payload_bytes(), q.compressed_bytes(g.len()));
        let rt = q.decompress(&enc);
        prop_assert_eq!(rt.shape(), g.shape());
        prop_assert!(rt.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn qsgd_error_bounded_by_one_grid_step_per_element(
        data in tensor_strategy(2000),
        bits in 2u32..=8,
        bucket in 1usize..512,
        seed in 0u64..1000,
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let g = Tensor::from_slice(&data);
        let mut q = QsgdCompressor::with_norm(bits, bucket, NormKind::Max);
        let enc = q.compress(&g, &mut rng);
        let rt = q.decompress(&enc);
        let s = ((1u32 << (bits - 1)) - 1) as f64;
        for (chunk, rt_chunk) in data.chunks(bucket).zip(rt.as_slice().chunks(bucket)) {
            let max = chunk.iter().fold(0.0f64, |m, x| m.max(x.abs() as f64));
            let step = max / s;
            for (a, b) in chunk.iter().zip(rt_chunk) {
                prop_assert!(
                    (*a as f64 - *b as f64).abs() <= step * (1.0 + 1e-5) + 1e-12,
                    "err {} > step {}", (*a as f64 - *b as f64).abs(), step
                );
            }
        }
    }

    #[test]
    fn all_schemes_roundtrip_any_shape(
        rows in 1usize..40,
        cols in 1usize..40,
        seed in 0u64..1000,
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let g = Tensor::randn(&mut rng, &[rows, cols]);
        for scheme in [
            CompressionScheme::None,
            CompressionScheme::Qsgd { bits: 4, bucket_size: 128 },
            CompressionScheme::TopK { ratio: 0.25 },
            CompressionScheme::PowerSgd { rank: 2 },
            CompressionScheme::OneBit { bucket_size: 32 },
            CompressionScheme::Fake { gamma: 4.0 },
        ] {
            let mut c = scheme.build();
            let enc = c.compress(&g, &mut rng);
            let rt = c.decompress(&enc);
            prop_assert_eq!(rt.shape(), g.shape(), "scheme {}", scheme);
            prop_assert!(rt.as_slice().iter().all(|x| x.is_finite()), "scheme {}", scheme);
        }
    }

    #[test]
    fn compressed_size_monotone_in_bits(
        n in 1usize..100_000,
    ) {
        let mut last = 0usize;
        for bits in 2u32..=8 {
            let q = QsgdCompressor::new(bits, 128);
            let sz = q.compressed_bytes(n);
            prop_assert!(sz >= last);
            last = sz;
        }
        // And always strictly below fp32 for reasonable sizes.
        if n >= 64 {
            prop_assert!(QsgdCompressor::new(8, 128).compressed_bytes(n) < 4 * n);
        }
    }

    #[test]
    fn lossless_codec_error_is_exactly_zero(
        data in tensor_strategy(2000),
        seed in 0u64..100,
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let g = Tensor::from_slice(&data);
        let mut c = CompressionScheme::None.build();
        prop_assert_eq!(compression_error(c.as_mut(), &g, &mut rng), 0.0);
    }

    #[test]
    fn quantization_is_unbiased_in_expectation(
        value in -10.0f32..10.0,
        bits in 2u32..=4,
    ) {
        // Single repeated value across a bucket: the stochastic rounding
        // mean must approach the true value.
        let mut rng = Rng::seed_from_u64(7);
        let g = Tensor::from_slice(&[value, -2.0 * value.abs() - 1.0, 0.5, -0.25]);
        let mut q = QsgdCompressor::new(bits, 4);
        let trials = 4000;
        let mut acc = 0.0f64;
        for _ in 0..trials {
            let enc = q.compress(&g, &mut rng);
            acc += q.decompress(&enc)[0] as f64;
        }
        let mean = acc / trials as f64;
        let scale = (2.0 * value.abs() + 1.0) as f64;
        prop_assert!(
            (mean - value as f64).abs() < 0.1 * scale.max(0.5),
            "mean {mean} vs value {value}"
        );
    }
}
