//! Layer and model descriptors.

use cgx_tensor::Shape;
use std::fmt;

/// The role a parameter tensor plays in its network.
///
/// CGX's layer filters key on this: norm and bias parameters are small and
/// compression-sensitive, so they are transmitted in full precision;
/// embeddings are huge and compression-tolerant, so adaptive compression
/// assigns them the lowest bit-widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Convolution weight.
    Conv,
    /// Dense / fully-connected weight (incl. attention projections).
    Linear,
    /// Token/position embedding table.
    Embedding,
    /// Batch-norm or layer-norm scale parameter.
    Norm,
    /// Additive bias vector.
    Bias,
    /// Miscellaneous small parameters (cls tokens, pooling, ...).
    Other,
}

impl LayerKind {
    /// Whether CGX's default filter sends this layer uncompressed
    /// ("empirically, layers like batch/layer normalization and bias layers
    /// are sensitive to gradient compression, while being small").
    pub fn is_filtered_by_default(self) -> bool {
        matches!(self, LayerKind::Norm | LayerKind::Bias | LayerKind::Other)
    }
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LayerKind::Conv => "conv",
            LayerKind::Linear => "linear",
            LayerKind::Embedding => "embedding",
            LayerKind::Norm => "norm",
            LayerKind::Bias => "bias",
            LayerKind::Other => "other",
        };
        f.write_str(s)
    }
}

/// One named parameter tensor of a model, in *forward* (input-to-output)
/// order within [`ModelSpec::layers`].
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSpec {
    name: String,
    kind: LayerKind,
    shape: Shape,
}

impl LayerSpec {
    /// Creates a layer descriptor.
    pub fn new(name: impl Into<String>, kind: LayerKind, dims: &[usize]) -> Self {
        LayerSpec {
            name: name.into(),
            kind,
            shape: Shape::from(dims),
        }
    }

    /// Parameter name, e.g. `"layer3.2.conv1.weight"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layer's role.
    pub fn kind(&self) -> LayerKind {
        self.kind
    }

    /// Parameter tensor shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of parameters.
    pub fn elements(&self) -> usize {
        self.shape.len()
    }

    /// Gradient size in bytes at the given precision.
    pub fn grad_bytes(&self, precision: Precision) -> usize {
        self.elements() * precision.bytes_per_grad_element()
    }
}

/// Training numeric precision (paper Appendix C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// Full FP32 training (BERT-SQuAD in the paper).
    #[default]
    Fp32,
    /// AMP level 1: FP16 activations, FP32 weights and gradients (ViT).
    AmpLevel1,
    /// AMP level 2: FP16 model, activations and gradients (TXL, GPT-2).
    AmpLevel2,
}

impl Precision {
    /// Bytes per transmitted gradient element for the uncompressed baseline.
    pub fn bytes_per_grad_element(self) -> usize {
        match self {
            Precision::Fp32 | Precision::AmpLevel1 => 4,
            Precision::AmpLevel2 => 2,
        }
    }
}

/// Identifier of a zoo model (the paper's six evaluation workloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelId {
    /// ResNet50 on ImageNet.
    ResNet50,
    /// VGG16 on ImageNet.
    Vgg16,
    /// Vision Transformer base (ViT-B/16) on ImageNet.
    VitBase,
    /// Transformer-XL base on WikiText-103.
    TransformerXl,
    /// BERT base on SQuAD v1 (question answering).
    BertBase,
    /// GPT-2 small on WikiText-2.
    Gpt2,
}

impl ModelId {
    /// All six evaluation workloads.
    pub fn all() -> [ModelId; 6] {
        [
            ModelId::ResNet50,
            ModelId::Vgg16,
            ModelId::VitBase,
            ModelId::TransformerXl,
            ModelId::BertBase,
            ModelId::Gpt2,
        ]
    }

    /// Canonical display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            ModelId::ResNet50 => "ResNet50",
            ModelId::Vgg16 => "VGG16",
            ModelId::VitBase => "ViT-base",
            ModelId::TransformerXl => "Transformer-XL-base",
            ModelId::BertBase => "BERT",
            ModelId::Gpt2 => "GPT-2",
        }
    }

    /// Throughput unit: images or tokens per second.
    pub fn unit(self) -> &'static str {
        match self {
            ModelId::ResNet50 | ModelId::Vgg16 | ModelId::VitBase => "imgs/s",
            _ => "tokens/s",
        }
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A complete model description: ordered parameter tensors plus the training
/// recipe constants the paper uses (Appendix C).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    id: ModelId,
    layers: Vec<LayerSpec>,
    per_gpu_batch: usize,
    items_per_sample: usize,
    precision: Precision,
}

impl ModelSpec {
    /// Builds the zoo model for `id` (see [`crate::zoo`]).
    pub fn build(id: ModelId) -> Self {
        crate::zoo::build(id)
    }

    pub(crate) fn from_parts(
        id: ModelId,
        layers: Vec<LayerSpec>,
        per_gpu_batch: usize,
        items_per_sample: usize,
        precision: Precision,
    ) -> Self {
        assert!(!layers.is_empty(), "model without layers");
        ModelSpec {
            id,
            layers,
            per_gpu_batch,
            items_per_sample,
            precision,
        }
    }

    /// The model's identifier.
    pub fn id(&self) -> ModelId {
        self.id
    }

    /// Parameter tensors in forward order. During the backward pass,
    /// gradients are produced in *reverse* of this order — embeddings and
    /// first convolutions arrive last, which is why the paper notes they
    /// "cannot be overlapped with computation".
    pub fn layers(&self) -> &[LayerSpec] {
        &self.layers
    }

    /// Per-GPU minibatch size from the paper's recipes.
    pub fn per_gpu_batch(&self) -> usize {
        self.per_gpu_batch
    }

    /// Throughput items per sample: 1 for images, sequence length for
    /// token-based models.
    pub fn items_per_sample(&self) -> usize {
        self.items_per_sample
    }

    /// Throughput items processed per GPU per optimization step.
    pub fn items_per_gpu_step(&self) -> usize {
        self.per_gpu_batch * self.items_per_sample
    }

    /// Training precision recipe.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(LayerSpec::elements).sum()
    }

    /// Total gradient bytes per step for the uncompressed baseline.
    pub fn grad_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.grad_bytes(self.precision))
            .sum()
    }

    /// Largest single layer (by parameter count).
    pub fn largest_layer(&self) -> &LayerSpec {
        self.layers
            .iter()
            .max_by_key(|l| l.elements())
            .expect("non-empty model")
    }

    /// Approximate activation memory per sample in MB during training
    /// (documented calibration against the published per-GPU batch sizes;
    /// used by the simulator's memory model to reproduce the paper's
    /// "2080's lower memory limits its maximum batch size" effect).
    pub fn activation_mb_per_sample(&self) -> f64 {
        match self.id {
            ModelId::ResNet50 => 130.0,
            ModelId::Vgg16 => 190.0,
            ModelId::VitBase => 170.0,
            // Token models: per sample = per full sequence.
            ModelId::TransformerXl => 160.0,
            ModelId::BertBase => 900.0,
            ModelId::Gpt2 => 2200.0,
        }
    }

    /// Fraction of parameters in layers the default filter excludes from
    /// compression (norms, biases).
    pub fn filtered_fraction(&self) -> f64 {
        let filtered: usize = self
            .layers
            .iter()
            .filter(|l| l.kind().is_filtered_by_default())
            .map(LayerSpec::elements)
            .sum();
        filtered as f64 / self.param_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_spec_accessors() {
        let l = LayerSpec::new("fc.weight", LayerKind::Linear, &[10, 20]);
        assert_eq!(l.name(), "fc.weight");
        assert_eq!(l.elements(), 200);
        assert_eq!(l.grad_bytes(Precision::Fp32), 800);
        assert_eq!(l.grad_bytes(Precision::AmpLevel2), 400);
    }

    #[test]
    fn default_filter_matches_paper() {
        assert!(LayerKind::Norm.is_filtered_by_default());
        assert!(LayerKind::Bias.is_filtered_by_default());
        assert!(!LayerKind::Conv.is_filtered_by_default());
        assert!(!LayerKind::Embedding.is_filtered_by_default());
    }

    #[test]
    fn model_id_units() {
        assert_eq!(ModelId::ResNet50.unit(), "imgs/s");
        assert_eq!(ModelId::BertBase.unit(), "tokens/s");
        assert_eq!(ModelId::all().len(), 6);
    }

    #[test]
    fn items_per_gpu_step_multiplies() {
        let m = ModelSpec::from_parts(
            ModelId::Gpt2,
            vec![LayerSpec::new("w", LayerKind::Linear, &[2, 2])],
            3,
            1024,
            Precision::AmpLevel2,
        );
        assert_eq!(m.items_per_gpu_step(), 3072);
        assert_eq!(m.grad_bytes(), 8);
    }

    #[test]
    #[should_panic(expected = "model without layers")]
    fn empty_model_panics() {
        ModelSpec::from_parts(ModelId::Gpt2, Vec::new(), 1, 1, Precision::Fp32);
    }
}
