//! `cgx` — command-line front end to the reproduction.
//!
//! ```text
//! cgx estimate --machine rtx3090 --model txl --setup cgx
//! cgx compare  --machine rtx3090 --model resnet50
//! cgx adaptive --model txl [--policy kmeans|linear|bayes|timeaware] [--multinode]
//! cgx memory   --model vit
//! cgx machines
//! cgx models
//! ```
//!
//! Argument parsing is hand-rolled (no extra dependencies); every value has
//! a sensible default so `cgx <subcommand>` alone always works.

use cgx::adaptive::{AdaptiveOptions, AdaptivePolicy};
use cgx::core::adaptive::adaptive_compression_for;
use cgx::core::estimate::{estimate, estimate_with_schemes, SystemSetup};
use cgx::models::{ModelId, ModelSpec};
use cgx::simnet::{max_batch, training_memory_mb, GpuModel, MachineSpec, OptimizerKind};
use std::collections::HashMap;
use std::process::ExitCode;

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            let value = args
                .get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .cloned()
                .unwrap_or_else(|| "true".to_string());
            if value != "true" || args.get(i + 1).map(|v| v == "true").unwrap_or(false) {
                i += 1;
            }
            out.insert(key.to_string(), value);
        }
        i += 1;
    }
    out
}

fn parse_model(s: &str) -> Option<ModelId> {
    match s.to_ascii_lowercase().as_str() {
        "resnet50" | "resnet" => Some(ModelId::ResNet50),
        "vgg16" | "vgg" => Some(ModelId::Vgg16),
        "vit" | "vit-base" => Some(ModelId::VitBase),
        "txl" | "transformer-xl" | "transformerxl" => Some(ModelId::TransformerXl),
        "bert" | "bert-base" => Some(ModelId::BertBase),
        "gpt2" | "gpt-2" => Some(ModelId::Gpt2),
        _ => None,
    }
}

fn parse_machine(s: &str) -> Option<MachineSpec> {
    match s.to_ascii_lowercase().as_str() {
        "rtx3090" | "3090" => Some(MachineSpec::rtx3090()),
        "rtx2080" | "2080" => Some(MachineSpec::rtx2080()),
        "dgx1" | "dgx-1" => Some(MachineSpec::dgx1()),
        "a6000" => Some(MachineSpec::a6000()),
        "aws" | "p3.8xlarge" => Some(MachineSpec::aws_p3_8xlarge()),
        "genesis" => Some(MachineSpec::genesis_3090()),
        "cluster" | "multinode" => Some(MachineSpec::genesis_cluster()),
        _ => None,
    }
}

fn parse_setup(s: &str) -> Option<SystemSetup> {
    match s.to_ascii_lowercase().as_str() {
        "cgx" => Some(SystemSetup::cgx()),
        "nccl" | "baseline" => Some(SystemSetup::BaselineNccl),
        "qnccl" => Some(SystemSetup::Qnccl {
            bits: 4,
            bucket_size: 128,
        }),
        "grace" => Some(SystemSetup::Grace { bits: 4 }),
        "powersgd" => Some(SystemSetup::PowerSgd { rank: 4 }),
        "ideal" => Some(SystemSetup::Ideal),
        _ => None,
    }
}

fn parse_policy(s: &str) -> Option<AdaptivePolicy> {
    match s.to_ascii_lowercase().as_str() {
        "kmeans" => Some(AdaptivePolicy::KMeans),
        "linear" => Some(AdaptivePolicy::Linear),
        "bayes" => Some(AdaptivePolicy::BayesOpt { trials: 300 }),
        "timeaware" | "time-aware" => Some(AdaptivePolicy::TimeAware),
        _ => None,
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cgx <subcommand> [flags]\n\
         \n\
         subcommands:\n\
           estimate  --machine <m> --model <id> --setup <s>   one throughput estimate\n\
           compare   --machine <m> --model <id>               all setups side by side\n\
           adaptive  --model <id> [--policy p] [--multinode]  adaptive bit assignment\n\
           memory    --model <id>                             memory footprint per GPU\n\
           machines                                           list machines\n\
           models                                             list models\n\
         \n\
         machines: rtx3090 rtx2080 dgx1 a6000 aws genesis cluster\n\
         models:   resnet50 vgg16 vit txl bert gpt2\n\
         setups:   cgx nccl qnccl grace powersgd ideal\n\
         policies: kmeans linear bayes timeaware"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let flags = parse_flags(&args[1..]);
    let model = flags.get("model").map(String::as_str).unwrap_or("txl");
    let machine_name = flags
        .get("machine")
        .map(String::as_str)
        .unwrap_or("rtx3090");
    match cmd.as_str() {
        "estimate" => {
            let (Some(model), Some(machine)) = (parse_model(model), parse_machine(machine_name))
            else {
                return usage();
            };
            let Some(setup) = parse_setup(flags.get("setup").map(String::as_str).unwrap_or("cgx"))
            else {
                return usage();
            };
            let e = estimate(&machine, model, &setup);
            println!(
                "{} | {} | {}: {:.0} {} ({:.0}% of linear), step {:.1} ms, exposed comm {:.1} ms, wire {:.1} MB",
                machine.name(),
                model,
                setup.label(),
                e.throughput,
                model.unit(),
                e.scaling * 100.0,
                e.report.step_seconds * 1000.0,
                e.report.exposed_comm_seconds * 1000.0,
                e.wire_bytes as f64 / 1e6,
            );
            ExitCode::SUCCESS
        }
        "compare" => {
            let (Some(model), Some(machine)) = (parse_model(model), parse_machine(machine_name))
            else {
                return usage();
            };
            for setup in [
                SystemSetup::Ideal,
                SystemSetup::BaselineNccl,
                SystemSetup::Qnccl {
                    bits: 4,
                    bucket_size: 128,
                },
                SystemSetup::Grace { bits: 4 },
                SystemSetup::PowerSgd { rank: 4 },
                SystemSetup::cgx(),
            ] {
                let e = estimate(&machine, model, &setup);
                println!(
                    "{:<14} {:>10.0} {} ({:>3.0}%)",
                    setup.label(),
                    e.throughput,
                    model.unit(),
                    e.scaling * 100.0
                );
            }
            ExitCode::SUCCESS
        }
        "adaptive" => {
            let Some(model_id) = parse_model(model) else {
                return usage();
            };
            let Some(policy) =
                parse_policy(flags.get("policy").map(String::as_str).unwrap_or("kmeans"))
            else {
                return usage();
            };
            let machine = if flags.contains_key("multinode") {
                MachineSpec::genesis_cluster()
            } else {
                MachineSpec::rtx3090()
            };
            let spec = ModelSpec::build(model_id);
            let out = adaptive_compression_for(&spec, policy, &AdaptiveOptions::default(), 2, 7);
            let stat = estimate(&machine, model_id, &SystemSetup::cgx());
            let adapt = estimate_with_schemes(&machine, model_id, &out.schemes);
            let mut hist = std::collections::BTreeMap::new();
            for b in &out.assignment.bits {
                *hist.entry(*b).or_insert(0usize) += 1;
            }
            println!(
                "{model_id} on {}: size {:.2} of static-4bit, error {:.2} of static-4bit",
                machine.name(),
                out.size_ratio_vs_static4,
                out.error_ratio_vs_static4
            );
            for (bits, count) in hist {
                println!("  {bits} bits: {count} layers");
            }
            println!(
                "throughput: static {:.0} -> adaptive {:.0} {} ({:.2}x)",
                stat.throughput,
                adapt.throughput,
                model_id.unit(),
                adapt.throughput / stat.throughput
            );
            ExitCode::SUCCESS
        }
        "memory" => {
            let Some(model_id) = parse_model(model) else {
                return usage();
            };
            let spec = ModelSpec::build(model_id);
            let opt = OptimizerKind::for_model(&spec);
            println!(
                "{model_id}: recipe batch {} / GPU, footprint {:.1} GB at recipe batch",
                spec.per_gpu_batch(),
                training_memory_mb(&spec, spec.per_gpu_batch(), opt) / 1024.0
            );
            for gpu in GpuModel::all() {
                let mb = max_batch(&spec, gpu);
                println!(
                    "  {:<12} ({:>2} GB): max batch {}{}",
                    gpu.to_string(),
                    gpu.spec().ram_gb,
                    mb,
                    if mb < spec.per_gpu_batch() {
                        "  <- recipe does not fit"
                    } else {
                        ""
                    }
                );
            }
            ExitCode::SUCCESS
        }
        "machines" => {
            for m in MachineSpec::table2_systems() {
                println!(
                    "{:<10} {}x{} ({})",
                    m.name(),
                    m.gpus_per_node(),
                    m.gpu(),
                    m.topology().name()
                );
            }
            println!("plus cloud: aws (4xV100), genesis (4x3090), cluster (4x4x3090)");
            ExitCode::SUCCESS
        }
        "models" => {
            for id in ModelId::all() {
                let m = ModelSpec::build(id);
                println!(
                    "{:<22} {:>6.1}M params, {} layers, batch {}/GPU, {}",
                    id.to_string(),
                    m.param_count() as f64 / 1e6,
                    m.layers().len(),
                    m.per_gpu_batch(),
                    id.unit()
                );
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
