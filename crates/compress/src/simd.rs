//! SIMD quantization kernel for stochastic rounding.
//!
//! The QSGD hot loop spends most of its time on the per-element float
//! sequence
//!
//! ```text
//! scaled    = (|v| as f64 * scale).min(s)
//! lower     = scaled as u32
//! threshold = ((scaled - lower as f64) * 2^53) as u64
//! ```
//!
//! which LLVM cannot auto-vectorize: the saturating float->int casts and
//! the serial RNG draw that follows defeat the loop vectorizer. This
//! module computes the same quantities through an exact integer
//! decomposition that vectorizes cleanly, leaving only the (inherently
//! serial) RNG draw and level select to a scalar second pass.
//!
//! # Exactness
//!
//! Let `t = floor(scaled * 2^53)`. Then
//!
//! * `lower == t >> 53`, because `floor(floor(x * 2^53) / 2^53) ==
//!   floor(x)` and `scaled >= 0` makes the truncating cast a floor.
//! * `threshold == t & (2^53 - 1)`. `scaled - lower` is an exact f64
//!   subtraction (the integer part of a float is always representable and
//!   its removal cannot need more mantissa bits), and multiplying an f64
//!   by the power of two `2^53` is exact for any product below `2^53`
//!   (only the exponent changes). So the float sequence computes exactly
//!   `floor(frac(scaled) * 2^53) = t mod 2^53`.
//!
//! And `t` itself needs no float->int conversion: writing `scaled`'s bit
//! pattern as mantissa `m` (with the implicit bit) and unbiased exponent
//! `e`, we have `scaled * 2^53 = m * 2^(e+1)`, so `t` is one left shift of
//! `m` when `e + 1 >= 0` and one right shift otherwise. Shifts, masks and
//! compares all vectorize; on x86-64 the AVX2 variable shifts
//! (`vpsllvq`/`vpsrlvq`) even define out-of-range counts to produce 0,
//! which collapses the sign-of-shift select into a bitwise OR.
//!
//! Domain note: `scaled` is never negative or NaN — `|v| * scale` is
//! either `>= 0` or NaN (`inf * 0`), and `.min(s)` maps NaN to `s` in
//! both the scalar (`f64::min` returns the other operand on NaN) and the
//! vector (`vminpd(x, s)` returns the second operand on NaN) form — so
//! no saturating-cast edge case can diverge. Zeros and subnormals fall
//! out of the shift clamp: their huge right-shift counts produce 0,
//! matching `floor(scaled * 2^53) = 0`.

/// `floor(min(|v| as f64 * scale, s) * 2^53)` for one element — the scalar
/// reference for [`quantize_talls`], also used on vector tails and
/// non-x86 targets.
#[inline]
pub(crate) fn quantize_tall_scalar(v: f32, scale: f64, s: f64) -> u64 {
    let scaled = (v.abs() as f64 * scale).min(s);
    let b = scaled.to_bits();
    let sh = ((b >> 52) as i32) - 1022; // unbiased exponent + 1
    let mant = (b & ((1u64 << 52) - 1)) | (1u64 << 52);
    if sh >= 0 {
        // scaled < 2^10 in practice (s <= 127), so mant << sh cannot
        // overflow; the mask only guards the shift against UB.
        mant << (sh as u32 & 63)
    } else {
        mant >> ((-sh) as u32).min(63)
    }
}

/// Fills `out[j] = floor(min(|bucket[j]| as f64 * scale, s) * 2^53)`,
/// bit-identical to [`quantize_tall_scalar`] on every element. Uses AVX2
/// when the CPU has it, four lanes at a time.
///
/// The caller splits the result into the stochastic-rounding pair with
/// `lower = t >> 53` and `threshold = t & (2^53 - 1)`.
///
/// # Panics
///
/// Panics if `out` is shorter than `bucket`.
pub(crate) fn quantize_talls(bucket: &[f32], scale: f64, s: f64, out: &mut [u64]) {
    assert!(out.len() >= bucket.len(), "tall scratch too short");
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe { quantize_talls_avx2(bucket, scale, s, out) };
        return;
    }
    for (o, &v) in out.iter_mut().zip(bucket) {
        *o = quantize_tall_scalar(v, scale, s);
    }
}

/// AVX2 body of [`quantize_talls`]: four f64 lanes per iteration, scalar
/// tail. Every lane performs the identical IEEE-754 operation sequence,
/// so results are bit-equal to the scalar reference.
///
/// # Safety
///
/// The CPU must support AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn quantize_talls_avx2(bucket: &[f32], scale: f64, s: f64, out: &mut [u64]) {
    use std::arch::x86_64::*;
    let scale4 = _mm256_set1_pd(scale);
    let s4 = _mm256_set1_pd(s);
    let absmask = _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFF_FFFF_FFFF_FFFF));
    let mask52 = _mm256_set1_epi64x(0xF_FFFF_FFFF_FFFF);
    let bit52 = _mm256_set1_epi64x(1i64 << 52);
    let bias = _mm256_set1_epi64x(1022);
    let mut j = 0;
    while j + 4 <= bucket.len() {
        let v4 = _mm_loadu_ps(bucket.as_ptr().add(j));
        // |v| as f64: cvtps2pd is exact and sign-symmetric, so clearing
        // the sign bit after widening equals widening |v|.
        let d4 = _mm256_and_pd(_mm256_cvtps_pd(v4), absmask);
        // Operand order matters: vminpd returns its *second* operand when
        // the first is NaN, matching f64::min(NaN, s) == s.
        let scaled = _mm256_min_pd(_mm256_mul_pd(d4, scale4), s4);
        let b = _mm256_castpd_si256(scaled);
        // sh = unbiased exponent + 1 (sign bit is clear, so the raw
        // shift-by-52 is the biased exponent).
        let sh = _mm256_sub_epi64(_mm256_srli_epi64(b, 52), bias);
        let mant = _mm256_or_si256(_mm256_and_si256(b, mask52), bit52);
        // vpsllvq/vpsrlvq define out-of-range counts (incl. negative ones
        // viewed as u64) to yield 0, so exactly one side survives and the
        // sh >= 0 select becomes an OR. At sh == 0 both sides equal mant.
        let left = _mm256_sllv_epi64(mant, sh);
        let right = _mm256_srlv_epi64(mant, _mm256_sub_epi64(_mm256_setzero_si256(), sh));
        let t = _mm256_or_si256(left, right);
        _mm256_storeu_si256(out.as_mut_ptr().add(j).cast::<__m256i>(), t);
        j += 4;
    }
    for (o, &v) in out[j..bucket.len()].iter_mut().zip(&bucket[j..]) {
        *o = quantize_tall_scalar(v, scale, s);
    }
}

/// `max_j |bucket[j]|` as an `f32` — the max-norm pass of the encoder.
///
/// Value-identical to the serial fold `fold(0.0f64, |m, x| m.max(x.abs()
/// as f64))` narrowed back to the winning element: widening `f32 -> f64`
/// is exact and monotone, so the maximum over widened values is the
/// widened maximum, and `f64::max` / `f32::max` both ignore NaN in the
/// incoming element (the fold's accumulator can never become NaN). `-0.0`
/// cannot surface either: `abs` clears the sign, and the accumulators
/// start at `+0.0`. Reassociating the fold into lanes is therefore safe,
/// which is what lets this vectorize — the serial `maxsd` chain it
/// replaces ran at its ~4-cycle latency, one element at a time.
pub(crate) fn max_abs(bucket: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx") {
        // SAFETY: AVX support was just verified at runtime.
        return unsafe { max_abs_avx(bucket) };
    }
    bucket.iter().fold(0.0f32, |m, x| m.max(x.abs()))
}

/// AVX body of [`max_abs`]: 8 lanes of `vmaxps` per iteration. Operand
/// order keeps the NaN-skip semantics — `vmaxps(x, acc)` returns `acc`
/// (the second operand) when `x` is NaN, exactly as `f32::max(acc, NaN)`
/// would.
///
/// # Safety
///
/// The CPU must support AVX.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn max_abs_avx(bucket: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    let absmask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFF_FFFF));
    let mut acc = _mm256_setzero_ps();
    let mut j = 0;
    while j + 8 <= bucket.len() {
        let v = _mm256_and_ps(_mm256_loadu_ps(bucket.as_ptr().add(j)), absmask);
        acc = _mm256_max_ps(v, acc);
        j += 8;
    }
    let mut lanes = [0.0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
    let mut m = lanes.iter().fold(0.0f32, |m, &x| m.max(x));
    for &v in &bucket[j..] {
        m = m.max(v.abs());
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgx_tensor::Rng;

    /// The original float sequence, kept verbatim as the reference.
    fn float_reference(v: f32, scale: f64, s: f64) -> (u32, u64) {
        const SCALE_2_53: f64 = (1u64 << 53) as f64;
        let scaled = (v.abs() as f64 * scale).min(s);
        let lower = scaled as u32;
        let threshold = ((scaled - lower as f64) * SCALE_2_53) as u64;
        (lower, threshold)
    }

    fn split(t: u64) -> (u32, u64) {
        ((t >> 53) as u32, t & ((1u64 << 53) - 1))
    }

    #[test]
    fn scalar_matches_float_reference_on_random_inputs() {
        let mut rng = Rng::seed_from_u64(41);
        for s in [1.0f64, 3.0, 7.0, 127.0] {
            for _ in 0..20_000 {
                let v = (rng.normal() * 3.0) as f32;
                let norm = rng.uniform() * 10.0 + 1e-6;
                let scale = s / norm;
                assert_eq!(
                    split(quantize_tall_scalar(v, scale, s)),
                    float_reference(v, scale, s),
                    "v={v} scale={scale} s={s}"
                );
            }
        }
    }

    #[test]
    fn scalar_matches_float_reference_on_edge_cases() {
        let s = 7.0f64;
        let cases: &[(f32, f64)] = &[
            (0.0, 1.0),
            (-0.0, 1.0),
            (1.0, 7.0),         // scaled exactly at the clamp
            (1.0, 6.999999999), // just below
            (f32::MIN_POSITIVE, 1.0),
            (1.0e-38, 1.0e-280),  // subnormal scaled
            (1.0e-30, 1.0e-290),  // zero after underflow
            (f32::INFINITY, 0.0), // inf * 0 = NaN -> clamped to s
            (f32::MAX, 0.0),      // 0 * finite = 0
            (3.0, 1.0),           // integer scaled: threshold 0
            (0.5, 1.0),
        ];
        for &(v, scale) in cases {
            assert_eq!(
                split(quantize_tall_scalar(v, scale, s)),
                float_reference(v, scale, s),
                "v={v} scale={scale}"
            );
        }
    }

    #[test]
    fn vector_matches_scalar_lane_for_lane() {
        let mut rng = Rng::seed_from_u64(43);
        for s in [1.0f64, 7.0, 127.0] {
            // Lengths around the 4-lane boundary exercise the tail loop.
            for n in [0usize, 1, 3, 4, 5, 7, 8, 127, 128, 1000] {
                let bucket: Vec<f32> = (0..n).map(|_| (rng.normal() * 2.0) as f32).collect();
                let norm = bucket.iter().fold(1e-9f64, |m, x| m.max(x.abs() as f64));
                let scale = s / norm;
                let mut fast = vec![0u64; n];
                quantize_talls(&bucket, scale, s, &mut fast);
                for (j, &v) in bucket.iter().enumerate() {
                    assert_eq!(
                        fast[j],
                        quantize_tall_scalar(v, scale, s),
                        "lane {j} of {n}, s={s}"
                    );
                }
            }
        }
    }

    #[test]
    fn vector_handles_special_values_in_lanes() {
        let bucket = [
            0.0f32,
            -0.0,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MIN_POSITIVE,
            -1.0,
            7.5,
            1.0e-38,
        ];
        for scale in [0.0f64, 1.0, 1.0e-300] {
            let mut fast = vec![0u64; bucket.len()];
            quantize_talls(&bucket, scale, 7.0, &mut fast);
            for (j, &v) in bucket.iter().enumerate() {
                assert_eq!(fast[j], quantize_tall_scalar(v, scale, 7.0), "lane {j}");
            }
        }
    }

    #[test]
    fn max_abs_matches_serial_fold() {
        let mut rng = Rng::seed_from_u64(47);
        // Lengths around the 8-lane boundary exercise the tail loop.
        for n in [0usize, 1, 7, 8, 9, 15, 16, 127, 128, 1000] {
            let bucket: Vec<f32> = (0..n).map(|_| (rng.normal() * 3.0) as f32).collect();
            let want = bucket.iter().fold(0.0f64, |m, x| m.max(x.abs() as f64));
            assert_eq!(max_abs(&bucket) as f64, want, "n={n}");
        }
        // Special values: signed zeros, infinities, and a lone huge lane.
        let tricky = [0.0f32, -0.0, f32::INFINITY, -1.0e30, 1.0, -3.5, 0.25, 2.0, 0.125];
        let want = tricky.iter().fold(0.0f64, |m, x| m.max(x.abs() as f64));
        assert_eq!(max_abs(&tricky) as f64, want);
    }
}
