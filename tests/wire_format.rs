//! Wire-format determinism and stability tests.
//!
//! CGX's collectives rely on every rank decoding identical bytes; the wire
//! formats must therefore be fully deterministic functions of (input, rng
//! state, parameters), stable across calls, and must never waste space
//! beyond their predicted sizes.

use cgx::compress::CompressionScheme;
use cgx::tensor::{Rng, Tensor};
use proptest::prelude::*;

fn all_schemes() -> Vec<CompressionScheme> {
    vec![
        CompressionScheme::None,
        CompressionScheme::Qsgd {
            bits: 4,
            bucket_size: 128,
        },
        CompressionScheme::Qsgd {
            bits: 2,
            bucket_size: 1024,
        },
        CompressionScheme::Nuqsgd {
            bits: 4,
            bucket_size: 128,
        },
        CompressionScheme::TopK { ratio: 0.1 },
        CompressionScheme::OneBit { bucket_size: 64 },
        CompressionScheme::Fake { gamma: 8.0 },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn payload_bytes_are_deterministic_in_seed(
        len in 1usize..3000,
        seed in 0u64..1000,
        data_seed in 0u64..1000,
    ) {
        let mut data_rng = Rng::seed_from_u64(data_seed);
        let g = Tensor::randn(&mut data_rng, &[len]);
        for scheme in all_schemes() {
            let mut c1 = scheme.build();
            let mut c2 = scheme.build();
            let mut r1 = Rng::seed_from_u64(seed);
            let mut r2 = Rng::seed_from_u64(seed);
            let e1 = c1.compress(&g, &mut r1);
            let e2 = c2.compress(&g, &mut r2);
            prop_assert_eq!(
                e1.payload().as_ref(),
                e2.payload().as_ref(),
                "scheme {} not deterministic",
                scheme
            );
        }
    }

    #[test]
    fn quantized_payloads_never_exceed_prediction(
        len in 1usize..5000,
        seed in 0u64..1000,
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let g = Tensor::randn(&mut rng, &[len]);
        for scheme in all_schemes() {
            let mut c = scheme.build();
            let enc = c.compress(&g, &mut rng);
            prop_assert!(
                enc.payload_bytes() <= c.compressed_bytes(len),
                "scheme {}: {} > {}",
                scheme,
                enc.payload_bytes(),
                c.compressed_bytes(len)
            );
        }
    }

    #[test]
    fn decode_is_a_pure_function_of_the_payload(
        len in 1usize..2000,
        seed in 0u64..1000,
    ) {
        // Decoding the same payload twice (or with a fresh compressor of
        // identical parameters) must give identical tensors — the property
        // the bit-exact consensus of the collectives rests on.
        let mut rng = Rng::seed_from_u64(seed);
        let g = Tensor::randn(&mut rng, &[len]);
        for scheme in all_schemes() {
            let mut c = scheme.build();
            let enc = c.compress(&g, &mut rng);
            let a = c.decompress(&enc);
            let b = c.decompress(&enc);
            prop_assert_eq!(a.as_slice(), b.as_slice());
            let fresh = scheme.build();
            let d = fresh.decompress(&enc);
            prop_assert_eq!(a.as_slice(), d.as_slice(), "scheme {}", scheme);
        }
    }
}

#[test]
fn qsgd_wire_layout_is_stable() {
    // Golden-ish pin: a fixed input under a fixed seed must keep producing
    // the same payload (catches accidental wire-format changes).
    let g = Tensor::from_slice(&[0.5, -1.0, 0.25, 0.0, 2.0, -0.125, 0.75, 1.5]);
    let mut c = CompressionScheme::Qsgd {
        bits: 4,
        bucket_size: 4,
    }
    .build();
    let mut rng = Rng::seed_from_u64(42);
    let enc = c.compress(&g, &mut rng);
    // 2 buckets x (4-byte norm + 4 x 4-bit levels) = 2 x 6 bytes.
    assert_eq!(enc.payload_bytes(), 12);
    // The norms are the bucket max-norms, bit-exact.
    let p = enc.payload();
    assert_eq!(f32::from_le_bytes([p[0], p[1], p[2], p[3]]), 1.0);
    assert_eq!(f32::from_le_bytes([p[6], p[7], p[8], p[9]]), 2.0);
    // Decoding never flips a sign (stochastic rounding can zero a value,
    // but a nonzero decoded value always carries the input's sign).
    let rt = c.decompress(&enc);
    for (a, b) in rt.as_slice().iter().zip(g.as_slice()) {
        if *a != 0.0 && *b != 0.0 {
            assert!(a.signum() == b.signum(), "{a} vs {b}");
        }
    }
}
