//! Figure 11: time per iteration for CGX's communication backends — the
//! bespoke shared-memory transport (SHM) vs NCCL p2p vs GPU-aware MPI.
//!
//! Paper shape: SHM outperforms the other backends by up to 33% (single
//! memory transfer through the copy engine, minimal synchronization).

use cgx_bench::{fmt_ms, note, render_table};
use cgx_core::api::CgxBuilder;
use cgx_models::{ModelId, ModelSpec};
use cgx_simnet::{simulate_step, CommBackend, ComputeProfile, MachineSpec, StepConfig};

fn main() {
    let rtx = MachineSpec::rtx3090();
    let mut rows = Vec::new();
    for model in [ModelId::ResNet50, ModelId::TransformerXl, ModelId::VitBase] {
        let spec = ModelSpec::build(model);
        let mut session = CgxBuilder::new().build();
        session.register_model_spec(&spec);
        let msgs = session.layer_messages(spec.precision());
        let compute = ComputeProfile::new(rtx.gpu().step_compute_seconds(&spec));
        let mut row = vec![model.to_string()];
        let mut times = Vec::new();
        for backend in CommBackend::all() {
            let mut cfg = StepConfig::cgx(rtx.clone());
            cfg.backend = backend;
            let r = simulate_step(&cfg, &msgs, compute);
            times.push(r.step_seconds);
            row.push(fmt_ms(r.step_seconds));
        }
        row.push(format!("+{:.0}%", 100.0 * (times[2] / times[0] - 1.0)));
        rows.push(row);
    }
    print!(
        "{}",
        render_table(
            "Figure 11: time per iteration by backend (4-bit CGX, 8x RTX 3090)",
            &["model", "SHM", "NCCL", "MPI", "MPI vs SHM"],
            &rows,
        )
    );
    note("paper: the SHM backend outperforms other communication libraries by up to 33%.");
}
