//! NUQSGD: non-uniformly quantized stochastic gradient descent.
//!
//! Ramezani-Kebrya et al. (JMLR 2021) — cited by the paper as the
//! variance-reduction follow-up to QSGD by the same group. Normalized
//! gradient magnitudes of DNNs concentrate near zero, so a *geometric*
//! level grid (`1, 1/2, 1/4, ..., 2^-(s-1), 0`) wastes far less variance
//! than QSGD's uniform grid at the same bit budget. Components are
//! stochastically rounded between the two nearest levels so the estimator
//! stays unbiased.
//!
//! Wire format per bucket: one `f32` max-norm scale, then `b` bits per
//! component (sign + level index), identical size to QSGD — only the
//! codebook differs.

use crate::{BitReader, BitWriter, Compressor, Encoded, ScratchPool};
use cgx_tensor::{Rng, Shape, Tensor};

/// Non-uniform (exponential-grid) stochastic quantizer with bucketing.
///
/// # Examples
///
/// ```
/// use cgx_compress::{Compressor, NuqsgdCompressor};
/// use cgx_tensor::{Rng, Tensor};
/// let mut rng = Rng::seed_from_u64(0);
/// let g = Tensor::randn(&mut rng, &[512]);
/// let mut q = NuqsgdCompressor::new(4, 128);
/// let enc = q.compress(&g, &mut rng);
/// assert_eq!(enc.payload_bytes(), q.compressed_bytes(512));
/// ```
#[derive(Debug, Clone)]
pub struct NuqsgdCompressor {
    bits: u32,
    bucket_size: usize,
    /// Level values in `[0, 1]`, descending: `1, 1/2, ..., 2^-(s-1), 0`.
    levels: Vec<f64>,
    /// Per-bucket code scratch, reused across calls.
    codes: Vec<u32>,
}

impl NuqsgdCompressor {
    /// Creates a non-uniform quantizer.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `2..=8` or `bucket_size` is zero.
    pub fn new(bits: u32, bucket_size: usize) -> Self {
        assert!((2..=8).contains(&bits), "bits must be in 2..=8, got {bits}");
        assert!(bucket_size > 0, "bucket size must be positive");
        // With b bits we store sign + index into s+1 magnitude levels,
        // where s = 2^(b-1) - 1 non-zero levels (same budget as QSGD).
        let s = (1u32 << (bits - 1)) - 1;
        let mut levels: Vec<f64> = (0..s).map(|i| 0.5f64.powi(i as i32)).collect();
        levels.push(0.0);
        NuqsgdCompressor {
            bits,
            bucket_size,
            levels,
            codes: Vec::new(),
        }
    }

    /// Bit width per component.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Bucket size.
    pub fn bucket_size(&self) -> usize {
        self.bucket_size
    }

    /// The magnitude codebook (descending, ending in 0).
    pub fn codebook(&self) -> &[f64] {
        &self.levels
    }

    /// Stochastically rounds `a` in `[0, 1]` to a codebook index.
    fn quantize_magnitude(&self, a: f64, rng: &mut Rng) -> u32 {
        debug_assert!((0.0..=1.0).contains(&a));
        // Find the bracketing pair: levels[i] >= a >= levels[i+1].
        for i in 0..self.levels.len() - 1 {
            let hi = self.levels[i];
            let lo = self.levels[i + 1];
            if a <= hi && a >= lo {
                let p = if hi > lo { (a - lo) / (hi - lo) } else { 0.0 };
                return if rng.bernoulli(p) {
                    i as u32
                } else {
                    (i + 1) as u32
                };
            }
        }
        (self.levels.len() - 1) as u32
    }

    /// Quantizes `data` into `w`. Because the stream is LSB-first, writing
    /// the sign bit then the `bits-1` index bits is bit-identical to
    /// writing one combined code `sign | (idx << 1)` of width `bits` — so
    /// each bucket can be staged in the `codes` scratch and emitted through
    /// the word-wide [`BitWriter::write_run`] kernel.
    fn encode_into(&mut self, data: &[f32], rng: &mut Rng, w: &mut BitWriter) {
        let zero_idx = (self.levels.len() - 1) as u32;
        let mut codes = std::mem::take(&mut self.codes);
        for bucket in data.chunks(self.bucket_size) {
            let norm = bucket.iter().fold(0.0f64, |m, x| m.max(x.abs() as f64));
            w.write_f32(norm as f32);
            codes.clear();
            if norm == 0.0 {
                codes.resize(bucket.len(), zero_idx << 1);
            } else {
                for &v in bucket {
                    let a = (v.abs() as f64 / norm).min(1.0);
                    let idx = self.quantize_magnitude(a, rng);
                    codes.push(u32::from(v < 0.0) | (idx << 1));
                }
            }
            w.write_run(&codes, self.bits);
        }
        self.codes = codes;
    }

    /// Decodes a payload, invoking `f(index, value)` per element in stream
    /// order; the shared kernel behind all decompression entry points.
    fn decode_with(&self, enc: &Encoded, mut f: impl FnMut(usize, f32)) {
        let n = enc.shape().len();
        let mut r = BitReader::new(enc.payload());
        let mut remaining = n;
        let mut i = 0usize;
        while remaining > 0 {
            let bucket_len = remaining.min(self.bucket_size);
            let norm = r.read_f32() as f64;
            r.read_run(self.bits, bucket_len, |code| {
                let neg = code & 1 == 1;
                let idx = (code >> 1) as usize;
                let mag = norm * self.levels[idx.min(self.levels.len() - 1)];
                f(i, if neg { -mag as f32 } else { mag as f32 });
                i += 1;
            });
            remaining -= bucket_len;
        }
    }
}

impl Compressor for NuqsgdCompressor {
    fn name(&self) -> String {
        format!("nuqsgd({}b,{})", self.bits, self.bucket_size)
    }

    fn compress(&mut self, grad: &Tensor, rng: &mut Rng) -> Encoded {
        let mut w = BitWriter::with_capacity(self.compressed_bytes(grad.len()));
        self.encode_into(grad.as_slice(), rng, &mut w);
        Encoded::new(grad.shape().clone(), w.finish())
    }

    fn compress_slice(&mut self, data: &[f32], rng: &mut Rng, pool: &ScratchPool) -> Encoded {
        let mut w = BitWriter::from_buf(pool.take_buf(self.compressed_bytes(data.len())));
        self.encode_into(data, rng, &mut w);
        Encoded::new(Shape::vector(data.len()), w.finish())
    }

    fn compress_pooled(&mut self, grad: &Tensor, rng: &mut Rng, pool: &ScratchPool) -> Encoded {
        let mut w = BitWriter::from_buf(pool.take_buf(self.compressed_bytes(grad.len())));
        self.encode_into(grad.as_slice(), rng, &mut w);
        Encoded::new(grad.shape().clone(), w.finish())
    }

    fn decompress(&self, enc: &Encoded) -> Tensor {
        let mut out = Vec::with_capacity(enc.shape().len());
        self.decode_with(enc, |_, v| out.push(v));
        Tensor::from_vec(enc.shape().dims(), out)
    }

    fn decompress_into(&self, enc: &Encoded, out: &mut [f32]) {
        assert_eq!(
            enc.shape().len(),
            out.len(),
            "decompress_into length mismatch"
        );
        self.decode_with(enc, |i, v| out[i] = v);
    }

    fn decompress_add_into(&self, enc: &Encoded, out: &mut [f32]) {
        assert_eq!(
            enc.shape().len(),
            out.len(),
            "decompress_add_into length mismatch"
        );
        self.decode_with(enc, |i, v| out[i] += v);
    }

    fn compressed_bytes(&self, n: usize) -> usize {
        let buckets = n.div_ceil(self.bucket_size);
        let bits = buckets as u64 * 32 + n as u64 * self.bits as u64;
        bits.div_ceil(8) as usize
    }

    fn kernel_cost_per_element(&self) -> f64 {
        // A log-domain lookup instead of a multiply: comparable to QSGD.
        2.5e-11
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{round_trip, QsgdCompressor};

    #[test]
    fn codebook_is_geometric_with_zero() {
        let q = NuqsgdCompressor::new(4, 128);
        // s = 7 non-zero levels + 0.
        assert_eq!(q.codebook().len(), 8);
        assert_eq!(q.codebook()[0], 1.0);
        assert_eq!(q.codebook()[1], 0.5);
        assert_eq!(*q.codebook().last().unwrap(), 0.0);
    }

    #[test]
    fn payload_size_matches_prediction_and_qsgd() {
        let mut rng = Rng::seed_from_u64(1);
        for n in [1usize, 100, 128, 1000] {
            let g = Tensor::randn(&mut rng, &[n]);
            let mut q = NuqsgdCompressor::new(4, 128);
            let enc = q.compress(&g, &mut rng);
            assert_eq!(enc.payload_bytes(), q.compressed_bytes(n));
            // Same wire budget as QSGD at equal parameters.
            assert_eq!(
                q.compressed_bytes(n),
                QsgdCompressor::new(4, 128).compressed_bytes(n)
            );
        }
    }

    #[test]
    fn unbiased_estimator() {
        let grad = Tensor::from_slice(&[0.3, -0.7, 0.05, 0.9, -0.2, 0.0, 0.61, -0.33]);
        let mut rng = Rng::seed_from_u64(7);
        let mut q = NuqsgdCompressor::new(4, 8);
        let trials = 30_000;
        let mut acc = vec![0.0f64; grad.len()];
        for _ in 0..trials {
            let rt = round_trip(&mut q, &grad, &mut rng);
            for (a, v) in acc.iter_mut().zip(rt.as_slice()) {
                *a += *v as f64;
            }
        }
        for (a, g) in acc.iter().zip(grad.as_slice()) {
            let mean = a / trials as f64;
            assert!((mean - *g as f64).abs() < 0.02, "mean {mean} vs {g}");
        }
    }

    #[test]
    fn beats_qsgd_on_concentrated_gradients() {
        // Heavy concentration near zero (log-normal magnitudes): the
        // geometric grid should produce lower relative error than the
        // uniform grid at the same bit budget.
        let mut rng = Rng::seed_from_u64(3);
        let data: Vec<f32> = (0..8192)
            .map(|_| {
                let sign = if rng.bernoulli(0.5) { 1.0 } else { -1.0 };
                (sign * rng.log_normal(-4.0, 1.5)) as f32
            })
            .collect();
        let g = Tensor::from_slice(&data);
        let mut nu = NuqsgdCompressor::new(4, 128);
        let mut un = QsgdCompressor::new(4, 128);
        let e_nu = round_trip(&mut nu, &g, &mut rng).l2_distance(&g);
        let e_un = round_trip(&mut un, &g, &mut rng).l2_distance(&g);
        assert!(e_nu < e_un, "nuqsgd {e_nu} vs qsgd {e_un}");
    }

    #[test]
    fn zero_tensor_roundtrips_exactly() {
        let mut rng = Rng::seed_from_u64(5);
        let g = Tensor::zeros(&[300]);
        let mut q = NuqsgdCompressor::new(3, 64);
        assert_eq!(round_trip(&mut q, &g, &mut rng).as_slice(), g.as_slice());
    }

    #[test]
    fn extreme_values_stay_finite_and_bounded() {
        let mut rng = Rng::seed_from_u64(9);
        let g = Tensor::from_slice(&[1e30, -1e-30, 0.0, -1e30]);
        let mut q = NuqsgdCompressor::new(4, 4);
        let rt = round_trip(&mut q, &g, &mut rng);
        assert!(rt.as_slice().iter().all(|x| x.is_finite()));
        assert!(rt.norm_inf() <= 1e30 * 1.001);
    }

    #[test]
    fn name_reflects_parameters() {
        assert_eq!(NuqsgdCompressor::new(4, 128).name(), "nuqsgd(4b,128)");
    }

    #[test]
    fn pooled_compress_is_bit_identical() {
        let mut seed_rng = Rng::seed_from_u64(31);
        let pool = ScratchPool::new();
        for n in [1usize, 127, 128, 1000] {
            for bits in [2u32, 3, 4, 8] {
                let g = Tensor::randn(&mut seed_rng, &[n]);
                let mut q = NuqsgdCompressor::new(bits, 128);
                let mut rng_a = Rng::seed_from_u64(8);
                let mut rng_b = Rng::seed_from_u64(8);
                let plain = q.compress(&g, &mut rng_a);
                let pooled = q.compress_slice(g.as_slice(), &mut rng_b, &pool);
                assert_eq!(plain.payload(), pooled.payload(), "n={n} bits={bits}");
                pool.recycle(pooled);
            }
        }
    }

    #[test]
    fn fused_decode_matches_decompress() {
        let mut rng = Rng::seed_from_u64(33);
        for bits in [2u32, 3, 4, 8] {
            let g = Tensor::randn(&mut rng, &[300]);
            let mut q = NuqsgdCompressor::new(bits, 128);
            let enc = q.compress(&g, &mut rng);
            let dense = q.decompress(&enc);
            let mut overwrite = vec![5.0f32; g.len()];
            q.decompress_into(&enc, &mut overwrite);
            assert_eq!(overwrite, dense.as_slice(), "bits={bits}");
            let mut fused = vec![1.0f32; g.len()];
            q.decompress_add_into(&enc, &mut fused);
            for (f, d) in fused.iter().zip(dense.as_slice()) {
                assert_eq!(*f, 1.0 + *d, "bits={bits}");
            }
        }
    }
}
