//! Named atomic metrics: counters, gauges, and fixed-bucket histograms.
//!
//! The registry unifies what used to be scattered ad-hoc statistics
//! (`AllreduceStats` fields, `FaultStats`, `ScratchPool` hit counters,
//! engine `idle_ns`) under one namespace. Handles are `Arc`-backed, so a
//! metric resolved once (at construction time, outside the hot path) costs
//! a single relaxed atomic op per update afterwards.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Well-known metric names shared across crates.
///
/// Transports, engines, and reports all meet in one registry namespace;
/// these constants keep the producer (`set_obs` wiring in the transport
/// crates) and every consumer (dashboards, report binaries, tests
/// asserting on snapshots) spelling a name identically. Names are
/// `component.what` in `snake_case`.
pub mod names {
    /// Payload messages handed to the transport for sending.
    pub const TRANSPORT_MSGS_SENT: &str = "transport.msgs_sent";
    /// Payload bytes handed to the transport (pre-framing).
    pub const TRANSPORT_BYTES_SENT: &str = "transport.bytes_sent";
    /// Bytes actually placed on the wire, framing included (TCP only).
    pub const TRANSPORT_WIRE_BYTES_SENT: &str = "transport.wire_bytes_sent";
    /// Payload messages delivered to receivers.
    pub const TRANSPORT_MSGS_RECV: &str = "transport.msgs_recv";
    /// Payload bytes delivered to receivers.
    pub const TRANSPORT_BYTES_RECV: &str = "transport.bytes_recv";
    /// Frames moved by vectored (`writev`-style) socket writes — the
    /// zero-copy wire path's coalescing effectiveness (TCP only).
    pub const TRANSPORT_WRITEV_FRAMES: &str = "transport.writev_frames";
    /// Socket-facing syscalls issued (reads + writes + polls; TCP only).
    pub const TRANSPORT_SYSCALLS: &str = "transport.syscalls";
    /// Peers declared dead (socket reset, EOF mid-frame, or liveness
    /// deadline elapsed; TCP only).
    pub const TRANSPORT_PEER_DEAD: &str = "transport.peer_dead";
    /// Successful socket re-establishments after a transient drop
    /// (TCP only).
    pub const TRANSPORT_RECONNECTS: &str = "transport.reconnects";
    /// Liveness heartbeat frames emitted on the CTRL lane (TCP only).
    pub const TRANSPORT_HEARTBEATS: &str = "transport.heartbeats";
    /// Re-plans committed by the live adaptive compression controller.
    pub const ADAPTIVE_REPLANS: &str = "adaptive.replans";
    /// Current adaptive plan epoch (gauge; 0 = base plan).
    pub const ADAPTIVE_PLAN_EPOCH: &str = "adaptive.plan_epoch";
    /// Nominal wire bits per compressible element of the current plan,
    /// in millibits (gauge — gauges are integral).
    pub const ADAPTIVE_MILLIBITS_PER_ELEMENT: &str = "adaptive.millibits_per_element";
    /// Current plan's compressed size vs uniform 4-bit, in parts per
    /// thousand (gauge).
    pub const ADAPTIVE_SIZE_RATIO_PERMILLE: &str = "adaptive.size_ratio_permille";
    /// Advisory measured wire bandwidth EWMA, bytes/s (gauge; never
    /// feeds back into plan bits — see the controller docs).
    pub const ADAPTIVE_BANDWIDTH_BPS: &str = "adaptive.bandwidth_bps";
    /// Jobs admitted by a serve daemon (`cgx-serve` only).
    pub const SERVE_JOBS_ATTACHED: &str = "serve.jobs_attached";
    /// Jobs fully detached (queues drained) from a serve daemon.
    pub const SERVE_JOBS_DETACHED: &str = "serve.jobs_detached";
    /// Attach requests rejected by admission control.
    pub const SERVE_JOBS_REJECTED: &str = "serve.jobs_rejected";
    /// Tenant frames the daemon pump placed on the physical fabric.
    pub const SERVE_FRAMES_OUT: &str = "serve.frames_out";
    /// Tenant payload bytes the daemon pump placed on the fabric.
    pub const SERVE_BYTES_OUT: &str = "serve.bytes_out";
    /// Inbound tenant frames routed to per-job inboxes.
    pub const SERVE_FRAMES_ROUTED: &str = "serve.frames_routed";
    /// Inbound tenant payload bytes routed to per-job inboxes.
    pub const SERVE_BYTES_ROUTED: &str = "serve.bytes_routed";
    /// Orphaned frames (job id not attached) evicted from the bounded
    /// pre-attach buffer.
    pub const SERVE_ORPHAN_DROPPED: &str = "serve.orphan_dropped";
}

/// Monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `v` to the counter.
    #[inline]
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrite the gauge value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if `v` is larger (atomic max).
    #[inline]
    pub fn raise(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two buckets in a [`Histogram`].
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Power-of-two-bucketed histogram: bucket `i` counts samples `v` with
/// `2^i <= v+1 < 2^(i+1)` (bucket 0 holds zeros, bucket 1 holds 1–2, ...).
/// Good enough to eyeball latency distributions without any allocation on
/// record.
#[derive(Debug)]
pub struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// Shared handle to a histogram.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let idx = (64 - (v.saturating_add(1)).leading_zeros() as usize - 1).min(HISTOGRAM_BUCKETS - 1);
        let h = &self.0;
        h.buckets[idx].fetch_add(1, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(v, Ordering::Relaxed);
        h.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples (0.0 if empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Copy of the bucket counts.
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed))
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Snapshot value of one metric, decoupled from the live atomics.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(u64),
    /// Histogram summary: `(count, sum, max)`.
    Histogram {
        /// Number of samples.
        count: u64,
        /// Sum of samples.
        sum: u64,
        /// Largest sample.
        max: u64,
    },
}

impl MetricValue {
    /// Scalar view: counters/gauges return their value, histograms their sum.
    pub fn scalar(&self) -> u64 {
        match *self {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => v,
            MetricValue::Histogram { sum, .. } => sum,
        }
    }
}

/// Point-in-time snapshot of every registered metric, sorted by name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Metric name → value at snapshot time.
    pub values: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// Look up a metric's scalar value (counter/gauge value, histogram sum).
    pub fn get(&self, name: &str) -> Option<u64> {
        self.values.get(name).map(MetricValue::scalar)
    }

    /// Render as a JSON object (`{"name": value, ...}`; histograms become
    /// `{"count":..,"sum":..,"max":..}` objects).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, v)) in self.values.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:", crate::export::json_string(name));
            match *v {
                MetricValue::Counter(c) => {
                    let _ = write!(out, "{c}");
                }
                MetricValue::Gauge(g) => {
                    let _ = write!(out, "{g}");
                }
                MetricValue::Histogram { count, sum, max } => {
                    let _ = write!(out, "{{\"count\":{count},\"sum\":{sum},\"max\":{max}}}");
                }
            }
        }
        out.push('}');
        out
    }
}

/// Clone-able registry of named metrics.
///
/// Registration (`counter`/`gauge`/`histogram`) takes a mutex and is meant
/// for construction time; the returned handles are lock-free. Asking for an
/// existing name returns a handle to the *same* underlying atomic, so
/// independent components can share a metric by name.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl MetricsRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get-or-create a counter named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {name:?} already registered as {other:?}, wanted counter"),
        }
    }

    /// Get-or-create a gauge named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {name:?} already registered as {other:?}, wanted gauge"),
        }
    }

    /// Get-or-create a histogram named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::default()))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric {name:?} already registered as {other:?}, wanted histogram"),
        }
    }

    /// Snapshot every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.metrics.lock().unwrap();
        let values = m
            .iter()
            .map(|(name, metric)| {
                let v = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        max: h.max(),
                    },
                };
                (name.clone(), v)
            })
            .collect();
        MetricsSnapshot { values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_shared_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(3);
        b.inc();
        assert_eq!(reg.snapshot().get("x"), Some(4));
    }

    #[test]
    fn gauge_raise_is_max() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("g");
        g.set(5);
        g.raise(3);
        assert_eq!(g.get(), 5);
        g.raise(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn histogram_summary() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("h");
        for v in [0u64, 1, 2, 1000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), u64::MAX);
        let buckets = h.buckets();
        assert_eq!(buckets.iter().sum::<u64>(), 5);
        // 0 is alone in bucket 0; 1 and 2 share bucket 1; u64::MAX lands in
        // the last bucket.
        assert_eq!(buckets[0], 1);
        assert_eq!(buckets[1], 2);
        assert_eq!(buckets[HISTOGRAM_BUCKETS - 1], 1);
    }

    #[test]
    fn snapshot_is_decoupled_and_json_renders() {
        let reg = MetricsRegistry::new();
        reg.counter("a").add(7);
        reg.gauge("b").set(2);
        reg.histogram("c").record(10);
        let snap = reg.snapshot();
        reg.counter("a").add(100);
        assert_eq!(snap.get("a"), Some(7));
        let json = snap.to_json();
        assert!(json.contains("\"a\":7"), "{json}");
        assert!(json.contains("\"b\":2"), "{json}");
        assert!(json.contains("\"count\":1"), "{json}");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }
}
