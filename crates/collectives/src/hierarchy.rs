//! Node-aware hierarchical allreduce.
//!
//! The paper's multi-node deployments (Table 5) never run the compressed
//! collective flat across every GPU: intra-node links (NVLink/SHM) are an
//! order of magnitude faster than the inter-node network, so the reduction
//! is staged — GPUs on one node first combine locally at full precision,
//! one *leader* per node then runs the compressed scatter-reduce-allgather
//! against the other leaders over the slow links, and the consensus result
//! fans back out locally. Compression is spent exactly where bandwidth is
//! scarce; the cheap links carry raw floats and contribute no extra
//! quantization error.
//!
//! [`Topology`] describes which rank lives on which node;
//! [`allreduce_hierarchical`] executes the three stages over any
//! [`Transport`] (thread-backed SHM, TCP sockets, or a mix — the
//! transport's rank space is flat; the topology is what layers it).
//! Consensus is preserved: the leader exchange is the bit-exact SRA, and
//! both intra-node hops move raw little-endian `f32`s, so every rank in
//! the world finishes with byte-identical output.

use crate::error::CommError;
use crate::membership::{Membership, MembershipView};
use crate::reduce::{allreduce_sra_scratch, AllreduceStats};
use crate::transport::{collective_tag, Tag, Transport};
use bytes::{BufMut, Bytes, BytesMut};
use cgx_compress::{Compressor, Encoded, ScratchPool};
use cgx_tensor::{Rng, Tensor};

/// Phase byte for the intra-node member -> leader gather. Engine
/// collectives only emit phases 1 and 2 and membership gossip uses
/// [`crate::transport::MEMBERSHIP_PHASE`], so these lanes never alias.
const UP_PHASE: u8 = 0xA1;
/// Phase byte for the intra-node leader -> member result broadcast.
const DOWN_PHASE: u8 = 0xA2;

fn up_tag() -> Tag {
    collective_tag(0, 0, UP_PHASE)
}

fn down_tag() -> Tag {
    collective_tag(0, 0, DOWN_PHASE)
}

/// Which node each rank lives on: `node_of[rank]` is an arbitrary node id.
/// The lowest rank on each node is its leader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    node_of: Vec<usize>,
}

impl Topology {
    /// Builds a topology from a per-rank node assignment.
    ///
    /// # Panics
    ///
    /// Panics if `node_of` is empty.
    pub fn new(node_of: Vec<usize>) -> Self {
        assert!(!node_of.is_empty(), "topology needs at least one rank");
        Topology { node_of }
    }

    /// Every rank on one node — hierarchical reduce degenerates to the
    /// intra-node gather/broadcast with no leader exchange.
    pub fn single_node(world: usize) -> Self {
        Topology::new(vec![0; world])
    }

    /// `nodes` nodes of `per_node` consecutive ranks each (the layout of
    /// a homogeneous cluster launched rank-major).
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn grouped(nodes: usize, per_node: usize) -> Self {
        assert!(nodes > 0 && per_node > 0, "need at least one rank");
        Topology::new((0..nodes * per_node).map(|r| r / per_node).collect())
    }

    /// Number of ranks described.
    pub fn world(&self) -> usize {
        self.node_of.len()
    }

    /// The node id of `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        self.node_of[rank]
    }

    /// The leader (lowest rank) of `rank`'s node.
    pub fn leader_of(&self, rank: usize) -> usize {
        let node = self.node_of[rank];
        (0..self.node_of.len())
            .find(|&r| self.node_of[r] == node)
            .expect("rank's own node always has a member")
    }

    /// Whether `rank` is its node's leader.
    pub fn is_leader(&self, rank: usize) -> bool {
        self.leader_of(rank) == rank
    }

    /// All leaders in ascending rank order — the inter-node subgroup.
    pub fn leaders(&self) -> Vec<usize> {
        (0..self.node_of.len())
            .filter(|&r| self.is_leader(r))
            .collect()
    }

    /// The ranks sharing `rank`'s node, ascending (including `rank`).
    pub fn node_peers(&self, rank: usize) -> Vec<usize> {
        let node = self.node_of[rank];
        (0..self.node_of.len())
            .filter(|&r| self.node_of[r] == node)
            .collect()
    }

    /// Number of distinct nodes.
    pub fn num_nodes(&self) -> usize {
        self.leaders().len()
    }
}

/// Serializes a float slice as raw little-endian bytes for the lossless
/// intra-node hops.
fn raw_encode(shape: &cgx_tensor::Shape, data: &[f32]) -> Encoded {
    let mut buf = BytesMut::with_capacity(data.len() * 4);
    for v in data {
        buf.put_u32_le(v.to_bits());
    }
    Encoded::new(shape.clone(), buf.freeze())
}

/// Decodes a raw little-endian float payload into `out`.
fn raw_decode(bytes: &Bytes, out: &mut [f32]) -> Result<(), CommError> {
    if bytes.len() != out.len() * 4 {
        return Err(CommError::ShapeMismatch {
            detail: format!(
                "raw intra-node payload: expected {} bytes, got {}",
                out.len() * 4,
                bytes.len()
            ),
        });
    }
    for (o, chunk) in out.iter_mut().zip(bytes.chunks_exact(4)) {
        *o = f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    Ok(())
}

/// Three-stage node-aware allreduce: intra-node raw gather to the node
/// leader, compressed SRA across the leaders, raw intra-node broadcast of
/// the consensus result.
///
/// The intra-node sum is accumulated in strict ascending rank order
/// (including the leader's own contribution at its rank position), and
/// the leader exchange is the bit-exact SRA, so all ranks return
/// byte-identical tensors. `comp` is only invoked on leaders — members of
/// a multi-rank node never touch the compressor (paper: compression lives
/// on the inter-node links).
///
/// # Errors
///
/// Propagates transport failures; [`CommError::ShapeMismatch`] if a peer
/// delivers a geometry that disagrees with `grad`.
///
/// # Panics
///
/// Panics if `topo.world()` differs from the transport's world.
pub fn allreduce_hierarchical(
    t: &dyn Transport,
    topo: &Topology,
    grad: &Tensor,
    comp: &mut dyn Compressor,
    rng: &mut Rng,
    pool: &ScratchPool,
) -> Result<(Tensor, AllreduceStats), CommError> {
    assert_eq!(
        topo.world(),
        t.world(),
        "topology describes a different world than the transport"
    );
    let me = t.rank();
    let mut stats = AllreduceStats::default();
    if t.world() == 1 {
        return Ok((grad.clone(), stats));
    }
    stats.max_in_flight = 1;
    let leader = topo.leader_of(me);
    if me != leader {
        // Member: raw gradient up, consensus result down.
        let enc = raw_encode(grad.shape(), grad.as_slice());
        stats.bytes_sent += enc.payload_bytes();
        t.send_tagged(leader, up_tag(), enc)?;
        let down = t.recv_tagged(leader, down_tag())?;
        let mut out = grad.clone();
        raw_decode(down.payload(), out.as_mut_slice())?;
        return Ok((out, stats));
    }
    // Leader: accumulate the node's gradients in ascending rank order.
    let peers = topo.node_peers(me);
    let mut sum = pool.take_f32(grad.len());
    sum.iter_mut().for_each(|v| *v = 0.0);
    for &r in &peers {
        if r == me {
            for (s, g) in sum.iter_mut().zip(grad.as_slice()) {
                *s += *g;
            }
        } else {
            let enc = t.recv_tagged(r, up_tag())?;
            if enc.shape().len() != grad.len() {
                return Err(CommError::ShapeMismatch {
                    detail: format!(
                        "intra-node gather from rank {r}: expected {} elements, got {}",
                        grad.len(),
                        enc.shape().len()
                    ),
                });
            }
            let payload = enc.payload();
            if payload.len() != grad.len() * 4 {
                return Err(CommError::ShapeMismatch {
                    detail: format!(
                        "intra-node gather from rank {r}: expected {} bytes, got {}",
                        grad.len() * 4,
                        payload.len()
                    ),
                });
            }
            for (s, chunk) in sum.iter_mut().zip(payload.chunks_exact(4)) {
                *s += f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            }
        }
    }
    let node_sum = Tensor::from_vec(grad.shape().dims(), sum);
    // Compressed exchange across the leader subgroup (skipped when this
    // node is alone in the world).
    let leaders = topo.leaders();
    let reduced = if leaders.len() > 1 {
        let subgroup = Membership::of_ranks(t.world(), &leaders);
        let view = MembershipView::new(t, &subgroup);
        let (reduced, sra) = allreduce_sra_scratch(&view, &node_sum, comp, rng, pool)?;
        stats.merge(&sra);
        reduced
    } else {
        node_sum
    };
    // Fan the consensus result back out, raw.
    let down = raw_encode(reduced.shape(), reduced.as_slice());
    for &r in &peers {
        if r != me {
            stats.bytes_sent += down.payload_bytes();
            t.send_tagged(r, down_tag(), down.clone())?;
        }
    }
    Ok((reduced, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ThreadCluster;
    use crate::reduce::allreduce_sra;
    use cgx_compress::{CompressionScheme, NoneCompressor};

    #[test]
    fn topology_maps_are_consistent() {
        let topo = Topology::new(vec![0, 0, 1, 1, 1, 2]);
        assert_eq!(topo.world(), 6);
        assert_eq!(topo.num_nodes(), 3);
        assert_eq!(topo.leaders(), vec![0, 2, 5]);
        assert!(topo.is_leader(2) && !topo.is_leader(3));
        assert_eq!(topo.leader_of(4), 2);
        assert_eq!(topo.node_peers(3), vec![2, 3, 4]);
        let grouped = Topology::grouped(2, 2);
        assert_eq!(grouped, Topology::new(vec![0, 0, 1, 1]));
        assert_eq!(Topology::single_node(4).leaders(), vec![0]);
    }

    #[test]
    fn hierarchical_sum_is_exact_on_integer_tensors() {
        // Integer-valued grads: float addition is exact, so the staged
        // sum must equal the flat sum regardless of association order.
        let topo = Topology::grouped(2, 2);
        let results = ThreadCluster::run(4, |t| {
            let mut rng = Rng::seed_from_u64(t.rank() as u64);
            let grad = Tensor::full(&[33], (t.rank() + 1) as f32);
            let mut c = NoneCompressor::new();
            allreduce_hierarchical(&t, &topo, &grad, &mut c, &mut rng, &ScratchPool::new())
                .unwrap()
                .0
        })
        .unwrap();
        for r in &results {
            assert!(r.as_slice().iter().all(|&v| v == 10.0), "1+2+3+4 = 10");
        }
    }

    #[test]
    fn all_ranks_reach_byte_identical_consensus_under_compression() {
        let topo = Topology::new(vec![0, 0, 0, 1, 1, 1]);
        let results = ThreadCluster::run(6, |t| {
            let mut rng = Rng::seed_from_u64(7 + t.rank() as u64);
            let data: Vec<f32> = (0..257)
                .map(|i| ((i * (t.rank() + 3)) as f32).sin())
                .collect();
            let grad = Tensor::from_vec(&[257], data);
            let mut c = CompressionScheme::Qsgd {
                bits: 4,
                bucket_size: 64,
            }
            .build();
            allreduce_hierarchical(&t, &topo, &grad, c.as_mut(), &mut rng, &ScratchPool::new())
                .unwrap()
                .0
        })
        .unwrap();
        for r in &results[1..] {
            assert_eq!(
                r.as_slice(),
                results[0].as_slice(),
                "hierarchical consensus broke"
            );
        }
    }

    #[test]
    fn single_node_topology_skips_the_leader_exchange() {
        let topo = Topology::single_node(3);
        let results = ThreadCluster::run(3, |t| {
            let mut rng = Rng::seed_from_u64(3);
            let grad = Tensor::full(&[8], t.rank() as f32);
            let mut c = NoneCompressor::new();
            let (out, stats) =
                allreduce_hierarchical(&t, &topo, &grad, &mut c, &mut rng, &ScratchPool::new())
                    .unwrap();
            (out, stats.compress_calls)
        })
        .unwrap();
        for (out, compress_calls) in &results {
            assert!(out.as_slice().iter().all(|&v| v == 3.0), "0+1+2 = 3");
            // No inter-node hop anywhere: the compressor never ran.
            assert_eq!(*compress_calls, 0);
        }
    }

    #[test]
    fn members_never_invoke_the_compressor() {
        let topo = Topology::grouped(2, 2);
        let calls = ThreadCluster::run(4, |t| {
            let mut rng = Rng::seed_from_u64(1);
            let grad = Tensor::full(&[64], 1.0);
            let mut c = CompressionScheme::Qsgd {
                bits: 4,
                bucket_size: 64,
            }
            .build();
            let (_, stats) =
                allreduce_hierarchical(&t, &topo, &grad, c.as_mut(), &mut rng, &ScratchPool::new())
                    .unwrap();
            (t.rank(), stats.compress_calls)
        })
        .unwrap();
        for (rank, compress_calls) in &calls {
            if topo.is_leader(*rank) {
                assert!(*compress_calls > 0, "leader {rank} never compressed");
            } else {
                assert_eq!(*compress_calls, 0, "member {rank} compressed");
            }
        }
    }

    #[test]
    fn hierarchical_matches_flat_when_one_rank_per_node() {
        // One rank per node makes the intra-node stages identity and the
        // leader set the whole world: hierarchical must be bit-identical
        // to flat SRA (same compressor, same rng stream).
        let topo = Topology::new(vec![0, 1, 2, 3]);
        let results = ThreadCluster::run(4, |t| {
            let grad = Tensor::from_vec(
                &[65],
                (0..65).map(|i| (i as f32 * 0.37) - t.rank() as f32).collect(),
            );
            let scheme = CompressionScheme::Qsgd {
                bits: 4,
                bucket_size: 32,
            };
            let mut rng_h = Rng::seed_from_u64(11 + t.rank() as u64);
            let mut c_h = scheme.build();
            let h = allreduce_hierarchical(
                &t,
                &topo,
                &grad,
                c_h.as_mut(),
                &mut rng_h,
                &ScratchPool::new(),
            )
            .unwrap()
            .0;
            let mut rng_f = Rng::seed_from_u64(11 + t.rank() as u64);
            let mut c_f = scheme.build();
            let f = allreduce_sra(&t, &grad, c_f.as_mut(), &mut rng_f).unwrap().0;
            (h, f)
        })
        .unwrap();
        for (h, f) in &results {
            assert_eq!(h.as_slice(), f.as_slice(), "degenerate hierarchy diverged");
        }
    }
}
