//! Multi-tenant daemon report: throughput, fairness, and churn recovery
//! for `cgx-serve` sharing one mesh across many training jobs.
//!
//! Emits `BENCH_tenant.json`. Three measured scenarios:
//!
//! - **Tenant throughput** — 8 concurrent 2-rank local-SGD jobs through
//!   one daemon pair over shm. Reports wall time, node-0 tenant bytes,
//!   aggregate MiB/s, and the Jain fairness index over per-job byte
//!   shares (equal weights, equal workloads ⇒ index should be ≈ 1).
//! - **Weighted shares under saturation** — the DRR scheduler itself,
//!   driven with deep equal backlogs and weights 1:2:4. Over a long busy
//!   period each job's byte share must land within 10% of its weight
//!   share (the PR's QoS acceptance bound).
//! - **Churn recovery** — a victim job's rank dies mid-conversation; the
//!   report measures how long its peer takes to observe the typed
//!   disconnect, and how long a *fresh* job takes to attach and complete
//!   a round-trip on the same daemons immediately after the churn.
//!
//! Regression-guard mode: when `CGX_TENANT_GUARD` names a baseline
//! `BENCH_tenant.json`, the run fails if throughput wall time or churn
//! recovery regress beyond `CGX_TENANT_GUARD_TOLERANCE` (default 1.5x),
//! or if fairness/share-error ever leave their absolute bounds.

use cgx_collectives::{ShmFabric, Transport};
use cgx_compress::{Encoded, ScratchPool};
use cgx_engine::{local_sgd_rank, GaussianMixture, Mlp, TrainConfig};
use cgx_serve::{jain_index, Dequeue, DrrScheduler, JobSpec, ServeConfig, ServeNode};
use cgx_tensor::{Rng, Shape};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(10);

fn shm_nodes(n: usize) -> Vec<Arc<ServeNode>> {
    ShmFabric::build(n)
        .into_iter()
        .map(|t| Arc::new(ServeNode::new(Box::new(t), ServeConfig::default())))
        .collect()
}

struct ThroughputOutcome {
    jobs: u8,
    wall_ms: f64,
    node0_bytes: u64,
    mib_per_s: f64,
    jain: f64,
}

/// 8 concurrent local-SGD tenants over one shm daemon pair.
fn measure_throughput() -> ThroughputOutcome {
    const JOBS: u8 = 8;
    const STEPS: usize = 10;
    const PERIOD: usize = 2;
    let nodes = shm_nodes(2);
    let total_ranks = JOBS as usize * 2;
    // Read per-job counters after every tenant finishes but before any
    // handle detaches (detachment retires the job's scheduler state).
    let done = Arc::new(Barrier::new(total_ranks + 1));
    let release = Arc::new(Barrier::new(total_ranks + 1));
    let start = Instant::now();
    let mut runners = Vec::new();
    for j in 1..=JOBS {
        for node in &nodes {
            let handle = node
                .attach(JobSpec::new(j))
                .expect("attach")
                .with_keepalive(Arc::clone(node));
            let (done, release) = (Arc::clone(&done), Arc::clone(&release));
            let cfg = TrainConfig {
                seed: 3000 + j as u64,
                ..TrainConfig::new(2, STEPS)
            };
            runners.push(std::thread::spawn(move || {
                let task = GaussianMixture::new(4, 6, 1.3);
                let mut rng = Rng::seed_from_u64(500 + j as u64);
                let model = Mlp::new(&mut rng, &[6, 10, 4]);
                let pool = ScratchPool::new();
                let sampler = move |r: &mut Rng| task.sample_batch(r, 8);
                let out = local_sgd_rank(&handle, &model, &sampler, &cfg, PERIOD, &pool);
                done.wait();
                release.wait();
                drop(handle);
                out.expect("job failed").is_some()
            }));
        }
    }
    done.wait();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let per_job: Vec<u64> = (1..=JOBS).map(|j| nodes[0].job_sent_bytes(j)).collect();
    release.wait();
    for r in runners {
        assert!(r.join().expect("tenant thread"), "a rank was killed");
    }
    let node0_bytes: u64 = per_job.iter().sum();
    let shares: Vec<f64> = per_job.iter().map(|&b| b as f64).collect();
    ThroughputOutcome {
        jobs: JOBS,
        wall_ms,
        node0_bytes,
        mib_per_s: node0_bytes as f64 / (1 << 20) as f64 / (wall_ms / 1e3),
        jain: jain_index(&shares),
    }
}

/// DRR under saturation: byte shares vs weight shares, worst error in %.
fn measure_weighted_shares() -> (Vec<u64>, f64) {
    const QUANTUM: u64 = 4096;
    const FRAME: u64 = 1024;
    let weights = [1u64, 2, 4];
    let mut s = DrrScheduler::new(QUANTUM);
    for (i, &w) in weights.iter().enumerate() {
        s.register(i as u8 + 1, w, None);
    }
    // Deep equal backlogs so every job stays busy for the whole drain.
    for i in 0..16_384u32 {
        for j in 0..3u8 {
            s.enqueue(j + 1, FRAME, i);
        }
    }
    let budget = 16_384usize; // well below total backlog: always saturated
    for _ in 0..budget {
        match s.next(0) {
            Dequeue::Frame { .. } => {}
            other => panic!("scheduler stalled under saturation: {other:?}"),
        }
    }
    let wsum: u64 = weights.iter().sum();
    let total: u64 = (1..=3u8).map(|j| s.sent_bytes(j)).sum();
    let mut worst_err_pct = 0f64;
    for (i, &w) in weights.iter().enumerate() {
        let got = s.sent_bytes(i as u8 + 1) as f64 / total as f64;
        let want = w as f64 / wsum as f64;
        worst_err_pct = worst_err_pct.max((got - want).abs() / want * 100.0);
    }
    (weights.to_vec(), worst_err_pct)
}

struct ChurnOutcome {
    detect_ms: f64,
    fresh_job_ms: f64,
}

/// Rank death inside one job; a fresh job attaches right after.
fn measure_churn() -> ChurnOutcome {
    let nodes = shm_nodes(2);
    let v0 = nodes[0]
        .attach(JobSpec::new(1))
        .expect("attach victim 0")
        .with_keepalive(Arc::clone(&nodes[0]));
    let v1 = nodes[1]
        .attach(JobSpec::new(1))
        .expect("attach victim 1")
        .with_keepalive(Arc::clone(&nodes[1]));
    let payload = Encoded::new(Shape::new(vec![4]), bytes::Bytes::from(vec![9u8; 4]));
    v0.send_tagged(1, 7, payload.clone()).expect("warmup send");
    v1.recv_tagged_deadline(0, 7, WAIT).expect("warmup recv");
    let start = Instant::now();
    drop(v0); // rank death
    let err = v1
        .recv_tagged_deadline(0, 8, WAIT)
        .expect_err("dead peer must surface");
    let detect_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(err.peer(), Some(0), "disconnect must name the dead rank");

    // A brand-new job on the churned daemons: attach + round-trip.
    let start = Instant::now();
    let f0 = nodes[0]
        .attach(JobSpec::new(2))
        .expect("attach fresh 0")
        .with_keepalive(Arc::clone(&nodes[0]));
    let f1 = nodes[1]
        .attach(JobSpec::new(2))
        .expect("attach fresh 1")
        .with_keepalive(Arc::clone(&nodes[1]));
    f0.send_tagged(1, 1, payload.clone()).expect("fresh send");
    f1.recv_tagged_deadline(0, 1, WAIT).expect("fresh recv");
    f1.send_tagged(0, 2, payload).expect("fresh reply");
    f0.recv_tagged_deadline(1, 2, WAIT).expect("fresh ack");
    let fresh_job_ms = start.elapsed().as_secs_f64() * 1e3;
    ChurnOutcome {
        detect_ms,
        fresh_job_ms,
    }
}

fn baseline_field(json: &str, key: &str) -> Option<f64> {
    let at = json.find(&format!("\"{key}\": "))?;
    let rest = &json[at + key.len() + 4..];
    let digits: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    digits.parse().ok()
}

fn main() {
    // Snapshot the guard baseline before this run overwrites it.
    let guard = std::env::var("CGX_TENANT_GUARD").ok().map(|path| {
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("CGX_TENANT_GUARD baseline {path}: {e}"));
        (path, baseline)
    });

    let tp = measure_throughput();
    let (weights, share_err_pct) = measure_weighted_shares();
    let churn = measure_churn();

    // Absolute bounds — these hold regardless of machine speed.
    assert!(
        tp.jain > 0.9,
        "equal-weight tenants must be near-fair, Jain={:.4}",
        tp.jain
    );
    assert!(
        share_err_pct <= 10.0,
        "byte shares must land within 10% of QoS weights, worst error {share_err_pct:.2}%"
    );
    assert!(
        churn.detect_ms < 5_000.0,
        "rank death must surface promptly, took {:.1}ms",
        churn.detect_ms
    );

    let json = format!(
        "{{\n  \"throughput\": {{\"jobs\": {}, \"wall_ms\": {:.1}, \
         \"node0_tx_bytes\": {}, \"mib_per_s\": {:.2}, \"jain\": {:.4}}},\n  \
         \"qos\": {{\"weights\": {:?}, \"share_err_pct\": {:.2}, \"bound_pct\": 10.0}},\n  \
         \"churn\": {{\"detect_ms\": {:.2}, \"fresh_job_ms\": {:.2}}}\n}}\n",
        tp.jobs,
        tp.wall_ms,
        tp.node0_bytes,
        tp.mib_per_s,
        tp.jain,
        weights,
        share_err_pct,
        churn.detect_ms,
        churn.fresh_job_ms,
    );
    std::fs::write("BENCH_tenant.json", &json).expect("write BENCH_tenant.json");
    print!("{json}");
    println!(
        "throughput: {} jobs in {:.1}ms, {:.2} MiB/s node-0 tx, Jain {:.4}",
        tp.jobs, tp.wall_ms, tp.mib_per_s, tp.jain
    );
    println!("qos: weights {weights:?}, worst share error {share_err_pct:.2}% (bound 10%)");
    println!(
        "churn: death observed in {:.2}ms, fresh job attached + round-tripped in {:.2}ms",
        churn.detect_ms, churn.fresh_job_ms
    );

    if let Some((path, baseline)) = guard {
        let tolerance: f64 = std::env::var("CGX_TENANT_GUARD_TOLERANCE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1.5);
        // Churn detection can legitimately baseline at tens of
        // microseconds, where a multiplicative tolerance turns scheduler
        // jitter into a "regression". Grant an absolute grace floor well
        // above jitter yet far below the 5s liveness bound.
        const GRACE_MS: f64 = 50.0;
        for (key, measured) in [("wall_ms", tp.wall_ms), ("detect_ms", churn.detect_ms)] {
            let Some(base) = baseline_field(&baseline, key) else {
                panic!("baseline {path} has no {key}");
            };
            let limit = (base * tolerance).max(GRACE_MS);
            assert!(
                measured <= limit,
                "{key} regressed: {measured:.1} > {limit:.1} ({base:.1} x{tolerance})"
            );
        }
        println!("guard: within {tolerance}x of {path}");
    }
}
