//! Criterion benchmarks for the threaded collectives: wall-clock of one
//! Allreduce across 4 worker threads per reduction scheme, FP32 vs 4-bit.
//!
//! These measure the *functional plane* (real shared-memory transfers and
//! real compression), complementing the analytic cost models of
//! `cgx-simnet`.

use cgx_collectives::reduce::{allreduce, Algorithm};
use cgx_collectives::ThreadCluster;
use cgx_compress::{CompressionScheme, Compressor};
use cgx_tensor::{Rng, Tensor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

const WORLD: usize = 4;
const LEN: usize = 1 << 18; // 256k floats = 1 MB

fn run_once(alg: Algorithm, scheme: CompressionScheme) {
    let out = ThreadCluster::run(WORLD, |t| {
        let mut rng = Rng::seed_from_u64(t.rank() as u64);
        let grad = Tensor::randn(&mut rng, &[LEN]);
        let mut comp: Box<dyn Compressor> = scheme.build();
        allreduce(alg, &t, &grad, comp.as_mut(), &mut rng)
            .unwrap()
            .0
    })
    .unwrap();
    black_box(out);
}

fn bench_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("allreduce-4workers");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(LEN as u64));
    for alg in Algorithm::all() {
        group.bench_with_input(
            BenchmarkId::new("fp32", format!("{alg:?}")),
            &alg,
            |b, a| {
                b.iter(|| run_once(*a, CompressionScheme::None));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("qsgd-4b", format!("{alg:?}")),
            &alg,
            |b, a| {
                b.iter(|| run_once(*a, CompressionScheme::cgx_default()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_allreduce);
criterion_main!(benches);
