//! Adaptive layer-wise compression wired to a registered model.
//!
//! Periodically (paper: every few hundred steps) CGX collects accumulated
//! gradient statistics per layer, runs one of the assignment policies, and
//! re-parameterizes the per-layer compressors. This module performs one
//! such re-assignment round for a zoo model using the synthetic gradient
//! source.

use cgx_adaptive::{
    assign_bits, uniform_assignment, AdaptiveController, AdaptiveOptions, AdaptivePlanTrace,
    AdaptivePolicy, AdaptiveTrainConfig, BitAssignment, ControlledLayer, LayerProfile,
};
use cgx_compress::CompressionScheme;
use cgx_models::{GradientSynth, ModelSpec};

/// Result of one adaptive re-assignment round.
#[derive(Debug, Clone)]
pub struct AdaptiveOutcome {
    /// Indices (into the model's layer list) of the compressible layers the
    /// assignment covers.
    pub layer_indices: Vec<usize>,
    /// The bit assignment over those layers.
    pub assignment: BitAssignment,
    /// The profiles the policy saw.
    pub profiles: Vec<LayerProfile>,
    /// Compressed-size ratio vs the uniform static 4-bit assignment
    /// (Figure 5b / Table 7 "Compression").
    pub size_ratio_vs_static4: f64,
    /// Estimated-error ratio vs the uniform static 4-bit assignment
    /// (Figure 5a).
    pub error_ratio_vs_static4: f64,
    /// Per-model-layer schemes (full precision for filtered layers).
    pub schemes: Vec<CompressionScheme>,
}

/// Runs one adaptive round for `model`: accumulate `stat_steps` synthetic
/// gradients, profile the compressible layers, and solve the assignment
/// problem with `policy`.
///
/// # Panics
///
/// Panics if `stat_steps` is zero.
pub fn adaptive_compression_for(
    model: &ModelSpec,
    policy: AdaptivePolicy,
    opts: &AdaptiveOptions,
    stat_steps: usize,
    seed: u64,
) -> AdaptiveOutcome {
    assert!(stat_steps > 0, "need at least one statistics step");
    let mut synth = GradientSynth::new(model, seed);
    let norms = synth.accumulated_norms(stat_steps);
    let mut layer_indices = Vec::new();
    let mut profiles = Vec::new();
    let total = model.layers().len().max(1) as f64;
    for (i, layer) in model.layers().iter().enumerate() {
        if layer.kind().is_filtered_by_default() {
            continue; // full precision anyway
        }
        layer_indices.push(i);
        // Exposure: gradients are produced output-to-input during backward,
        // so layers early in forward order surface last and their transfers
        // cannot hide behind remaining compute.
        let exposure = 1.0 - i as f64 / total;
        profiles.push(
            LayerProfile::new(layer.name(), layer.elements(), norms[i]).with_exposure(exposure),
        );
    }
    let assignment = assign_bits(policy, &profiles, opts);
    let static4 = uniform_assignment(&profiles, 4);
    let size_ratio = assignment.size_ratio_vs(&static4, &profiles);
    let error_ratio =
        assignment.estimated_error(&profiles) / static4.estimated_error(&profiles).max(1e-12);
    // Expand to per-model-layer schemes.
    let adaptive_schemes = assignment.to_schemes();
    let mut schemes = vec![CompressionScheme::None; model.layers().len()];
    for (slot, scheme) in layer_indices.iter().zip(adaptive_schemes) {
        schemes[*slot] = scheme;
    }
    AdaptiveOutcome {
        layer_indices,
        assignment,
        profiles,
        size_ratio_vs_static4: size_ratio,
        error_ratio_vs_static4: error_ratio,
        schemes,
    }
}

/// What a [`live_adaptive_session`] run produced.
#[derive(Debug, Clone)]
pub struct LiveSessionReport {
    /// Every plan the controller committed, in order.
    pub trace: AdaptivePlanTrace,
    /// Total wire bits the run transmitted per gradient exchange,
    /// integrated over all steps under whichever plan was live.
    pub adaptive_wire_bits: f64,
    /// The same integral under the static uniform 4-bit plan.
    pub static4_wire_bits: f64,
}

impl LiveSessionReport {
    /// Wire-traffic ratio of the live-adaptive run vs static 4-bit
    /// (< 1.0 means the controller saved bytes).
    pub fn wire_ratio_vs_static4(&self) -> f64 {
        self.adaptive_wire_bits / self.static4_wire_bits.max(1e-12)
    }
}

/// Drives the *live* [`AdaptiveController`] — the same component the
/// real trainers embed — over a zoo model for `total_steps`, feeding it
/// the synthetic per-step gradient norms. Unlike
/// [`crate::session_sim::simulate_adaptive_session`], which re-solves
/// the assignment problem from scratch each period, this exercises the
/// production control loop: warm-up, periodic re-plans, plan epochs, and
/// the trace the trainers export.
///
/// # Panics
///
/// Panics if `total_steps` is zero or the config is invalid.
pub fn live_adaptive_session(
    model: &ModelSpec,
    cfg: &AdaptiveTrainConfig,
    total_steps: usize,
    seed: u64,
) -> LiveSessionReport {
    assert!(total_steps > 0, "need at least one step");
    let n = model.layers().len();
    let total = n.max(1) as f64;
    let layers: Vec<ControlledLayer> = model
        .layers()
        .iter()
        .enumerate()
        .map(|(i, l)| ControlledLayer {
            name: l.name().to_string(),
            elements: l.elements(),
            compressible: !l.kind().is_filtered_by_default(),
            exposure: 1.0 - i as f64 / total,
        })
        .collect();
    let base: Vec<CompressionScheme> = layers
        .iter()
        .map(|l| {
            if l.compressible {
                CompressionScheme::cgx_default()
            } else {
                CompressionScheme::None
            }
        })
        .collect();
    let static4_step_bits: f64 = layers
        .iter()
        .zip(&base)
        .map(|(l, s)| s.nominal_bits_per_element() * l.elements as f64)
        .sum();
    let mut controller = AdaptiveController::new(cfg.clone(), layers.clone(), base);
    let mut synth = GradientSynth::new(model, seed);
    let mut adaptive_wire_bits = 0.0;
    for step in 0..total_steps {
        // The closed-form norm statistic: byte-exact across repeated
        // sessions and free of 100M-element gradient materialization.
        let norms = synth.expected_accumulated_norms(1);
        adaptive_wire_bits += layers
            .iter()
            .zip(controller.current_schemes())
            .map(|(l, s)| s.nominal_bits_per_element() * l.elements as f64)
            .sum::<f64>();
        controller.observe_norms(&norms);
        controller.maybe_replan(step + 1, 0);
    }
    LiveSessionReport {
        trace: controller.into_trace(),
        adaptive_wire_bits,
        static4_wire_bits: static4_step_bits * total_steps as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgx_models::{LayerKind, ModelId};

    fn txl_outcome(policy: AdaptivePolicy) -> AdaptiveOutcome {
        adaptive_compression_for(
            &ModelSpec::build(ModelId::TransformerXl),
            policy,
            &AdaptiveOptions::default(),
            2,
            99,
        )
    }

    #[test]
    fn kmeans_assigns_large_insensitive_layers_below_static() {
        // Paper: "the automated procedure identifies large layers with low
        // performance sensitivity (e.g. fully-connected or embedding
        // layers) for lower bit-widths". The 137M-row embedding must sit
        // below the static 4-bit baseline (and below the most sensitive
        // cluster).
        let model = ModelSpec::build(ModelId::TransformerXl);
        let out = txl_outcome(AdaptivePolicy::KMeans);
        let emb_pos = out
            .layer_indices
            .iter()
            .position(|&i| model.layers()[i].kind() == LayerKind::Embedding)
            .expect("embedding profiled");
        let emb_bits = out.assignment.bits[emb_pos];
        assert!(emb_bits < 4, "embedding bits {emb_bits}");
        assert!(emb_bits < *out.assignment.bits.iter().max().unwrap());
    }

    #[test]
    fn figure5_ratios_in_paper_range() {
        // Table 7: compression ~0.5-0.8 of static 4-bit; error within the
        // alpha budget.
        let out = txl_outcome(AdaptivePolicy::KMeans);
        assert!(
            out.size_ratio_vs_static4 > 0.3 && out.size_ratio_vs_static4 < 0.9,
            "size ratio {}",
            out.size_ratio_vs_static4
        );
        assert!(
            out.error_ratio_vs_static4 <= AdaptiveOptions::default().alpha + 1e-9,
            "error ratio {}",
            out.error_ratio_vs_static4
        );
    }

    #[test]
    fn filtered_layers_stay_full_precision() {
        let model = ModelSpec::build(ModelId::TransformerXl);
        let out = txl_outcome(AdaptivePolicy::Linear);
        for (i, layer) in model.layers().iter().enumerate() {
            if layer.kind().is_filtered_by_default() {
                assert_eq!(out.schemes[i], CompressionScheme::None, "{}", layer.name());
            } else {
                assert!(matches!(out.schemes[i], CompressionScheme::Qsgd { .. }));
            }
        }
    }

    #[test]
    fn schemes_align_with_model_layers() {
        let model = ModelSpec::build(ModelId::TransformerXl);
        let out = txl_outcome(AdaptivePolicy::BayesOpt { trials: 50 });
        assert_eq!(out.schemes.len(), model.layers().len());
        assert_eq!(out.layer_indices.len(), out.assignment.bits.len());
    }

    #[test]
    fn live_session_replans_and_saves_wire_traffic_on_txl() {
        // The live controller over Transformer-XL: several committed
        // plans, every one within budget, and the integrated wire
        // traffic lands below static 4-bit (the bench bin's headline).
        let cfg = AdaptiveTrainConfig::default();
        let report = live_adaptive_session(
            &ModelSpec::build(ModelId::TransformerXl),
            &cfg,
            64,
            7,
        );
        assert!(
            report.trace.replans() >= 2,
            "only {} re-plans",
            report.trace.replans()
        );
        let max_bits = *cfg.bit_choices.iter().max().unwrap();
        for rec in &report.trace.records {
            assert!(
                rec.estimated_error <= rec.budget * (1.0 + 1e-9)
                    || rec.bits.iter().all(|&b| b == max_bits),
                "plan epoch {} violates its budget",
                rec.plan_epoch
            );
        }
        let ratio = report.wire_ratio_vs_static4();
        assert!(
            ratio < 1.0,
            "live adaptation saved nothing: ratio {ratio}"
        );
    }

    #[test]
    fn live_session_is_deterministic() {
        let cfg = AdaptiveTrainConfig::default();
        let model = ModelSpec::build(ModelId::ResNet50);
        let a = live_adaptive_session(&model, &cfg, 40, 11);
        let b = live_adaptive_session(&model, &cfg, 40, 11);
        assert_eq!(a.trace.digest(), b.trace.digest());
        assert_eq!(a.adaptive_wire_bits, b.adaptive_wire_bits);
    }
}
