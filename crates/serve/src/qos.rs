//! Weighted deficit-round-robin (DRR) scheduling over per-job outbound
//! queues, with optional per-job token-bucket rate caps.
//!
//! This is the daemon's QoS engine: every tenant job owns one FIFO of
//! outbound frames, and the pump loop asks the scheduler which frame goes
//! on the wire next. Classic DRR [Shreedhar & Varghese '96] gives each
//! backlogged job a *deficit* that grows by `quantum × weight` once per
//! round-robin visit and shrinks by the bytes it sends, so long-run byte
//! shares converge to the weight ratio regardless of frame sizes. A job
//! may additionally carry a token-bucket cap (bytes/second plus a burst
//! allowance) for hard bandwidth isolation.
//!
//! The scheduler is deliberately *pure*: it never reads a clock or touches
//! a socket. Callers pass `now_ns` into [`DrrScheduler::next`] and perform
//! the physical send themselves (refunding on backpressure via
//! [`DrrScheduler::refund`]). That keeps every scheduling decision
//! deterministic and unit-testable — the property tests drive it with a
//! simulated clock.
//!
//! Invariants the property tests pin down:
//!
//! * **Work-conserving**: if any job has backlog and no rate cap blocks
//!   it, [`DrrScheduler::next`] returns a frame — bandwidth is never left
//!   idle to enforce shares.
//! * **No starvation**: every backlogged job is served within one full
//!   round of the active list (deficit accrual is per-visit, so a
//!   huge-framed job cannot lock out a small-framed one).
//! * **Weight convergence**: over a long busy period, per-job byte shares
//!   approach `weight_i / Σ weight_j` within one max-frame per round.

use std::collections::{HashMap, VecDeque};

/// Token-bucket state for one rate-capped job.
#[derive(Debug, Clone)]
struct RateState {
    /// Sustained rate in bytes per second.
    bytes_per_sec: u64,
    /// Bucket capacity: bytes that may be sent in one burst.
    burst: u64,
    /// Current token balance (bytes).
    tokens: u64,
    /// Timestamp of the last refill, nanoseconds.
    last_refill_ns: u64,
}

impl RateState {
    /// Adds tokens for the elapsed time since the last refill, capping at
    /// `cap` (normally `burst`, but lifted to the head frame size so an
    /// oversized frame can eventually pass — liveness over strictness).
    fn refill(&mut self, now_ns: u64, cap: u64) {
        if now_ns <= self.last_refill_ns {
            return;
        }
        let dt = now_ns - self.last_refill_ns;
        // bytes = rate * dt / 1e9, in u128 to dodge overflow on long gaps.
        let add = (self.bytes_per_sec as u128 * dt as u128 / 1_000_000_000) as u64;
        if add > 0 {
            self.tokens = (self.tokens + add).min(cap.max(self.tokens));
            self.last_refill_ns = now_ns;
        }
    }

    /// Nanosecond timestamp at which `need` tokens will be available.
    fn ready_at(&self, need: u64) -> u64 {
        let missing = need.saturating_sub(self.tokens);
        if missing == 0 || self.bytes_per_sec == 0 {
            return self.last_refill_ns;
        }
        let wait = (missing as u128 * 1_000_000_000).div_ceil(self.bytes_per_sec as u128) as u64;
        self.last_refill_ns + wait
    }
}

/// One job's queue plus its DRR accounting.
#[derive(Debug)]
struct JobQ<T> {
    /// DRR weight (≥ 1): long-run byte share is proportional to this.
    weight: u64,
    /// Optional hard bandwidth cap.
    rate: Option<RateState>,
    /// Unspent deficit in bytes; grows by `quantum × weight` per visit.
    deficit: u64,
    /// Pending frames as `(size_bytes, item)` in submission order.
    queue: VecDeque<(u64, T)>,
    /// Total bytes currently queued.
    queued_bytes: u64,
    /// Total bytes ever dequeued for this job (share accounting).
    sent_bytes: u64,
    /// Whether the job currently sits on the active round-robin list.
    active: bool,
    /// Whether the current front-of-round visit has already received its
    /// quantum grant. A visit ends (and the flag clears) when the job
    /// rotates away; until then no further grants accrue, which is what
    /// bounds any job's per-round service to `quantum × weight` plus one
    /// frame and prevents a deep queue from monopolising the wire.
    visited: bool,
}

/// Outcome of one scheduling decision.
#[derive(Debug)]
pub enum Dequeue<T> {
    /// A frame was dequeued for transmission.
    Frame {
        /// The job the frame belongs to.
        job: u8,
        /// Frame size in bytes (as accounted at enqueue).
        size: u64,
        /// The frame itself.
        item: T,
    },
    /// No job has backlog; the caller may park.
    Idle,
    /// Every backlogged job is rate-capped; nothing may be sent before
    /// `ready_ns` (earliest token availability across blocked jobs).
    Throttled {
        /// Nanosecond timestamp at which some job becomes eligible.
        ready_ns: u64,
    },
}

/// Weighted deficit-round-robin scheduler over per-job frame queues.
///
/// Generic over the queued item `T` (the daemon queues
/// `(peer, wire_tag, payload)` triples; the tests queue labels).
#[derive(Debug)]
pub struct DrrScheduler<T> {
    /// Base quantum in bytes: one visit grants `quantum × weight`.
    quantum: u64,
    jobs: HashMap<u8, JobQ<T>>,
    /// Round-robin order over jobs with backlog.
    active: VecDeque<u8>,
}

impl<T> DrrScheduler<T> {
    /// Creates a scheduler with the given per-visit byte quantum.
    ///
    /// # Panics
    ///
    /// If `quantum` is zero (a zero quantum never accrues deficit).
    pub fn new(quantum: u64) -> Self {
        assert!(quantum > 0, "DRR quantum must be positive");
        DrrScheduler {
            quantum,
            jobs: HashMap::new(),
            active: VecDeque::new(),
        }
    }

    /// Registers a job with a DRR `weight` and an optional
    /// `(bytes_per_sec, burst)` rate cap.
    ///
    /// # Panics
    ///
    /// If `weight` is zero or the job id is already registered.
    pub fn register(&mut self, job: u8, weight: u64, rate: Option<(u64, u64)>) {
        assert!(weight >= 1, "job {job}: DRR weight must be >= 1");
        let rate = rate.map(|(bps, burst)| RateState {
            bytes_per_sec: bps,
            burst: burst.max(1),
            tokens: burst.max(1),
            last_refill_ns: 0,
        });
        let prev = self.jobs.insert(
            job,
            JobQ {
                weight,
                rate,
                deficit: 0,
                queue: VecDeque::new(),
                queued_bytes: 0,
                sent_bytes: 0,
                active: false,
                visited: false,
            },
        );
        assert!(prev.is_none(), "job {job} already registered");
    }

    /// Removes a job, returning any frames still queued (in order).
    pub fn deregister(&mut self, job: u8) -> Vec<T> {
        self.active.retain(|&j| j != job);
        match self.jobs.remove(&job) {
            Some(q) => q.queue.into_iter().map(|(_, item)| item).collect(),
            None => Vec::new(),
        }
    }

    /// Queues a frame of `size` bytes for `job`.
    ///
    /// # Panics
    ///
    /// If the job is not registered.
    pub fn enqueue(&mut self, job: u8, size: u64, item: T) {
        let q = self.jobs.get_mut(&job).expect("enqueue to unknown job");
        q.queue.push_back((size, item));
        q.queued_bytes += size;
        if !q.active {
            q.active = true;
            self.active.push_back(job);
        }
    }

    /// Returns a frame to the *front* of its job's queue after a failed or
    /// backpressured physical send, restoring the deficit, tokens and byte
    /// accounting consumed when it was dequeued.
    pub fn refund(&mut self, job: u8, size: u64, item: T) {
        let Some(q) = self.jobs.get_mut(&job) else {
            return;
        };
        q.queue.push_front((size, item));
        q.queued_bytes += size;
        q.deficit += size;
        q.sent_bytes = q.sent_bytes.saturating_sub(size);
        if let Some(r) = &mut q.rate {
            r.tokens += size;
        }
        if !q.active {
            q.active = true;
            // Front of the round so the refunded frame retries first.
            self.active.push_front(job);
        }
    }

    /// Bytes currently queued for `job` (0 for unknown jobs).
    pub fn queued_bytes(&self, job: u8) -> u64 {
        self.jobs.get(&job).map_or(0, |q| q.queued_bytes)
    }

    /// Cumulative bytes dequeued for `job` (0 for unknown jobs).
    pub fn sent_bytes(&self, job: u8) -> u64 {
        self.jobs.get(&job).map_or(0, |q| q.sent_bytes)
    }

    /// True when no job has any queued frame.
    pub fn is_empty(&self) -> bool {
        self.jobs.values().all(|q| q.queue.is_empty())
    }

    /// True when at least one job has backlog.
    pub fn has_backlog(&self) -> bool {
        !self.is_empty()
    }

    /// Registered job ids, unordered.
    pub fn job_ids(&self) -> Vec<u8> {
        self.jobs.keys().copied().collect()
    }

    /// Picks the next frame to transmit at time `now_ns`.
    ///
    /// Serves at most **one** frame per call so the caller interleaves
    /// scheduling with inbound servicing. Work-conserving: whenever some
    /// backlogged job is not rate-blocked, a frame IS returned — the round
    /// loop repeats, banking deficit, until one covers its head frame.
    /// [`Dequeue::Throttled`] is only possible when *every* backlogged job
    /// is held back by its token bucket.
    pub fn next(&mut self, now_ns: u64) -> Dequeue<T> {
        loop {
            if self.active.is_empty() {
                return Dequeue::Idle;
            }
            let round = self.active.len();
            let mut min_ready: Option<u64> = None;
            let mut rate_blocked = 0usize;
            for _ in 0..round {
                let Some(&job) = self.active.front() else {
                    break;
                };
                let q = self.jobs.get_mut(&job).expect("active list out of sync");
                let Some(&(head_size, _)) = q.queue.front() else {
                    // Drained while active: drop from the round and reset
                    // its deficit so idle jobs never bank credit.
                    q.active = false;
                    q.deficit = 0;
                    q.visited = false;
                    self.active.pop_front();
                    continue;
                };
                // Token bucket first: a capped job that cannot afford its
                // head frame is rotated without accruing deficit.
                if let Some(r) = &mut q.rate {
                    r.refill(now_ns, r.burst.max(head_size));
                    if r.tokens < head_size {
                        let ready = r.ready_at(head_size);
                        min_ready = Some(min_ready.map_or(ready, |m| m.min(ready)));
                        rate_blocked += 1;
                        q.visited = false;
                        self.active.rotate_left(1);
                        continue;
                    }
                }
                if q.deficit < head_size {
                    if q.visited {
                        // Visit over: this job already got its grant and
                        // served what the deficit covered. Rotate with the
                        // remainder banked (an oversized frame accumulates
                        // it across rounds until covered).
                        q.visited = false;
                        self.active.rotate_left(1);
                        continue;
                    }
                    q.visited = true;
                    q.deficit += self.quantum * q.weight;
                    if q.deficit < head_size {
                        q.visited = false;
                        self.active.rotate_left(1);
                        continue;
                    }
                }
                let (size, item) = q.queue.pop_front().expect("head vanished");
                q.queued_bytes -= size;
                q.deficit -= size;
                q.sent_bytes += size;
                if let Some(r) = &mut q.rate {
                    r.tokens -= size;
                }
                if q.queue.is_empty() {
                    q.active = false;
                    q.deficit = 0;
                    q.visited = false;
                    self.active.pop_front();
                }
                return Dequeue::Frame { job, size, item };
            }
            if rate_blocked == round {
                // Every backlogged job is token-starved: report the
                // earliest time one becomes eligible.
                let ready_ns = min_ready.expect("blocked round implies a readiness time");
                return Dequeue::Throttled { ready_ns };
            }
            // Some job was merely deficit-short: loop and grant again.
        }
    }
}

/// Jain's fairness index over per-job throughput samples:
/// `(Σx)² / (n · Σx²)`. 1.0 means perfectly equal shares; `1/n` means one
/// job monopolised the resource. Returns 1.0 for empty or all-zero input.
pub fn jain_index(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sumsq: f64 = xs.iter().map(|x| x * x).sum();
    if sumsq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sumsq)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(s: &mut DrrScheduler<&'static str>, now: u64) -> Vec<(u8, u64)> {
        let mut out = Vec::new();
        loop {
            match s.next(now) {
                Dequeue::Frame { job, size, .. } => out.push((job, size)),
                _ => return out,
            }
        }
    }

    #[test]
    fn single_job_fifo_order() {
        let mut s = DrrScheduler::new(1024);
        s.register(1, 1, None);
        s.enqueue(1, 10, "a");
        s.enqueue(1, 20, "b");
        s.enqueue(1, 30, "c");
        let mut got = Vec::new();
        while let Dequeue::Frame { item, .. } = s.next(0) {
            got.push(item);
        }
        assert_eq!(got, vec!["a", "b", "c"]);
        assert!(s.is_empty());
        assert_eq!(s.sent_bytes(1), 60);
    }

    #[test]
    fn weights_drive_byte_shares() {
        let mut s = DrrScheduler::new(1000);
        s.register(1, 3, None);
        s.register(2, 1, None);
        // Deep equal backlogs of 500-byte frames.
        for _ in 0..400 {
            s.enqueue(1, 500, "x");
            s.enqueue(2, 500, "x");
        }
        // Serve a budget of 100 frames, then compare shares.
        for _ in 0..100 {
            match s.next(0) {
                Dequeue::Frame { .. } => {}
                other => panic!("expected frame, got {other:?}"),
            }
        }
        let a = s.sent_bytes(1) as f64;
        let b = s.sent_bytes(2) as f64;
        let ratio = a / b;
        assert!(
            (2.0..=4.0).contains(&ratio),
            "weight-3 job should get ~3x the bytes of weight-1, got {ratio}"
        );
    }

    #[test]
    fn oversized_frame_banks_deficit_and_eventually_sends() {
        let mut s = DrrScheduler::new(100);
        s.register(1, 1, None);
        s.register(2, 1, None);
        s.enqueue(1, 950, "big"); // needs ~10 visits at quantum 100
        s.enqueue(2, 50, "small");
        let order = drain_all(&mut s, 0);
        assert!(order.contains(&(1, 950)), "big frame must eventually send");
        assert!(order.contains(&(2, 50)));
        // Small job must not have been starved until after the big frame.
        assert_eq!(order[0], (2, 50), "small frame goes first while big banks deficit");
    }

    #[test]
    fn rate_cap_throttles_and_recovers() {
        let mut s = DrrScheduler::new(1 << 16);
        // 1000 bytes/sec, burst 100.
        s.register(1, 1, Some((1000, 100)));
        s.enqueue(1, 100, "a");
        s.enqueue(1, 100, "b");
        // First frame rides the initial burst.
        match s.next(0) {
            Dequeue::Frame { size: 100, .. } => {}
            other => panic!("expected burst frame, got {other:?}"),
        }
        // Second must throttle: 100 bytes at 1000 B/s = 100 ms.
        let ready = match s.next(0) {
            Dequeue::Throttled { ready_ns } => ready_ns,
            other => panic!("expected throttle, got {other:?}"),
        };
        assert_eq!(ready, 100_000_000);
        // Still blocked halfway.
        assert!(matches!(s.next(50_000_000), Dequeue::Throttled { .. }));
        // Ready at the reported time.
        match s.next(ready) {
            Dequeue::Frame { size: 100, .. } => {}
            other => panic!("expected frame after refill, got {other:?}"),
        }
        assert!(matches!(s.next(ready), Dequeue::Idle));
    }

    #[test]
    fn capped_job_never_blocks_uncapped_one() {
        let mut s = DrrScheduler::new(1 << 16);
        s.register(1, 1, Some((10, 10))); // ~frozen
        s.register(2, 1, None);
        s.enqueue(1, 1000, "capped");
        for _ in 0..50 {
            s.enqueue(2, 100, "free");
        }
        // Work conservation: all 50 free frames flow while job 1 waits.
        let mut free = 0;
        loop {
            match s.next(0) {
                Dequeue::Frame { job: 2, .. } => free += 1,
                Dequeue::Frame { job: 1, .. } => panic!("capped frame cannot afford to send"),
                _ => break,
            }
        }
        assert_eq!(free, 50);
        assert!(matches!(s.next(0), Dequeue::Throttled { .. }));
    }

    #[test]
    fn refund_restores_accounting_and_order() {
        let mut s = DrrScheduler::new(1024);
        s.register(1, 1, None);
        s.enqueue(1, 10, "a");
        s.enqueue(1, 20, "b");
        let (size, item) = match s.next(0) {
            Dequeue::Frame { size, item, .. } => (size, item),
            other => panic!("expected frame, got {other:?}"),
        };
        assert_eq!(item, "a");
        s.refund(1, size, item);
        assert_eq!(s.queued_bytes(1), 30);
        assert_eq!(s.sent_bytes(1), 0);
        // Refunded frame comes back first.
        match s.next(0) {
            Dequeue::Frame { item: "a", .. } => {}
            other => panic!("expected refunded frame first, got {other:?}"),
        }
    }

    #[test]
    fn deregister_returns_pending_frames() {
        let mut s = DrrScheduler::new(1024);
        s.register(1, 1, None);
        s.register(2, 1, None);
        s.enqueue(1, 10, "a");
        s.enqueue(1, 10, "b");
        s.enqueue(2, 10, "c");
        let left = s.deregister(1);
        assert_eq!(left, vec!["a", "b"]);
        // Job 2 unaffected.
        assert!(matches!(s.next(0), Dequeue::Frame { job: 2, .. }));
        assert!(s.is_empty());
    }

    #[test]
    fn idle_when_empty() {
        let mut s: DrrScheduler<u8> = DrrScheduler::new(64);
        s.register(1, 1, None);
        assert!(matches!(s.next(0), Dequeue::Idle));
        assert!(s.is_empty());
    }

    #[test]
    fn jain_index_basics() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        let skew = jain_index(&[10.0, 0.0, 0.0, 0.0]);
        assert!((skew - 0.25).abs() < 1e-12);
        let mild = jain_index(&[4.0, 6.0]);
        assert!(mild > 0.9 && mild < 1.0);
    }
}
