//! Chaos robustness report: data-parallel training throughput and
//! delivered-byte fidelity as a function of injected fault rate, plus one
//! fail-stop scenario exercising elastic shrink-and-continue recovery.
//!
//! Emits `BENCH_chaos.json`. The headline claims:
//!
//! - At every transient fault rate the run converges to the *same losses,
//!   byte for byte*, as the fault-free run — the checksummed
//!   retransmission layer masks chaos completely, it only costs time.
//! - Killing a rank mid-run shrinks the world by one and training
//!   finishes on the survivors (one recovery epoch, full loss history).
//!
//! Fault rates are per-frame probabilities applied independently to
//! drop, corruption and duplication (so "1%" is ~3% of frames touched).
//!
//! Regression-guard mode: when `CGX_CHAOS_GUARD` names a baseline
//! `BENCH_chaos.json`, the run fails if any fault rate's wall time (or
//! the fail-stop scenario's) exceeds the baseline by more than
//! `CGX_CHAOS_GUARD_TOLERANCE` (default 1.5x) — recovery getting slower
//! is a regression even while delivered bytes stay perfect.

use cgx_bench::{note, render_table};
use cgx_collectives::FaultPlan;
use cgx_engine::data::GaussianMixture;
use cgx_engine::nn::Mlp;
use cgx_engine::{train_data_parallel, LayerCompression, TrainConfig};
use cgx_tensor::Rng;
use std::time::{Duration, Instant};

const WORKERS: usize = 4;
const STEPS: usize = 120;
const SEED: u64 = 0xC4A0_5EED;

struct Row {
    rate: f64,
    wall_ms: f64,
    steps_per_s: f64,
    injected: usize,
    caught: usize,
    redelivered: usize,
    identical: bool,
    accuracy: f64,
}

fn run(task: &GaussianMixture, model: &Mlp, chaos: Option<FaultPlan>) -> (Vec<f64>, f64, Mlp, cgx_collectives::FaultStats) {
    let cfg = TrainConfig {
        lr: 0.2,
        compression: LayerCompression::cgx_default(),
        chaos,
        comm_timeout: Some(Duration::from_millis(500)),
        ..TrainConfig::new(WORKERS, STEPS)
    };
    let t = task.clone();
    let start = Instant::now();
    let (m, rep) = train_data_parallel(model, move |r| t.sample_batch(r, 16), &cfg).unwrap();
    let wall = start.elapsed().as_secs_f64() * 1e3;
    (rep.losses, wall, m, rep.faults)
}

/// Pulls `"wall_ms": <n>` out of the baseline object whose row contains
/// `marker` (a `"fault_rate": x` or `"fail_stop"` key) — the file is our
/// own hand-built format, so a substring scan is an honest parser.
fn baseline_wall_ms(json: &str, marker: &str) -> Option<f64> {
    let row = json.split('{').find(|r| r.contains(marker))?;
    let at = row.find("\"wall_ms\": ")?;
    let digits: String = row[at + "\"wall_ms\": ".len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    digits.parse().ok()
}

fn main() {
    // Snapshot the guard baseline up front: CGX_CHAOS_GUARD typically
    // points at the committed BENCH_chaos.json, i.e. the very file this
    // run overwrites — reading it after the write would compare the run
    // against itself.
    let guard = std::env::var("CGX_CHAOS_GUARD").ok().map(|path| {
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("CGX_CHAOS_GUARD baseline {path}: {e}"));
        (path, baseline)
    });
    let task = GaussianMixture::new(6, 12, 1.2);
    let mut rng = Rng::seed_from_u64(5);
    let model = Mlp::new(&mut rng, &[12, 32, 6]);
    let eval = |m: &Mlp| {
        let mut r = Rng::seed_from_u64(777);
        let (x, y) = task.sample_batch(&mut r, 2048);
        m.accuracy(&x, &y) * 100.0
    };

    let (clean_losses, clean_ms, clean_model, _) = run(&task, &model, None);
    let mut rows = vec![Row {
        rate: 0.0,
        wall_ms: clean_ms,
        steps_per_s: STEPS as f64 / (clean_ms / 1e3),
        injected: 0,
        caught: 0,
        redelivered: 0,
        identical: true,
        accuracy: eval(&clean_model),
    }];

    for rate in [0.005, 0.01, 0.02, 0.05] {
        let plan = FaultPlan::new(SEED)
            .with_drop(rate)
            .with_corrupt(rate)
            .with_duplicate(rate);
        let (losses, wall_ms, m, faults) = run(&task, &model, Some(plan));
        rows.push(Row {
            rate,
            wall_ms,
            steps_per_s: STEPS as f64 / (wall_ms / 1e3),
            injected: faults.injected_total(),
            caught: faults.corruptions_caught,
            redelivered: faults.frames_redelivered,
            identical: losses == clean_losses,
            accuracy: eval(&m),
        });
    }

    // Fail-stop scenario: rank 2 dies a third of the way in; elastic
    // recovery shrinks the world and the survivors finish the run.
    let kill_cfg = TrainConfig {
        lr: 0.2,
        compression: LayerCompression::cgx_default(),
        chaos: Some(FaultPlan::new(SEED).with_kill(2, STEPS / 3)),
        elastic: true,
        comm_timeout: Some(Duration::from_millis(500)),
        ..TrainConfig::new(WORKERS, STEPS)
    };
    let t = task.clone();
    let start = Instant::now();
    let (km, krep) = train_data_parallel(&model, move |r| t.sample_batch(r, 16), &kill_cfg).unwrap();
    let kill_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(krep.final_world, WORKERS - 1, "kill must shrink the world");
    assert_eq!(krep.losses.len(), STEPS, "survivors must finish every step");

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"workers\": {WORKERS},\n"));
    json.push_str(&format!("  \"steps\": {STEPS},\n"));
    json.push_str(&format!("  \"seed\": {SEED},\n"));
    json.push_str("  \"transient\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"fault_rate\": {}, \"wall_ms\": {:.1}, \"steps_per_s\": {:.1}, \
             \"injected\": {}, \"corruptions_caught\": {}, \"frames_redelivered\": {}, \
             \"byte_identical_to_clean\": {}, \"accuracy\": {:.1}}}{sep}\n",
            r.rate,
            r.wall_ms,
            r.steps_per_s,
            r.injected,
            r.caught,
            r.redelivered,
            r.identical,
            r.accuracy,
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"fail_stop\": {{\"killed_rank\": 2, \"kill_step\": {}, \"wall_ms\": {:.1}, \
         \"final_world\": {}, \"recovery_epochs\": {}, \"steps_completed\": {}, \
         \"accuracy\": {:.1}}}\n",
        STEPS / 3,
        kill_ms,
        krep.final_world,
        krep.faults.recovery_epochs,
        krep.losses.len(),
        eval(&km),
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_chaos.json", &json).expect("write BENCH_chaos.json");
    print!("{json}");

    if let Some((path, baseline)) = &guard {
        let tolerance: f64 = std::env::var("CGX_CHAOS_GUARD_TOLERANCE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1.5);
        let mut checks: Vec<(String, f64)> = rows
            .iter()
            .map(|r| (format!("\"fault_rate\": {}", r.rate), r.wall_ms))
            .collect();
        checks.push(("\"killed_rank\"".to_string(), kill_ms));
        for (marker, measured) in &checks {
            let Some(base_ms) = baseline_wall_ms(baseline, marker) else {
                panic!("baseline {path} has no wall_ms for {marker}");
            };
            let limit = base_ms * tolerance;
            println!("guard {marker}: {measured:.1}ms vs baseline {base_ms:.1}ms (limit {limit:.0}ms)");
            assert!(
                *measured <= limit,
                "chaos wall-time regression at {marker}: {measured:.1}ms > {tolerance}x baseline {base_ms:.1}ms"
            );
        }
        println!("guard: OK (tolerance {tolerance}x)");
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.1}%", r.rate * 100.0),
                format!("{:.0}", r.steps_per_s),
                format!("{}", r.injected),
                format!("{}", r.redelivered),
                if r.identical { "yes".into() } else { "NO".into() },
                format!("{:.1}", r.accuracy),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Training under chaos (4 workers, 120 steps, cgx-4bit compression)",
            &["fault rate", "steps/s", "injected", "redelivered", "byte-identical", "top-1 %"],
            &table,
        )
    );
    println!(
        "fail-stop: rank 2 killed at step {}, world {} -> {}, {} recovery epoch(s), accuracy {:.1}%",
        STEPS / 3,
        WORKERS,
        krep.final_world,
        krep.faults.recovery_epochs,
        eval(&km),
    );
    note("transient chaos is masked byte-for-byte by checksummed retransmission; it costs only wall time.");
    note("a fail-stop rank triggers membership agreement and the run finishes on the shrunken world.");
}
