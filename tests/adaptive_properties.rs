//! Property-based tests over the adaptive compression solvers: budget
//! feasibility, bit-choice validity, determinism, and dominance relations
//! for randomized layer profiles.

use cgx::adaptive::{
    assign_bits, kmeans, uniform_assignment, AdaptiveOptions, AdaptivePolicy, LayerProfile,
};
use cgx::tensor::Rng;
use proptest::prelude::*;

fn profile_strategy() -> impl Strategy<Value = Vec<LayerProfile>> {
    prop::collection::vec((1usize..50_000_000, 0.01f64..100.0), 1..60).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (size, norm))| LayerProfile::new(format!("l{i}"), size, norm))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_policy_is_feasible_and_valid(
        profiles in profile_strategy(),
        alpha in 1.1f64..3.0,
        seed in 0u64..500,
    ) {
        let opts = AdaptiveOptions { alpha, seed, ..AdaptiveOptions::default() };
        let budget = alpha * uniform_assignment(&profiles, 4).estimated_error(&profiles);
        for policy in [
            AdaptivePolicy::KMeans,
            AdaptivePolicy::Linear,
            AdaptivePolicy::BayesOpt { trials: 60 },
            AdaptivePolicy::TimeAware,
        ] {
            let a = assign_bits(policy, &profiles, &opts);
            prop_assert_eq!(a.bits.len(), profiles.len());
            // Valid bit choices and matching bucket sizes.
            for (b, bucket) in a.bits.iter().zip(&a.bucket_sizes) {
                prop_assert!(opts.bit_choices.contains(b), "{policy:?}: bits {b}");
                prop_assert!(*bucket > 0);
            }
            // The error budget holds (or every layer saturated at max bits,
            // in which case the problem was infeasible to begin with).
            let max_bits = *opts.bit_choices.iter().max().unwrap();
            let feasible = a.estimated_error(&profiles) <= budget * (1.0 + 1e-9);
            let saturated = a.bits.iter().all(|b| *b == max_bits);
            prop_assert!(feasible || saturated, "{policy:?} violates budget");
        }
    }

    #[test]
    fn assignments_are_deterministic(
        profiles in profile_strategy(),
        seed in 0u64..500,
    ) {
        let opts = AdaptiveOptions { seed, ..AdaptiveOptions::default() };
        for policy in [AdaptivePolicy::KMeans, AdaptivePolicy::BayesOpt { trials: 40 }] {
            let a = assign_bits(policy, &profiles, &opts);
            let b = assign_bits(policy, &profiles, &opts);
            prop_assert_eq!(a, b, "{:?} not deterministic", policy);
        }
    }

    #[test]
    fn looser_budget_never_increases_size(
        profiles in profile_strategy(),
    ) {
        let tight = assign_bits(
            AdaptivePolicy::KMeans,
            &profiles,
            &AdaptiveOptions { alpha: 1.2, ..AdaptiveOptions::default() },
        );
        let loose = assign_bits(
            AdaptivePolicy::KMeans,
            &profiles,
            &AdaptiveOptions { alpha: 2.8, ..AdaptiveOptions::default() },
        );
        prop_assert!(
            loose.compressed_bits_total(&profiles)
                <= tight.compressed_bits_total(&profiles) * (1.0 + 1e-9)
        );
    }

    #[test]
    fn kmeans_clusters_are_valid_partitions(
        points in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 2..80),
        k in 1usize..6,
        seed in 0u64..200,
    ) {
        let k = k.min(points.len());
        let mut rng = Rng::seed_from_u64(seed);
        let r = kmeans(&points, k, &mut rng, 60);
        prop_assert_eq!(r.assignment.len(), points.len());
        prop_assert!(r.assignment.iter().all(|a| *a < k));
        prop_assert_eq!(r.centroids.len(), k);
        // Each point is at least as close to its own centroid as to the
        // others (Lloyd fixed point after convergence or cap).
        if r.iterations < 60 {
            for (p, &a) in points.iter().zip(&r.assignment) {
                let d = |c: (f64, f64)| (p.0 - c.0).powi(2) + (p.1 - c.1).powi(2);
                let own = d(r.centroids[a]);
                for c in &r.centroids {
                    prop_assert!(own <= d(*c) + 1e-9);
                }
            }
        }
    }
}
