//! Simulation-backed topology selection: "simulate before you launch".
//!
//! Before paying for a cluster run, replay the model's gradient exchange
//! through the DES on a [`MachineSpec`]-derived fabric and rank the
//! reduction layouts — flat SRA / Ring / Tree and (on multi-node
//! machines) the node-aware hierarchical reduction the engine implements
//! behind [`TrainConfig::topology`](cgx_engine::TrainConfig). The winner
//! is directly consumable: [`TopologyRecommendation::train_topology`]
//! returns the `Option<Topology>` to drop into the config.

use cgx_collectives::Topology;
use cgx_compress::CompressionScheme;
use cgx_models::{ModelId, ModelSpec};
use cgx_simnet::{
    build_hierarchical, build_ring, build_sra, build_tree, run, CommBackend, MachineSpec, OpGraph,
    SimError, SimWorkspace,
};

/// One simulated reduction layout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedScheme {
    /// Layout name: `"sra"`, `"ring"`, `"tree"`, or `"hierarchical"`.
    pub name: &'static str,
    /// Simulated time of one full gradient exchange, seconds.
    pub seconds: f64,
    /// Whether this layout is the node-aware hierarchical reduction.
    pub hierarchical: bool,
}

/// The outcome of [`recommend_topology`]: every candidate layout ranked
/// by simulated exchange time, fastest first.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyRecommendation {
    /// Model whose gradient exchange was simulated.
    pub model: ModelId,
    /// Total ranks simulated.
    pub world: usize,
    /// Nodes in the cluster (1 on a single machine).
    pub nodes: usize,
    /// Ranks per node.
    pub per_node: usize,
    /// Candidates, ascending by [`RankedScheme::seconds`].
    pub ranked: Vec<RankedScheme>,
}

impl TopologyRecommendation {
    /// The fastest layout.
    pub fn best(&self) -> &RankedScheme {
        &self.ranked[0]
    }

    /// Whether the node-aware hierarchical reduction won.
    pub fn use_hierarchical(&self) -> bool {
        self.best().hierarchical
    }

    /// The value for [`TrainConfig::topology`](cgx_engine::TrainConfig):
    /// a grouped node layout when the hierarchical reduction won, `None`
    /// (keep the flat collective) otherwise.
    pub fn train_topology(&self) -> Option<Topology> {
        self.use_hierarchical()
            .then(|| Topology::grouped(self.nodes, self.per_node))
    }
}

/// Wire bytes of one full gradient exchange under `scheme`, with the
/// uncompressed gradient size as the fallback for shape-dependent
/// schemes (PowerSGD) whose nominal width is undefined.
fn wire_bytes(spec: &ModelSpec, scheme: CompressionScheme) -> f64 {
    let raw = spec.grad_bytes() as f64;
    let bits = scheme.nominal_bits_per_element();
    if bits.is_finite() && bits > 0.0 {
        (spec.param_count() as f64 * bits / 8.0).min(raw)
    } else {
        raw
    }
}

/// Ranks reduction layouts for training `model` on `cluster` with the
/// paper's default compression, simulating each candidate exchange on a
/// fabric lowered from the machine catalog (per-rank lane heterogeneity,
/// shared inter-node uplinks). See [`recommend_topology_with`] for
/// scheme and workspace control.
pub fn recommend_topology(
    model: ModelId,
    cluster: &MachineSpec,
) -> Result<TopologyRecommendation, SimError> {
    recommend_topology_with(
        model,
        cluster,
        CompressionScheme::cgx_default(),
        &mut SimWorkspace::new(),
    )
}

/// [`recommend_topology`] with an explicit compression scheme and a
/// caller-provided workspace (graph + scratch reuse across calls).
pub fn recommend_topology_with(
    model: ModelId,
    cluster: &MachineSpec,
    scheme: CompressionScheme,
    ws: &mut SimWorkspace,
) -> Result<TopologyRecommendation, SimError> {
    let spec = ModelSpec::build(model);
    let raw = spec.grad_bytes() as f64;
    let wire = wire_bytes(&spec, scheme);
    let world = cluster.total_gpus();
    let fabric = cluster.fabric(CommBackend::Shm)?;

    let mut ranked = Vec::with_capacity(4);
    let flat: [(&'static str, fn(&mut OpGraph, usize) -> Result<(), SimError>); 3] =
        [("sra", build_sra), ("ring", build_ring), ("tree", build_tree)];
    for (name, build) in flat {
        build(&mut ws.graph, world)?;
        let stats = run(&ws.graph, &fabric, wire, &mut ws.scratch)?;
        ranked.push(RankedScheme {
            name,
            seconds: stats.makespan_seconds(),
            hierarchical: false,
        });
    }
    if cluster.is_multi_node() {
        // The engine's hierarchical path stages raw floats inside each
        // node and compresses only the leader exchange.
        let inter_frac = if raw > 0.0 { wire / raw } else { 1.0 };
        build_hierarchical(
            &mut ws.graph,
            cluster.nodes(),
            cluster.gpus_per_node(),
            inter_frac,
        )?;
        let stats = run(&ws.graph, &fabric, raw, &mut ws.scratch)?;
        ranked.push(RankedScheme {
            name: "hierarchical",
            seconds: stats.makespan_seconds(),
            hierarchical: true,
        });
    }
    ranked.sort_by(|a, b| a.seconds.total_cmp(&b.seconds));
    Ok(TopologyRecommendation {
        model,
        world,
        nodes: cluster.nodes(),
        per_node: cluster.gpus_per_node(),
        ranked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_recommends_flat() {
        let rec = recommend_topology(ModelId::ResNet50, &MachineSpec::dgx1()).unwrap();
        assert_eq!(rec.world, 8);
        assert_eq!(rec.ranked.len(), 3, "no hierarchical candidate on one node");
        assert!(!rec.use_hierarchical());
        assert_eq!(rec.train_topology(), None);
        assert!(rec.ranked.windows(2).all(|w| w[0].seconds <= w[1].seconds));
    }

    #[test]
    fn slow_interconnect_cluster_recommends_hierarchical() {
        // NVLink-class nodes over a millisecond-latency interconnect:
        // the raw intra-node staging is nearly free and the flat ring's
        // long dependency chains keep paying the inter-node α, so the
        // node-aware leader exchange (two α-deep SRA phases) wins.
        let cluster = MachineSpec::dgx1().scale_out(8, 1.25e9, 5e-3);
        let rec = recommend_topology(ModelId::ResNet50, &cluster).unwrap();
        assert_eq!(rec.world, 64);
        assert_eq!(rec.ranked.len(), 4);
        assert!(rec.use_hierarchical(), "ranked: {:?}", rec.ranked);
        let topo = rec.train_topology().expect("grouped topology");
        assert_eq!(topo.world(), 64);
        // On an all-PCIe cluster the raw staging is no longer free; the
        // recommendation must be allowed to flip back to a flat scheme.
        let pcie = recommend_topology(ModelId::Vgg16, &MachineSpec::genesis_cluster()).unwrap();
        assert_eq!(pcie.ranked.len(), 4, "hierarchical stays a candidate");
    }

    #[test]
    fn scale_out_to_512_ranks_is_simulable() {
        let cluster = MachineSpec::rtx3090().scale_out(64, 1.25e9, 1.5e-3);
        let mut ws = SimWorkspace::new();
        let rec = recommend_topology_with(
            ModelId::ResNet50,
            &cluster,
            CompressionScheme::cgx_default(),
            &mut ws,
        )
        .unwrap();
        assert_eq!(rec.world, 512);
        assert!(rec.best().seconds > 0.0);
        // Compression must not change the candidate set, only the times.
        let fp32 =
            recommend_topology_with(ModelId::ResNet50, &cluster, CompressionScheme::None, &mut ws)
                .unwrap();
        assert_eq!(fp32.ranked.len(), rec.ranked.len());
        let t = |r: &TopologyRecommendation, n: &str| {
            r.ranked.iter().find(|s| s.name == n).unwrap().seconds
        };
        assert!(t(&rec, "sra") < t(&fp32, "sra"), "q4 must beat fp32 on the wire");
    }
}
