#![warn(missing_docs)]
//! CGX as a service: a multi-tenant collectives daemon.
//!
//! The paper's deployment model assumes one training job per fabric. This
//! crate lifts that restriction: a persistent per-node daemon
//! ([`ServeNode`]) owns the node's transport mesh once, and *multiple*
//! training jobs attach to it, each receiving a [`NamespacedTransport`] —
//! a complete [`cgx_collectives::Transport`] implementation whose traffic
//! is isolated by an 8-bit job namespace carved out of the wire tag
//! (`[job:8][op:24][segment:16][phase:8][epoch:8]`, see
//! [`cgx_collectives::namespace_tag`]).
//!
//! Between the tenants and the wire sits a QoS layer: per-job outbound
//! queues served by weighted deficit round-robin ([`DrrScheduler`]) with
//! optional per-job token-bucket bandwidth caps, plus admission control
//! (job-count limit, per-job in-flight byte caps, typed [`ServeError`]
//! rejections). One tenant's burst, stall, or death cannot starve or
//! wedge another: queues are independent, shares converge to the DRR
//! weights, and a detaching or dying tenant is announced to its own job's
//! peers without other jobs observing anything.
//!
//! Because the daemon's pump thread drains the fabric continuously,
//! transports with caller-driven liveness (the TCP fabric's heartbeats)
//! are serviced independently of tenant call patterns — a slow tenant no
//! longer risks being condemned by its peers while it computes.
//!
//! ```
//! use cgx_collectives::{ShmFabric, Transport};
//! use cgx_serve::{JobSpec, ServeConfig, ServeNode};
//!
//! // Two daemon nodes over an in-process mesh.
//! let mut nodes: Vec<ServeNode> = ShmFabric::build(2)
//!     .into_iter()
//!     .map(|t| ServeNode::new(Box::new(t), ServeConfig::default()))
//!     .collect();
//!
//! // One job attached on both nodes; handles are full transports.
//! let a = nodes[0].attach(JobSpec::new(7)).unwrap();
//! let b = nodes[1].attach(JobSpec::new(7)).unwrap();
//! let payload = cgx_compress::Encoded::new(
//!     cgx_tensor::Shape::new(vec![1]),
//!     bytes::Bytes::from_static(b"hi"),
//! );
//! a.send_tagged(1, 42, payload.clone()).unwrap();
//! assert_eq!(b.recv_tagged(0, 42).unwrap(), payload);
//! drop((a, b));
//! ```

pub mod daemon;
pub mod qos;

pub use daemon::{
    JobSpec, NamespacedTransport, ServeConfig, ServeError, ServeNode, DETACH_TAG,
};
pub use qos::{jain_index, Dequeue, DrrScheduler};
