//! Heterogeneous compression (paper Section 6, "Heterogeneous
//! compression"): apply TopK-with-error-feedback (1% density) to the
//! naturally sparse Transformer embeddings while quantizing everything
//! else.
//!
//! Paper finding: only a modest ~3% additional speedup over uniform
//! quantization — the system is already close to ideal bandwidth-wise, and
//! TopK's selection kernel is costlier.
//!
//! Also demonstrated functionally: EF-TopK on a real embedding gradient is
//! lossless *in aggregate* (the residual re-injects dropped rows).

use cgx_bench::{fmt_ms, note, render_table};
use cgx_compress::CompressionScheme;
use cgx_core::api::CgxBuilder;
use cgx_core::estimate::{estimate, SystemSetup};
use cgx_models::{GradientSynth, ModelId, ModelSpec};
use cgx_simnet::MachineSpec;
use cgx_tensor::Rng;

fn main() {
    let machine = MachineSpec::rtx3090();
    // Uniform 4-bit CGX.
    let uniform = estimate(&machine, ModelId::TransformerXl, &SystemSetup::cgx());
    // Heterogeneous: TopK(1%) + EF on the embedding, 4-bit elsewhere.
    let mut session = CgxBuilder::new().build();
    session.set_layer_scheme("word_emb", CompressionScheme::TopK { ratio: 0.01 });
    let hetero = estimate(
        &machine,
        ModelId::TransformerXl,
        &SystemSetup::Cgx {
            session: Box::new(session),
            fp32: false,
        },
    );
    let rows = vec![
        vec![
            "uniform 4-bit".to_string(),
            fmt_ms(uniform.report.step_seconds),
            format!("{:.1} MB", uniform.wire_bytes as f64 / 1e6),
            "1.00x".to_string(),
        ],
        vec![
            "TopK(1%)+EF embedding, 4-bit rest".to_string(),
            fmt_ms(hetero.report.step_seconds),
            format!("{:.1} MB", hetero.wire_bytes as f64 / 1e6),
            format!(
                "{:.2}x",
                uniform.report.step_seconds / hetero.report.step_seconds
            ),
        ],
    ];
    print!(
        "{}",
        render_table(
            "Heterogeneous compression on Transformer-XL (8x RTX 3090)",
            &["configuration", "step time", "wire", "speedup"],
            &rows,
        )
    );
    note("paper: 'we only obtain a modest additional 3% speedup over quantization'.");

    // Functional check: EF-TopK transmits the sparse embedding gradient's
    // full mass over repeated steps.
    let model = ModelSpec::build(ModelId::TransformerXl);
    let emb_idx = model
        .layers()
        .iter()
        .position(|l| l.name().contains("word_emb"))
        .expect("embedding layer");
    let mut synth = GradientSynth::new(&model, 3);
    // Work with a slice of the embedding for speed.
    let full = synth.layer_gradient(emb_idx);
    let sub = cgx_tensor::Tensor::from_slice(&full.as_slice()[..262_144]);
    let mut ef = CompressionScheme::TopK { ratio: 0.01 }.build();
    let mut rng = Rng::seed_from_u64(9);
    let mut transmitted = cgx_tensor::Tensor::zeros(&[262_144]);
    let steps = 60;
    for _ in 0..steps {
        let enc = ef.compress(&sub, &mut rng);
        transmitted.add_assign(&ef.decompress(&enc));
    }
    transmitted.scale(1.0 / steps as f32);
    let rel = transmitted.l2_distance(&sub) / sub.norm2().max(1e-9);
    println!(
        "EF-TopK(1%) on a 256k-element embedding slice: long-run transmitted mean within {:.1}% of the true gradient",
        rel * 100.0
    );
    note("error feedback makes 1%-density sparsification faithful over time on sparse embeddings.");
}
