//! Machine catalog: the evaluation systems of Table 2 plus the cloud
//! instances of Table 4 and the multi-node cluster of Table 5.
//!
//! Each machine couples a physical [`Topology`] with *calibrated* effective
//! bandwidth constants. The topology explains the numbers structurally
//! (contention on PCIe/QPI vs dedicated NVLinks); the calibrated constants
//! match the paper's measurements (e.g. ~1 GB/s Allreduce bandwidth on the
//! 8x RTX 3090 box despite 13-16 GB/s pairwise links).

use crate::backend::CommBackend;
use crate::des::{Fabric, SimError};
use crate::hardware::GpuModel;
use crate::topology::{self, Topology};
use serde::{Deserialize, Serialize};

/// A (possibly multi-node) GPU system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    name: String,
    gpu: GpuModel,
    gpus_per_node: usize,
    nodes: usize,
    topology: Topology,
    /// Per-GPU sustained stream bandwidth (bytes/s) under CGX's SHM
    /// transport with all GPUs transmitting concurrently.
    shm_stream_bw: f64,
    /// Per-GPU stream bandwidth achieved by vanilla NCCL ring collectives
    /// (protocol overhead included): `algbw = nccl_stream_bw * n / (2(n-1))`.
    nccl_stream_bw: f64,
    /// Effective per-node inter-node stream bandwidth (bytes/s); `None` for
    /// single-node machines.
    inter_node_bw: Option<f64>,
    /// Inter-node per-round latency (seconds).
    inter_alpha: f64,
    /// Hourly price in USD, when the machine models a cloud instance.
    price_per_hour: Option<f64>,
}

impl MachineSpec {
    /// Machine name as used in tables.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// GPU product installed.
    pub fn gpu(&self) -> GpuModel {
        self.gpu
    }

    /// GPUs per node.
    pub fn gpus_per_node(&self) -> usize {
        self.gpus_per_node
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Total GPU count across nodes.
    pub fn total_gpus(&self) -> usize {
        self.gpus_per_node * self.nodes
    }

    /// Whether this is a multi-node cluster.
    pub fn is_multi_node(&self) -> bool {
        self.nodes > 1
    }

    /// The physical interconnect graph of one node.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Per-GPU concurrent stream bandwidth for `backend` (bytes/s).
    pub fn stream_bandwidth(&self, backend: CommBackend) -> f64 {
        self.shm_stream_bw * backend.bandwidth_efficiency()
    }

    /// Per-GPU stream bandwidth of the *vanilla NCCL* baseline (used for
    /// uncompressed Horovod-NCCL / PyTorch-DDP runs).
    pub fn baseline_stream_bandwidth(&self) -> f64 {
        self.nccl_stream_bw
    }

    /// Effective inter-node stream bandwidth per node, if multi-node.
    pub fn inter_node_bandwidth(&self) -> Option<f64> {
        self.inter_node_bw
    }

    /// Inter-node round latency.
    pub fn inter_alpha(&self) -> f64 {
        self.inter_alpha
    }

    /// Hourly price (cloud instances).
    pub fn price_per_hour(&self) -> Option<f64> {
        self.price_per_hour
    }

    /// Restricts the machine to its first `n` GPUs (single node); used for
    /// the 1/2/4/8-GPU scaling sweeps of Figure 3.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero, exceeds the GPUs of one node, or the machine
    /// is multi-node.
    pub fn with_gpus(&self, n: usize) -> MachineSpec {
        assert!(!self.is_multi_node(), "with_gpus applies to single nodes");
        assert!(
            n >= 1 && n <= self.gpus_per_node,
            "cannot select {n} of {} GPUs",
            self.gpus_per_node
        );
        let mut m = self.clone();
        m.gpus_per_node = n;
        m
    }

    /// Scales this machine out to `nodes` copies of itself joined by an
    /// interconnect of `inter_bw` bytes/s per node and `inter_alpha`
    /// seconds per round — the constructor behind the 512-rank
    /// heterogeneous sweeps (e.g. `rtx3090().scale_out(64, ..)`).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero, `inter_bw` is not positive, or
    /// `inter_alpha` is negative (catalog construction is programmer
    /// input, matching [`MachineSpec::with_gpus`]).
    pub fn scale_out(&self, nodes: usize, inter_bw: f64, inter_alpha: f64) -> MachineSpec {
        assert!(nodes >= 1, "need at least one node");
        assert!(
            inter_bw.is_finite() && inter_bw > 0.0,
            "inter-node bandwidth must be positive"
        );
        assert!(
            inter_alpha.is_finite() && inter_alpha >= 0.0,
            "inter-node alpha must be non-negative"
        );
        let mut m = self.clone();
        if nodes == 1 {
            m.nodes = 1;
            m.inter_node_bw = None;
            m.inter_alpha = 0.0;
            return m;
        }
        m.name = format!("{}x {}", nodes, self.name);
        m.nodes = nodes;
        m.inter_node_bw = Some(inter_bw);
        m.inter_alpha = inter_alpha;
        m.price_per_hour = self.price_per_hour.map(|p| p * nodes as f64);
        m
    }

    /// Lowers the machine onto a DES [`Fabric`]: one rank per GPU, with
    /// per-rank lane bandwidth shaped by the node topology's lane
    /// envelope (GPUs on slower switches get proportionally slower
    /// lanes around the calibrated per-GPU stream bandwidth), the
    /// backend's α, and — on multi-node machines — shared per-node
    /// uplink/downlink lanes at the calibrated inter-node bandwidth.
    pub fn fabric(&self, backend: CommBackend) -> Result<Fabric, SimError> {
        let ranks = self.total_gpus();
        let base_bw = self.stream_bandwidth(backend);
        let mut f = Fabric::uniform(ranks, base_bw, backend.alpha())?;
        let lanes = self.topology.gpu_lane_bandwidths();
        let peak = lanes.iter().copied().fold(0.0, f64::max);
        if peak > 0.0 {
            // Only the GPUs of one node appear in the topology; the
            // pattern repeats on every node.
            let gpn = self.gpus_per_node.min(lanes.len());
            for r in 0..ranks {
                let rel = lanes[r % gpn] / peak;
                if rel < 1.0 {
                    f.scale_rank_bandwidth(r, rel)?;
                }
            }
        }
        if let Some(inter_bw) = self.inter_node_bw {
            f.set_nodes(self.gpus_per_node, inter_bw, self.inter_alpha)?;
        }
        Ok(f)
    }

    // ----- Table 2 systems -----

    /// DGX-1: 8x V100 with NVLink, ~100 GB/s Allreduce bandwidth.
    pub fn dgx1() -> MachineSpec {
        MachineSpec {
            name: "DGX-1".into(),
            gpu: GpuModel::V100,
            gpus_per_node: 8,
            nodes: 1,
            topology: topology::dgx1_hypercube("dgx-1-nvlink", 25e9),
            shm_stream_bw: 175e9,
            nccl_stream_bw: 175e9,
            inter_node_bw: None,
            inter_alpha: 0.0,
            price_per_hour: None,
        }
    }

    /// 8x A6000 with NVLink (Table 2 row 2).
    pub fn a6000() -> MachineSpec {
        MachineSpec {
            name: "A6000".into(),
            gpu: GpuModel::A6000,
            gpus_per_node: 8,
            nodes: 1,
            topology: topology::dgx1_hypercube("a6000-nvlink", 25e9),
            shm_stream_bw: 175e9,
            nccl_stream_bw: 175e9,
            inter_node_bw: None,
            inter_alpha: 0.0,
            price_per_hour: None,
        }
    }

    /// 8x RTX 3090 over a dual-NUMA PCIe bus: 13-16 GB/s pairwise,
    /// ~1 GB/s NCCL Allreduce bandwidth (Table 2 row 3, Figure 8).
    pub fn rtx3090() -> MachineSpec {
        MachineSpec {
            name: "RTX-3090".into(),
            gpu: GpuModel::Rtx3090,
            gpus_per_node: 8,
            nodes: 1,
            topology: topology::rtx_dual_numa("rtx3090-pcie", 8, 16e9, 12e9),
            // SHM point-to-point avoids NCCL's ring protocol overhead:
            // ~4 GB/s effective Allreduce algbw.
            shm_stream_bw: 7e9,
            // NCCL ring: 1 GB/s algbw => stream = algbw * 2(n-1)/n = 1.75.
            nccl_stream_bw: 1.75e9,
            inter_node_bw: None,
            inter_alpha: 0.0,
            price_per_hour: None,
        }
    }

    /// 8x RTX 2080 Ti (Table 2 row 4): 6-8 GB/s pairwise, ~1.5 GB/s
    /// Allreduce bandwidth.
    pub fn rtx2080() -> MachineSpec {
        MachineSpec {
            name: "RTX-2080".into(),
            gpu: GpuModel::Rtx2080Ti,
            gpus_per_node: 8,
            nodes: 1,
            topology: topology::rtx_dual_numa("rtx2080-pcie", 8, 8e9, 12e9),
            shm_stream_bw: 5e9,
            nccl_stream_bw: 2.6e9,
            inter_node_bw: None,
            inter_alpha: 0.0,
            price_per_hour: None,
        }
    }

    // ----- Cloud instances (Table 4) -----

    /// AWS EC2 p3.8xlarge: 4x V100 with NVLink, $12.2/h.
    pub fn aws_p3_8xlarge() -> MachineSpec {
        MachineSpec {
            name: "AWS p3.8xlarge".into(),
            gpu: GpuModel::V100,
            gpus_per_node: 4,
            nodes: 1,
            topology: topology::single_root_pcie("p3-nvlink", 4, 50e9),
            shm_stream_bw: 120e9,
            nccl_stream_bw: 120e9,
            inter_node_bw: None,
            inter_alpha: 0.0,
            price_per_hour: Some(12.2),
        }
    }

    /// Genesis Cloud 4x RTX 3090 instance, $6.8/h, ~10 GB/s intra-node bus.
    pub fn genesis_3090() -> MachineSpec {
        MachineSpec {
            name: "Genesis 4xRTX3090".into(),
            gpu: GpuModel::Rtx3090,
            gpus_per_node: 4,
            nodes: 1,
            topology: topology::single_root_pcie("genesis-pcie", 4, 10e9),
            shm_stream_bw: 5e9,
            nccl_stream_bw: 1.5e9,
            inter_node_bw: None,
            inter_alpha: 0.0,
            price_per_hour: Some(6.8),
        }
    }

    /// The Table 5 cluster: 4 nodes x 4 RTX 3090, 10 GB/s intra-node,
    /// 5 Gb/s-class inter-node Ethernet (effective ~0.6 GB/s per node,
    /// with millisecond-class per-round latency under TCP).
    pub fn genesis_cluster() -> MachineSpec {
        let mut m = Self::genesis_3090();
        m.name = "Genesis 4x4xRTX3090".into();
        m.nodes = 4;
        m.inter_node_bw = Some(0.625e9);
        m.inter_alpha = 1.5e-3;
        m.price_per_hour = Some(4.0 * 6.8);
        m
    }

    /// All four Table 2 single-node systems.
    pub fn table2_systems() -> [MachineSpec; 4] {
        [
            Self::dgx1(),
            Self::a6000(),
            Self::rtx3090(),
            Self::rtx2080(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_systems_have_8_gpus() {
        for m in MachineSpec::table2_systems() {
            assert_eq!(m.total_gpus(), 8, "{}", m.name());
            assert!(!m.is_multi_node());
        }
    }

    #[test]
    fn rtx3090_nccl_algbw_is_about_1gbps() {
        let m = MachineSpec::rtx3090();
        let n = m.gpus_per_node() as f64;
        let algbw = m.baseline_stream_bandwidth() * n / (2.0 * (n - 1.0));
        assert!((algbw - 1e9).abs() < 0.05e9, "algbw {algbw:.3e}");
    }

    #[test]
    fn dgx_nccl_algbw_is_about_100gbps() {
        let m = MachineSpec::dgx1();
        let n = m.gpus_per_node() as f64;
        let algbw = m.baseline_stream_bandwidth() * n / (2.0 * (n - 1.0));
        assert!((algbw - 100e9).abs() < 5e9, "algbw {algbw:.3e}");
    }

    #[test]
    fn topology_is_consistent_with_calibration() {
        // The topology-derived ring bandwidth should be within ~4x of the
        // calibrated NCCL stream bandwidth (topology ignores protocol
        // overheads).
        let m = MachineSpec::rtx3090();
        let structural = m.topology().ring_flow_bandwidth();
        let calibrated = m.baseline_stream_bandwidth();
        let ratio = structural / calibrated;
        assert!((1.0..6.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn with_gpus_restricts_count() {
        let m = MachineSpec::rtx3090().with_gpus(4);
        assert_eq!(m.total_gpus(), 4);
    }

    #[test]
    #[should_panic(expected = "cannot select")]
    fn with_gpus_over_capacity_panics() {
        MachineSpec::rtx3090().with_gpus(9);
    }

    #[test]
    fn cluster_is_multi_node_with_inter_link() {
        let c = MachineSpec::genesis_cluster();
        assert!(c.is_multi_node());
        assert_eq!(c.total_gpus(), 16);
        assert!(c.inter_node_bandwidth().unwrap() < c.stream_bandwidth(CommBackend::Shm));
    }

    #[test]
    fn cloud_instances_have_prices() {
        assert_eq!(MachineSpec::aws_p3_8xlarge().price_per_hour(), Some(12.2));
        assert_eq!(MachineSpec::genesis_3090().price_per_hour(), Some(6.8));
    }

    #[test]
    fn scale_out_multiplies_ranks_and_price() {
        let m = MachineSpec::rtx3090().scale_out(64, 1.25e9, 1e-3);
        assert_eq!(m.total_gpus(), 512);
        assert!(m.is_multi_node());
        assert_eq!(m.inter_node_bandwidth(), Some(1.25e9));
        assert_eq!(m.inter_alpha(), 1e-3);
        let single = MachineSpec::genesis_cluster().scale_out(1, 1.0, 0.0);
        assert!(!single.is_multi_node());
        assert_eq!(single.inter_node_bandwidth(), None);
    }

    #[test]
    fn fabric_reflects_scale_out_and_runs() {
        use crate::des::{build_sra, OpGraph, DesScratch, run};
        let m = MachineSpec::genesis_3090();
        let flat = m.fabric(CommBackend::Shm).unwrap();
        assert_eq!(flat.ranks(), 4);
        let cluster = m.scale_out(4, 0.625e9, 1.5e-3);
        let fat = cluster.fabric(CommBackend::Shm).unwrap();
        assert_eq!(fat.ranks(), 16);
        let mut g = OpGraph::new();
        let mut s = DesScratch::new();
        build_sra(&mut g, 16).unwrap();
        let bytes = 10_000_000.0;
        let t_clustered = run(&g, &fat, bytes, &mut s).unwrap().makespan_seconds();
        let wide = Fabric::uniform(16, m.stream_bandwidth(CommBackend::Shm), 0.0).unwrap();
        let t_flat = run(&g, &wide, bytes, &mut s).unwrap().makespan_seconds();
        // The shared 0.625 GB/s uplinks must slow the same graph down.
        assert!(t_clustered > 2.0 * t_flat, "{t_clustered} vs {t_flat}");
    }

    #[test]
    fn lane_envelope_shapes_per_rank_bandwidth() {
        // The dual-NUMA RTX box routes some GPUs over a slower bus; the
        // lane envelope must not be uniform.
        let m = MachineSpec::rtx3090();
        let lanes = m.topology().gpu_lane_bandwidths();
        assert_eq!(lanes.len(), 8);
        assert!(lanes.iter().all(|&b| b > 0.0));
        m.fabric(CommBackend::Shm).unwrap(); // must validate
    }

    #[test]
    fn backend_efficiency_orders_stream_bandwidth() {
        let m = MachineSpec::rtx3090();
        assert!(m.stream_bandwidth(CommBackend::Shm) > m.stream_bandwidth(CommBackend::Nccl));
        assert!(m.stream_bandwidth(CommBackend::Nccl) > m.stream_bandwidth(CommBackend::Mpi));
    }
}
