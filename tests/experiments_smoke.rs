//! End-to-end smoke tests of the paper's headline claims: each experiment
//! harness's acceptance criterion, asserted programmatically. These pin the
//! qualitative *shapes* of every table and figure so a regression in any
//! substrate (cost model, wire formats, policies) is caught here.

use cgx::adaptive::{AdaptiveOptions, AdaptivePolicy};
use cgx::core::adaptive::adaptive_compression_for;
use cgx::core::cloud::{cost_efficiency, table4_offers};
use cgx::core::estimate::{estimate, estimate_fp32, estimate_with_schemes, SystemSetup};
use cgx::models::{ModelId, ModelSpec};
use cgx::simnet::MachineSpec;

#[test]
fn figure1_compression_approaches_ideal_monotonically() {
    let machine = MachineSpec::rtx3090();
    for model in ModelId::all() {
        let ideal = estimate(&machine, model, &SystemSetup::Ideal)
            .report
            .step_seconds;
        let mut last = f64::INFINITY;
        for gamma in [1.0, 4.0, 16.0, 64.0, 256.0] {
            let t = estimate(&machine, model, &SystemSetup::Fake { gamma })
                .report
                .step_seconds;
            assert!(t <= last + 1e-9, "{model}: non-monotone at x{gamma}");
            assert!(t >= ideal, "{model}: faster than ideal at x{gamma}");
            last = t;
        }
        // Uncompressed clearly above ideal; extreme compression close.
        let t1 = estimate(&machine, model, &SystemSetup::Fake { gamma: 1.0 })
            .report
            .step_seconds;
        assert!(t1 > 1.1 * ideal, "{model}: no bandwidth bottleneck at x1");
        assert!(last < 1.15 * ideal, "{model}: x256 should near ideal");
    }
}

#[test]
fn figure3_cgx_selfspeedup_and_dgx_parity() {
    let rtx = MachineSpec::rtx3090();
    let dgx = MachineSpec::dgx1();
    for model in [ModelId::TransformerXl, ModelId::VitBase, ModelId::BertBase] {
        let base = estimate(&rtx, model, &SystemSetup::BaselineNccl);
        let cgx = estimate(&rtx, model, &SystemSetup::cgx());
        let speedup = cgx.throughput / base.throughput;
        assert!((1.8..4.0).contains(&speedup), "{model}: {speedup:.2}x");
        assert!(cgx.scaling > 0.75, "{model}: scaling {:.2}", cgx.scaling);
        // Transformer models: commodity + CGX rivals the DGX-1.
        let dgx_t = estimate(&dgx, model, &SystemSetup::BaselineNccl).throughput;
        assert!(cgx.throughput > 0.9 * dgx_t, "{model} vs DGX");
    }
    // Commodity NCCL baseline scales < 50% for the big models.
    for model in [ModelId::TransformerXl, ModelId::VitBase] {
        let base = estimate(&rtx, model, &SystemSetup::BaselineNccl);
        assert!(base.scaling < 0.5, "{model}: baseline {:.2}", base.scaling);
    }
}

#[test]
fn table4_cgx_wins_cost_efficiency() {
    let rows: Vec<_> = table4_offers()
        .iter()
        .map(|o| cost_efficiency(o, ModelId::BertBase))
        .collect();
    let (genesis_nccl, aws, genesis_cgx) = (&rows[0], &rows[1], &rows[2]);
    assert!(aws.throughput > genesis_nccl.throughput);
    assert!(genesis_cgx.throughput > 0.8 * aws.throughput);
    assert!(genesis_cgx.items_per_second_per_dollar > 1.5 * aws.items_per_second_per_dollar);
}

#[test]
fn table5_multinode_speedups_in_paper_band() {
    let cluster = MachineSpec::genesis_cluster();
    for model in [
        ModelId::ResNet50,
        ModelId::VitBase,
        ModelId::TransformerXl,
        ModelId::BertBase,
    ] {
        let base = estimate(&cluster, model, &SystemSetup::BaselineNccl);
        let cgx = estimate(&cluster, model, &SystemSetup::cgx());
        let speedup = cgx.throughput / base.throughput;
        assert!(
            (2.5..12.0).contains(&speedup),
            "{model}: multi-node speedup {speedup:.1}x"
        );
    }
}

#[test]
fn table6_fp32_ordering() {
    let rtx = MachineSpec::rtx3090();
    for model in [ModelId::ResNet50, ModelId::TransformerXl, ModelId::BertBase] {
        let base = estimate_fp32(&rtx, model, &SystemSetup::BaselineNccl).throughput;
        let cgx = estimate_fp32(&rtx, model, &SystemSetup::cgx()).throughput;
        let psgd = estimate_fp32(&rtx, model, &SystemSetup::PowerSgd { rank: 4 }).throughput;
        let grace = estimate_fp32(&rtx, model, &SystemSetup::Grace { bits: 4 }).throughput;
        assert!(cgx > psgd, "{model}: CGX > PowerSGD");
        assert!(psgd > base, "{model}: PowerSGD > baseline");
        assert!(base > grace, "{model}: baseline > Grace");
    }
}

#[test]
fn table7_adaptive_ordering_and_magnitudes() {
    let model = ModelSpec::build(ModelId::TransformerXl);
    let single = MachineSpec::rtx3090();
    let multi = MachineSpec::genesis_cluster();
    let opts = AdaptiveOptions::default();
    let static_single = estimate(&single, ModelId::TransformerXl, &SystemSetup::cgx());
    let static_multi = estimate(&multi, ModelId::TransformerXl, &SystemSetup::cgx());
    let speedups = |policy| {
        let out = adaptive_compression_for(&model, policy, &opts, 2, 7);
        let s1 = estimate_with_schemes(&single, ModelId::TransformerXl, &out.schemes).throughput
            / static_single.throughput;
        let sm = estimate_with_schemes(&multi, ModelId::TransformerXl, &out.schemes).throughput
            / static_multi.throughput;
        (out.size_ratio_vs_static4, s1, sm)
    };
    let (km_size, km_1, km_m) = speedups(AdaptivePolicy::KMeans);
    let (_, lin_1, lin_m) = speedups(AdaptivePolicy::Linear);
    // Paper: ~0.68 compression, ~1.05x single node, ~1.4x multi-node.
    assert!((0.4..0.85).contains(&km_size), "kmeans size {km_size:.2}");
    assert!((1.0..1.15).contains(&km_1), "kmeans 1-node {km_1:.2}");
    assert!((1.2..1.6).contains(&km_m), "kmeans multi {km_m:.2}");
    // KMEANS >= Linear on both axes; multi-node gain >> single-node gain.
    assert!(
        km_m >= lin_m - 1e-9,
        "kmeans {km_m:.2} vs linear {lin_m:.2}"
    );
    assert!(km_1 >= lin_1 - 1e-9);
    assert!(km_m > km_1 + 0.1, "multi-node gain must dominate");
}

#[test]
fn table8_ceiling_in_paper_band() {
    let rtx = MachineSpec::rtx3090();
    for model in ModelId::all() {
        let ceiling = estimate(&rtx, model, &SystemSetup::Fake { gamma: 4096.0 }).scaling;
        assert!(
            (0.85..0.99).contains(&ceiling),
            "{model}: ceiling {ceiling:.2}"
        );
        // CGX approaches (never exceeds by much) the ceiling.
        let cgx = estimate(&rtx, model, &SystemSetup::cgx()).scaling;
        assert!(
            cgx <= ceiling + 0.02,
            "{model}: CGX {cgx:.2} vs {ceiling:.2}"
        );
        assert!(cgx > 0.6, "{model}: CGX too far from ceiling");
    }
}

#[test]
fn qnccl_between_nccl_and_cgx_with_worse_granularity() {
    let rtx = MachineSpec::rtx3090();
    for model in [ModelId::ResNet50, ModelId::Vgg16, ModelId::TransformerXl] {
        let base = estimate(&rtx, model, &SystemSetup::BaselineNccl).throughput;
        let qn = estimate(
            &rtx,
            model,
            &SystemSetup::Qnccl {
                bits: 4,
                bucket_size: 128,
            },
        )
        .throughput;
        let cgx = estimate(&rtx, model, &SystemSetup::cgx()).throughput;
        assert!(base < qn && qn < cgx, "{model}: {base:.0} {qn:.0} {cgx:.0}");
    }
}

#[test]
fn figure11_shm_fastest_mpi_within_a_third() {
    use cgx::core::api::CgxBuilder;
    use cgx::simnet::{simulate_step, CommBackend, ComputeProfile, StepConfig};
    let rtx = MachineSpec::rtx3090();
    for model in [ModelId::ResNet50, ModelId::TransformerXl] {
        let spec = ModelSpec::build(model);
        let mut session = CgxBuilder::new().build();
        session.register_model_spec(&spec);
        let msgs = session.layer_messages(spec.precision());
        let compute = ComputeProfile::new(rtx.gpu().step_compute_seconds(&spec));
        let time = |backend| {
            let mut cfg = StepConfig::cgx(rtx.clone());
            cfg.backend = backend;
            simulate_step(&cfg, &msgs, compute).step_seconds
        };
        let shm = time(CommBackend::Shm);
        let nccl = time(CommBackend::Nccl);
        let mpi = time(CommBackend::Mpi);
        assert!(shm <= nccl && nccl <= mpi, "{model}: backend ordering");
        assert!(mpi / shm < 1.4, "{model}: MPI gap {:.2}", mpi / shm);
    }
}
