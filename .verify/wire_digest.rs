//! Verification driver: wire-format digests through the public
//! cgx_compress export. Compiled against both the seed rlibs and the
//! working-tree rlibs; outputs must be byte-identical.

use cgx_compress::{Compressor, NormKind, QsgdCompressor};
use cgx_tensor::{Rng, Tensor};

fn fnv_bytes(xs: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in xs {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn fnv_f32(xs: &[f32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in xs {
        h = (h ^ v.to_bits() as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn main() {
    for &(bits, bucket) in &[(2u32, 64usize), (3, 128), (4, 128), (8, 512)] {
        for &n in &[1usize, 100, 128, 515, 65_536, 1 << 20] {
            for norm in [NormKind::Max, NormKind::L2] {
                let mut rng = Rng::seed_from_u64(42);
                let grad = Tensor::randn(&mut rng, &[n]);
                let mut c = QsgdCompressor::with_norm(bits, bucket, norm);
                let enc = c.compress(&grad, &mut rng);
                let dec = c.decompress(&enc);
                println!(
                    "bits={bits} bucket={bucket} n={n} norm={norm:?} \
                     payload_len={} payload={:016x} decoded={:016x}",
                    enc.payload_bytes(),
                    fnv_bytes(enc.payload()),
                    fnv_f32(dec.as_slice())
                );
            }
        }
    }
}
