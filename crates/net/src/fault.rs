//! Socket-level fault injection for the TCP fabric.
//!
//! Mirrors [`cgx_collectives::FaultPlan`] one layer down: where the chaos
//! transport perturbs frames in process, [`NetFaultPlan`] kills real
//! processes and resets real sockets, so the recovery machinery is
//! exercised against the operating system rather than a simulation of it.
//!
//! Two fault shapes:
//!
//! * **Kill** — `(rank, step)`: that rank dies at the top of that step.
//!   By default the worker returns and drops its endpoint (orderly FIN,
//!   the thread-cluster analogue); with [`NetFaultPlan::with_sigkill`]
//!   the process raises `SIGKILL` on itself — no destructors, no
//!   flushes, the kernel tears the sockets down. That is the honest
//!   model of an OOM kill or a preempted spot instance.
//! * **Reset** — `(rank, peer, after_frames)`: that rank's socket toward
//!   `peer` is shut down under the wire path after N outbound frames — a
//!   transient link drop the reconnect path should heal.
//!
//! Plans come from the builder API in tests and from `CGX_NET_*`
//! environment variables in spawned workers (see [`NetFaultPlan::from_env`]).

/// Environment variable carrying the kill plan as `rank@step`
/// (for example `2@20`: rank 2 dies at the top of step 20).
pub const ENV_NET_KILL: &str = "CGX_NET_KILL";
/// Environment variable: when set truthy, the kill is a real `SIGKILL`
/// instead of an orderly return.
pub const ENV_NET_SIGKILL: &str = "CGX_NET_SIGKILL";
/// Environment variable carrying the reset plan as `rank:peer@frames`
/// (for example `1:0@3`: rank 1's socket to rank 0 drops after 3 frames).
pub const ENV_NET_RESET: &str = "CGX_NET_RESET";
/// Environment variable carrying the fault seed (defaults to 0).
pub const ENV_NET_FAULT_SEED: &str = "CGX_NET_FAULT_SEED";

/// A transient socket drop: `rank`'s connection toward `peer` is shut
/// down once `after_frames` outbound frames have been enqueued to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResetPlan {
    /// The rank whose socket is sabotaged.
    pub rank: usize,
    /// The peer whose link drops.
    pub peer: usize,
    /// Outbound frames to that peer before the drop fires (one-shot).
    pub after_frames: u64,
}

/// Deterministic process/socket-level fault schedule for a TCP run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetFaultPlan {
    /// Seed identifying the schedule (recorded in reports so chaos runs
    /// are replayable).
    pub seed: u64,
    /// `(rank, step)`: that rank dies at the top of that step.
    pub kill: Option<(usize, usize)>,
    /// Kill by raising `SIGKILL` instead of an orderly return.
    pub sigkill: bool,
    /// Transient socket drop to inject.
    pub reset: Option<ResetPlan>,
}

impl NetFaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> Self {
        NetFaultPlan {
            seed,
            kill: None,
            sigkill: false,
            reset: None,
        }
    }

    /// Returns `self` scheduling `rank` to die at the top of `step`.
    #[must_use]
    pub fn with_kill(mut self, rank: usize, step: usize) -> Self {
        self.kill = Some((rank, step));
        self
    }

    /// Returns `self` with kills escalated to `SIGKILL`.
    #[must_use]
    pub fn with_sigkill(mut self) -> Self {
        self.sigkill = true;
        self
    }

    /// Returns `self` scheduling a socket reset: `rank`'s link to `peer`
    /// drops after `after_frames` outbound frames.
    #[must_use]
    pub fn with_reset(mut self, rank: usize, peer: usize, after_frames: u64) -> Self {
        self.reset = Some(ResetPlan {
            rank,
            peer,
            after_frames,
        });
        self
    }

    /// The plan described by `CGX_NET_KILL` / `CGX_NET_SIGKILL` /
    /// `CGX_NET_RESET` / `CGX_NET_FAULT_SEED`, or `None` when no fault
    /// variable is set — how spawned workers inherit the coordinator's
    /// chaos schedule.
    pub fn from_env() -> Option<Self> {
        let kill = std::env::var(ENV_NET_KILL).ok().and_then(|v| parse_at(&v));
        let reset = std::env::var(ENV_NET_RESET).ok().and_then(|v| {
            let (pair, frames) = v.split_once('@')?;
            let (rank, peer) = pair.split_once(':')?;
            Some(ResetPlan {
                rank: rank.trim().parse().ok()?,
                peer: peer.trim().parse().ok()?,
                after_frames: frames.trim().parse().ok()?,
            })
        });
        if kill.is_none() && reset.is_none() {
            return None;
        }
        let sigkill = std::env::var(ENV_NET_SIGKILL)
            .map(|v| !matches!(v.as_str(), "" | "0" | "false" | "no"))
            .unwrap_or(false);
        let seed = std::env::var(ENV_NET_FAULT_SEED)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        Some(NetFaultPlan {
            seed,
            kill,
            sigkill,
            reset,
        })
    }

    /// Whether `rank` is scheduled to die at `step`. In `SIGKILL` mode
    /// this does not return on the doomed rank: the process is gone
    /// before the call completes.
    pub fn should_die(&self, rank: usize, step: usize) -> bool {
        match self.kill {
            Some((r, s)) if r == rank && s == step => {
                if self.sigkill {
                    raise_sigkill();
                }
                true
            }
            _ => false,
        }
    }
}

/// `rank@step` → `(rank, step)`.
fn parse_at(v: &str) -> Option<(usize, usize)> {
    let (rank, step) = v.split_once('@')?;
    Some((rank.trim().parse().ok()?, step.trim().parse().ok()?))
}

/// Kills the current process with `SIGKILL` — no unwinding, no `Drop`,
/// no socket shutdown beyond what the kernel does. Falls back to a bare
/// `exit(137)` (the conventional SIGKILL exit code) off unix.
pub fn raise_sigkill() -> ! {
    #[cfg(unix)]
    {
        extern "C" {
            fn getpid() -> i32;
            fn kill(pid: i32, sig: i32) -> i32;
        }
        const SIGKILL: i32 = 9;
        unsafe {
            kill(getpid(), SIGKILL);
        }
        // Unreachable on unix; the loop satisfies the `!` return if the
        // signal is somehow delayed.
        loop {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
    #[cfg(not(unix))]
    {
        std::process::exit(137);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_should_die_cover_the_schedule() {
        let plan = NetFaultPlan::new(42).with_kill(2, 20).with_reset(1, 0, 3);
        assert!(!plan.sigkill);
        assert!(plan.should_die(2, 20));
        assert!(!plan.should_die(2, 19));
        assert!(!plan.should_die(1, 20));
        assert_eq!(
            plan.reset,
            Some(ResetPlan {
                rank: 1,
                peer: 0,
                after_frames: 3
            })
        );
    }

    #[test]
    fn env_roundtrip_parses_kill_and_reset() {
        std::env::set_var(ENV_NET_KILL, "2@20");
        std::env::set_var(ENV_NET_RESET, "1:0@3");
        std::env::set_var(ENV_NET_FAULT_SEED, "7");
        let plan = NetFaultPlan::from_env().expect("plan armed");
        std::env::remove_var(ENV_NET_KILL);
        std::env::remove_var(ENV_NET_RESET);
        std::env::remove_var(ENV_NET_FAULT_SEED);
        assert_eq!(plan.kill, Some((2, 20)));
        assert_eq!(plan.seed, 7);
        assert!(!plan.sigkill);
        assert_eq!(
            plan.reset,
            Some(ResetPlan {
                rank: 1,
                peer: 0,
                after_frames: 3
            })
        );
        assert_eq!(NetFaultPlan::from_env(), None, "empty env means no plan");
    }

    #[test]
    fn malformed_env_is_ignored() {
        std::env::set_var(ENV_NET_KILL, "not-a-plan");
        assert_eq!(NetFaultPlan::from_env(), None);
        std::env::remove_var(ENV_NET_KILL);
    }
}
