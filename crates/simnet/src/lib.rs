#![warn(missing_docs)]
//! Discrete-event performance simulator of multi-GPU machines.
//!
//! The CGX paper's throughput results are produced on real 8-GPU servers;
//! this crate is the substitute substrate: a calibrated α-β cost model of
//! the same machines (Table 2), their interconnect topologies (Figure 8),
//! the reduction schemes of Section 3, and a step simulator that overlaps
//! per-layer gradient communication with the backward pass exactly the way
//! the real communication engine does.
//!
//! Layering:
//!
//! * [`hardware`] — GPU spec sheets and single-GPU throughput envelopes
//!   (Table 1);
//! * [`topology`] — device graphs, p2p bandwidth matrices, ring contention
//!   analysis (Figure 8 and the "1 GB/s Allreduce on a 16 GB/s bus" effect);
//! * [`machine`] — the calibrated evaluation systems (Table 2, Table 4
//!   cloud instances, the Table 5 cluster);
//! * [`backend`] — SHM / NCCL / MPI transport profiles (Figure 11);
//! * [`collective`] — α-β cost of SRA / Ring / Tree / Allgather reductions
//!   (Figure 10);
//! * [`des`] — a first-principles discrete-event network simulation that
//!   cross-validates the closed forms (lane contention, dependency stalls);
//! * [`calibrate`] — fits the DES loopback fabric to measured
//!   `BENCH_net.json` points and reports per-point relative error;
//! * [`step`] — the per-step overlap simulator behind Figures 1 and 3 and
//!   Tables 4-8.
//!
//! # Examples
//!
//! ```
//! use cgx_simnet::{
//!     ComputeProfile, LayerMsg, MachineSpec, StepConfig, simulate_step,
//! };
//!
//! // 25M-parameter model, fp32 wire, on the 8x RTX 3090 box.
//! let layers = vec![LayerMsg::new("all", 25_000_000, 100_000_000, 0.0)];
//! let cfg = StepConfig::nccl_baseline(MachineSpec::rtx3090());
//! let r = simulate_step(&cfg, &layers, ComputeProfile::new(0.0376));
//! assert!(r.scaling_efficiency() < 0.5); // the paper's bandwidth wall
//! ```

pub mod backend;
pub mod calibrate;
pub mod collective;
pub mod des;
pub mod hardware;
pub mod machine;
pub mod memory;
pub mod schedule;
pub mod step;
pub mod topology;

pub use backend::CommBackend;
pub use calibrate::{calibrate, parse_bench_net, CalPoint, CalibrationReport, LoopbackModel, NetPoint};
pub use collective::{
    allreduce_time, flat_multinode_allreduce_time, hierarchical_allreduce_time, CommCost,
    ReductionScheme,
};
pub use des::{
    build_hierarchical, build_ring, build_sra, build_tree, run, run_with_times, Bus, DesScratch,
    Fabric, NetworkDes, OpGraph, RunStats, SimError, SimWorkspace,
};
pub use hardware::{GpuModel, GpuSpec};
pub use machine::MachineSpec;
pub use memory::{max_batch, recipe_batch_fits, training_memory_mb, OptimizerKind};
pub use schedule::{cross_barrier_step, simulate_step_ordered, MessageOrder};
pub use step::{
    fuse_messages, message_time, simulate_step, simulate_step_traced, ComputeProfile, Lane,
    LayerMsg, StepConfig, StepReport, SyncMode, TraceEvent, TransportQuality,
};
pub use topology::{Device, Link, LinkKind, Topology};
