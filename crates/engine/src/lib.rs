#![warn(missing_docs)]
//! Neural-network training substrate with compressed data-parallel SGD.
//!
//! The paper's accuracy-recovery claims (Table 3, Figure 4) are properties
//! of the *training dynamics* under compressed gradients: unbiased
//! stochastic quantization preserves convergence; biased compressors need
//! error feedback; over-aggressive compression slows or breaks training.
//! To reproduce those dynamics for real — not merely assert them — this
//! crate implements, from scratch:
//!
//! * [`nn`] — dense layers, softmax cross-entropy, MLP classifiers and an
//!   embedding language model with exact manual backpropagation;
//! * [`data`] — deterministic synthetic tasks (Gaussian-mixture
//!   classification, Markov-chain language modelling) standing in for
//!   ImageNet / WikiText / SQuAD;
//! * [`optimizer`] — SGD with momentum, weight decay, and global-norm
//!   gradient clipping (the compression interaction of paper
//!   Technical Issue 3);
//! * [`trainer`] — the data-parallel training loop: N worker threads, real
//!   compressed Allreduce per layer through `cgx_collectives`, CGX-style
//!   layer filters, replica-consistency guarantees.
//!
//! # Examples
//!
//! ```
//! use cgx_engine::data::GaussianMixture;
//! use cgx_engine::nn::Mlp;
//! use cgx_tensor::Rng;
//!
//! let mut rng = Rng::seed_from_u64(0);
//! let task = GaussianMixture::new(4, 8, 1.5);
//! let model = Mlp::new(&mut rng, &[8, 16, 4]);
//! let (x, y) = task.sample_batch(&mut rng, 32);
//! let (loss, grads) = model.loss_and_grads(&x, &y);
//! assert!(loss > 0.0);
//! assert_eq!(grads.len(), model.params().len());
//! ```

pub mod attention;
pub mod data;
pub mod local_sgd;
pub mod nn;
pub mod norm;
pub mod optimizer;
pub mod trainer;

pub use attention::AttentionLm;
pub use data::{GaussianMixture, MarkovChainLm};
pub use local_sgd::{local_sgd_rank, train_local_sgd, LocalSgdRankOutput, LocalSgdReport};
pub use nn::{EmbeddingLm, Mlp};
pub use norm::MlpNorm;
pub use optimizer::{clip_global_norm, Adam, LrSchedule, SgdMomentum};
pub use trainer::{
    train_data_parallel, train_rank, LayerCompression, PerLayerMismatch, RankOutput, TrainConfig,
    TrainReport, TrainableModel,
};
// The adaptive knobs a `TrainConfig` carries, re-exported so trainer
// callers need not depend on `cgx-adaptive` directly.
pub use cgx_adaptive::{AdaptivePlanTrace, AdaptiveTrainConfig};
