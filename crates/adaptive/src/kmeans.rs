//! Seeded 2-D k-means with k-means++ initialization.

use cgx_tensor::Rng;

/// Output of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Cluster centers.
    pub centroids: Vec<(f64, f64)>,
    /// Cluster index per input point.
    pub assignment: Vec<usize>,
    /// Iterations executed before convergence (or the cap).
    pub iterations: usize,
}

fn dist2(a: (f64, f64), b: (f64, f64)) -> f64 {
    let dx = a.0 - b.0;
    let dy = a.1 - b.1;
    dx * dx + dy * dy
}

/// Clusters `points` into `k` groups (Lloyd's algorithm, k-means++ seeding,
/// at most `max_iters` rounds). Deterministic for a given `rng` state.
///
/// Empty clusters are re-seeded on the point farthest from its centroid.
///
/// # Panics
///
/// Panics if `points` is empty, `k` is zero, or `k > points.len()`.
pub fn kmeans(points: &[(f64, f64)], k: usize, rng: &mut Rng, max_iters: usize) -> KMeansResult {
    assert!(!points.is_empty(), "no points to cluster");
    assert!(
        k >= 1 && k <= points.len(),
        "invalid k={k} for {} points",
        points.len()
    );
    // k-means++ init.
    let mut centroids: Vec<(f64, f64)> = Vec::with_capacity(k);
    centroids.push(points[rng.index(points.len())]);
    while centroids.len() < k {
        let weights: Vec<f64> = points
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| dist2(*p, *c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with existing centroids; pick any.
            points[rng.index(points.len())]
        } else {
            points[rng.categorical(&weights)]
        };
        centroids.push(next);
    }
    let mut assignment = vec![0usize; points.len()];
    let mut iterations = 0;
    for it in 0..max_iters {
        iterations = it + 1;
        // Assign.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| {
                    dist2(*p, centroids[a])
                        .partial_cmp(&dist2(*p, centroids[b]))
                        .expect("finite distances")
                })
                .expect("k >= 1");
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        if !changed && it > 0 {
            break;
        }
        // Update.
        let mut sums = vec![(0.0f64, 0.0f64, 0usize); k];
        for (p, &a) in points.iter().zip(&assignment) {
            sums[a].0 += p.0;
            sums[a].1 += p.1;
            sums[a].2 += 1;
        }
        for (c, s) in centroids.iter_mut().zip(&sums) {
            if s.2 > 0 {
                *c = (s.0 / s.2 as f64, s.1 / s.2 as f64);
            }
        }
        // Re-seed empty clusters on the worst-fit point.
        for ci in 0..k {
            if sums[ci].2 == 0 {
                let worst = points
                    .iter()
                    .enumerate()
                    .max_by(|(ia, a), (ib, b)| {
                        dist2(**a, centroids[assignment[*ia]])
                            .partial_cmp(&dist2(**b, centroids[assignment[*ib]]))
                            .expect("finite distances")
                    })
                    .map(|(i, _)| i)
                    .expect("non-empty points");
                centroids[ci] = points[worst];
            }
        }
    }
    KMeansResult {
        centroids,
        assignment,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_well_separated_clusters() {
        let mut rng = Rng::seed_from_u64(1);
        let mut points = Vec::new();
        for _ in 0..30 {
            points.push((rng.normal() * 0.1, rng.normal() * 0.1));
        }
        for _ in 0..30 {
            points.push((10.0 + rng.normal() * 0.1, rng.normal() * 0.1));
        }
        let r = kmeans(&points, 2, &mut rng, 100);
        // All of the first 30 in one cluster, the rest in the other.
        let c0 = r.assignment[0];
        assert!(r.assignment[..30].iter().all(|a| *a == c0));
        assert!(r.assignment[30..].iter().all(|a| *a != c0));
    }

    #[test]
    fn assignment_is_valid_and_total() {
        let mut rng = Rng::seed_from_u64(2);
        let points: Vec<(f64, f64)> = (0..50).map(|_| (rng.uniform(), rng.uniform())).collect();
        let r = kmeans(&points, 5, &mut rng, 50);
        assert_eq!(r.assignment.len(), 50);
        assert!(r.assignment.iter().all(|a| *a < 5));
        assert_eq!(r.centroids.len(), 5);
        // Every cluster is non-empty after re-seeding logic.
        for c in 0..5 {
            assert!(r.assignment.contains(&c), "cluster {c} empty");
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let points: Vec<(f64, f64)> = (0..40).map(|i| ((i % 7) as f64, (i % 5) as f64)).collect();
        let a = kmeans(&points, 3, &mut Rng::seed_from_u64(7), 100);
        let b = kmeans(&points, 3, &mut Rng::seed_from_u64(7), 100);
        assert_eq!(a, b);
    }

    #[test]
    fn k_equals_points_gives_singletons() {
        let points = vec![(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)];
        let mut rng = Rng::seed_from_u64(3);
        let r = kmeans(&points, 3, &mut rng, 50);
        let mut clusters = r.assignment.clone();
        clusters.sort_unstable();
        clusters.dedup();
        assert_eq!(clusters.len(), 3);
    }

    #[test]
    fn identical_points_do_not_crash() {
        let points = vec![(1.0, 1.0); 10];
        let mut rng = Rng::seed_from_u64(4);
        let r = kmeans(&points, 3, &mut rng, 50);
        assert_eq!(r.assignment.len(), 10);
    }

    #[test]
    #[should_panic(expected = "invalid k")]
    fn oversized_k_panics() {
        kmeans(&[(0.0, 0.0)], 2, &mut Rng::seed_from_u64(1), 10);
    }
}
