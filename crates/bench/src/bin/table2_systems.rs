//! Table 2: system characteristics of the evaluation workstations, plus the
//! calibrated effective bandwidths the simulator derives from them.

use cgx_bench::{note, render_table};
use cgx_simnet::{CommBackend, MachineSpec};

fn main() {
    let rows: Vec<Vec<String>> = MachineSpec::table2_systems()
        .iter()
        .map(|m| {
            let n = m.gpus_per_node() as f64;
            let nccl_algbw = m.baseline_stream_bandwidth() * n / (2.0 * (n - 1.0));
            let shm_algbw = m.stream_bandwidth(CommBackend::Shm) * n / (2.0 * (n - 1.0));
            let topo_ring = m.topology().ring_allreduce_algbw();
            vec![
                m.name().to_string(),
                format!("{}x{}", m.gpus_per_node(), m.gpu()),
                m.topology().name().to_string(),
                format!("{:.1} GB/s", m.topology().p2p_bandwidth(0, 1) / 1e9),
                format!("{:.1} GB/s", nccl_algbw / 1e9),
                format!("{:.1} GB/s", shm_algbw / 1e9),
                format!("{:.1} GB/s", topo_ring / 1e9),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Table 2: evaluation systems",
            &[
                "System",
                "GPUs",
                "Interconnect",
                "p2p BW (adjacent)",
                "NCCL Allreduce algbw",
                "CGX/SHM algbw",
                "topology ring algbw",
            ],
            &rows,
        )
    );
    note("paper: DGX-1/A6000 ~100 GB/s Allreduce; RTX boxes 13-16 GB/s p2p but ~1-1.5 GB/s Allreduce.");
    note("'topology ring algbw' is derived structurally from the device graph (contention analysis).");
}
