//! The TCP wire format.
//!
//! One frame per tagged message:
//!
//! ```text
//! [len: u32 LE]                      length of everything after this field
//! [tag: u64 LE]                      demux tag (collective lane / control)
//! [ndims: u8][dims: u32 LE x ndims]  tensor geometry of the payload
//! [framing body]                     magic + seq + FNV checksum + payload
//! ```
//!
//! The framing body is byte-for-byte the format of
//! [`cgx_collectives::framing`] — the same seq+FNV envelope the chaos
//! reliability layer uses in-process — so corruption detection and
//! sequence accounting behave identically on both fabrics. TCP already
//! guarantees ordered reliable delivery; the checksum is the
//! end-to-end integrity check (paper: datacenter links do corrupt), and
//! the per-`(peer, tag)` sequence number is the cheap assertion that the
//! demux layer never reorders a lane.
//!
//! # Multi-tenant tags
//!
//! Under a `cgx-serve` daemon the tag field's top byte is a job
//! namespace: `[job:8][op:24][segment:16][phase:8][epoch:8]` (see
//! [`cgx_collectives::namespace_tag`]). Namespace 0x00 is single-job
//! traffic — bit-identical to the historical layout, since collective
//! ids stay below [`cgx_collectives::MAX_NAMESPACED_OP`] — so the frame
//! format itself is unchanged; only the tag's interpretation widens.

use cgx_collectives::framing;
use cgx_collectives::transport::Tag;
use cgx_compress::Encoded;
use cgx_tensor::Shape;
use std::io::{self, Read, Write};

/// Hard cap on a frame's post-length size: a parter that hands us garbage
/// for a length must not look like a 4 GiB allocation request.
pub const MAX_FRAME_BYTES: usize = 1 << 30;

/// Maximum tensor rank encodable in the geometry header.
pub const MAX_DIMS: usize = 255;

/// A decoded inbound frame.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Demux tag.
    pub tag: Tag,
    /// Per-`(sender, tag)` sequence number, verified by the checksum.
    pub seq: u32,
    /// Payload with its tensor geometry.
    pub enc: Encoded,
}

/// Serialized size of a frame carrying `payload_len` payload bytes with
/// `ndims` dimensions — the number that goes over the wire, used by the
/// transport's byte accounting.
pub fn frame_wire_bytes(ndims: usize, payload_len: usize) -> usize {
    4 + 8 + 1 + 4 * ndims + framing::HEADER_LEN + payload_len
}

/// Writes one frame. The caller supplies the per-`(peer, tag)` sequence
/// number; the checksum binds `(tag, seq, payload)`.
///
/// # Errors
///
/// Propagates I/O failures from `w`.
///
/// # Panics
///
/// Panics if the shape has more than [`MAX_DIMS`] dimensions (no real
/// tensor comes close).
pub fn write_frame<W: Write>(
    w: &mut W,
    tag: Tag,
    seq: u32,
    shape: &Shape,
    payload: &[u8],
) -> io::Result<()> {
    let mut buf = Vec::with_capacity(frame_wire_bytes(shape.dims().len(), payload.len()));
    append_frame_header(&mut buf, tag, seq, shape, payload);
    buf.extend_from_slice(payload);
    // One write_all for the whole frame: interleaving-safe under the
    // per-peer writer lock and far fewer syscalls than field-at-a-time.
    w.write_all(&buf)
}

/// Serializes everything that precedes the payload — length prefix, tag,
/// geometry, and the seq+checksum framing envelope — into `dst`,
/// returning the number of header bytes appended. The payload itself is
/// *not* copied: the zero-copy send path hands `(header, payload)` to a
/// vectored socket write, so the payload's only copy is the kernel's.
///
/// # Panics
///
/// Panics if the shape has more than [`MAX_DIMS`] dimensions (no real
/// tensor comes close).
pub fn append_frame_header(
    dst: &mut Vec<u8>,
    tag: Tag,
    seq: u32,
    shape: &Shape,
    payload: &[u8],
) -> usize {
    let dims = shape.dims();
    assert!(dims.len() <= MAX_DIMS, "tensor rank {} too large", dims.len());
    let before = dst.len();
    let after_len = 8 + 1 + 4 * dims.len() + framing::HEADER_LEN + payload.len();
    dst.extend_from_slice(&(after_len as u32).to_le_bytes());
    dst.extend_from_slice(&tag.to_le_bytes());
    dst.push(dims.len() as u8);
    for &d in dims {
        dst.extend_from_slice(&(d as u32).to_le_bytes());
    }
    framing::append_header(dst, tag, seq, payload);
    dst.len() - before
}

/// Attempts to decode one frame from the *front* of `buf` without
/// consuming a reader: `Ok(None)` means the buffer does not yet hold a
/// complete frame (read more), `Ok(Some((frame, consumed)))` hands back
/// the decoded frame and how many bytes it occupied. The event loop's
/// staging buffers parse arrivals in place with this — the payload is
/// copied exactly once, out of the staging ring into its own allocation.
///
/// # Errors
///
/// `InvalidData` for an implausible length, malformed geometry, or a
/// checksum mismatch.
pub fn parse_frame(buf: &[u8]) -> io::Result<Option<(Frame, usize)>> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes")) as usize;
    if len < 8 + 1 + framing::HEADER_LEN || len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("implausible frame length {len}"),
        ));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let frame = &buf[4..4 + len];
    let tag = Tag::from_le_bytes(frame[0..8].try_into().expect("8 bytes"));
    let ndims = frame[8] as usize;
    let geom_end = 9 + 4 * ndims;
    if len < geom_end + framing::HEADER_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame shorter than its declared geometry",
        ));
    }
    let mut dims = Vec::with_capacity(ndims);
    for i in 0..ndims {
        let at = 9 + 4 * i;
        dims.push(u32::from_le_bytes(frame[at..at + 4].try_into().expect("4 bytes")) as usize);
    }
    let envelope = &frame[geom_end..];
    let magic = u16::from_le_bytes([envelope[0], envelope[1]]);
    let seq = u32::from_le_bytes(envelope[2..6].try_into().expect("4 bytes"));
    let stated = u32::from_le_bytes(envelope[6..10].try_into().expect("4 bytes"));
    let body = &envelope[framing::HEADER_LEN..];
    if magic != framing::FRAME_MAGIC || framing::checksum(tag, seq, body) != stated {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("checksum/header mismatch on tag {tag:#x}"),
        ));
    }
    let payload = bytes::Bytes::copy_from_slice(body);
    Ok(Some((
        Frame {
            tag,
            seq,
            enc: Encoded::new(Shape::new(dims), payload),
        },
        4 + len,
    )))
}

fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false); // clean EOF at a frame boundary
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Reads one frame, verifying the checksum. `Ok(None)` means the peer
/// closed the connection cleanly at a frame boundary.
///
/// # Errors
///
/// `InvalidData` for an oversized length, malformed geometry, or a
/// checksum mismatch; `UnexpectedEof` for a mid-frame close; otherwise
/// the underlying I/O error.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Frame>> {
    let mut len_buf = [0u8; 4];
    if !read_exact_or_eof(r, &mut len_buf)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len < 8 + 1 || len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("implausible frame length {len}"),
        ));
    }
    let mut buf = vec![0u8; len];
    if !read_exact_or_eof(r, &mut buf)? {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed after frame length",
        ));
    }
    let tag = Tag::from_le_bytes(buf[0..8].try_into().expect("8 bytes"));
    let ndims = buf[8] as usize;
    let geom_end = 9 + 4 * ndims;
    if len < geom_end + framing::HEADER_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame shorter than its declared geometry",
        ));
    }
    let mut dims = Vec::with_capacity(ndims);
    for i in 0..ndims {
        let at = 9 + 4 * i;
        dims.push(u32::from_le_bytes(buf[at..at + 4].try_into().expect("4 bytes")) as usize);
    }
    let body = bytes::Bytes::from(buf).slice(geom_end..);
    let Some((seq, payload)) = framing::parse_verified(tag, &body) else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("checksum/header mismatch on tag {tag:#x}"),
        ));
    };
    Ok(Some(Frame {
        tag,
        seq,
        enc: Encoded::new(Shape::new(dims), payload),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(tag: Tag, seq: u32, dims: Vec<usize>, payload: &[u8]) -> Frame {
        let mut buf = Vec::new();
        write_frame(&mut buf, tag, seq, &Shape::new(dims), payload).expect("write");
        let mut cursor = io::Cursor::new(buf);
        let frame = read_frame(&mut cursor).expect("read").expect("not EOF");
        assert_eq!(cursor.position() as usize, cursor.get_ref().len(), "trailing bytes");
        frame
    }

    #[test]
    fn frames_roundtrip_bytes_and_geometry() {
        let f = roundtrip(42, 7, vec![3, 4], &[1, 2, 3, 4, 5]);
        assert_eq!(f.tag, 42);
        assert_eq!(f.seq, 7);
        assert_eq!(f.enc.shape().dims(), &[3, 4]);
        assert_eq!(f.enc.payload().as_ref(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_payload_and_scalar_shape_roundtrip() {
        let f = roundtrip(Tag::MAX, 0, vec![], &[]);
        assert_eq!(f.enc.shape().dims(), &[] as &[usize]);
        assert!(f.enc.payload().is_empty());
    }

    #[test]
    fn wire_byte_accounting_matches_serialization() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 9, 1, &Shape::new(vec![2, 2]), &[0u8; 16]).expect("write");
        assert_eq!(buf.len(), frame_wire_bytes(2, 16));
    }

    #[test]
    fn eof_at_boundary_is_none_mid_frame_is_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, 0, &Shape::new(vec![1]), &[9]).expect("write");
        let mut empty = io::Cursor::new(Vec::<u8>::new());
        assert!(read_frame(&mut empty).expect("clean EOF").is_none());
        let mut truncated = io::Cursor::new(buf[..buf.len() - 1].to_vec());
        let err = read_frame(&mut truncated).expect_err("mid-frame close");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn corrupted_payload_is_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 5, 3, &Shape::new(vec![1]), &[7, 7, 7, 7]).expect("write");
        let last = buf.len() - 1;
        buf[last] ^= 0x40;
        let err = read_frame(&mut io::Cursor::new(buf)).expect_err("corrupt");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn implausible_length_is_rejected_without_allocation() {
        let mut buf = (u32::MAX).to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 32]);
        let err = read_frame(&mut io::Cursor::new(buf)).expect_err("giant length");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn header_plus_payload_equals_write_frame_bytes() {
        let shape = Shape::new(vec![2, 3]);
        let payload = [9u8, 1, 1, 2, 3, 5];
        let mut whole = Vec::new();
        write_frame(&mut whole, 17, 4, &shape, &payload).expect("write");
        let mut hdr = Vec::new();
        let n = append_frame_header(&mut hdr, 17, 4, &shape, &payload);
        assert_eq!(n, hdr.len());
        assert_eq!(n + payload.len(), whole.len());
        assert_eq!(&whole[..n], hdr.as_slice());
        assert_eq!(&whole[n..], &payload);
    }

    #[test]
    fn parse_frame_is_incremental_and_reports_consumed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 33, 2, &Shape::new(vec![4]), &[1, 2, 3, 4]).expect("write");
        write_frame(&mut buf, 34, 0, &Shape::new(vec![1]), &[9]).expect("write");
        // Every strict prefix of the first frame is "need more bytes".
        let first_len = buf.len() - frame_wire_bytes(1, 1);
        for cut in 0..first_len {
            assert!(
                parse_frame(&buf[..cut]).expect("prefix parses clean").is_none(),
                "prefix of {cut} bytes should be incomplete"
            );
        }
        let (f1, used1) = parse_frame(&buf).expect("parse").expect("complete");
        assert_eq!(used1, first_len);
        assert_eq!((f1.tag, f1.seq), (33, 2));
        assert_eq!(f1.enc.payload().as_ref(), &[1, 2, 3, 4]);
        let (f2, used2) = parse_frame(&buf[used1..]).expect("parse").expect("complete");
        assert_eq!(used1 + used2, buf.len());
        assert_eq!((f2.tag, f2.seq), (34, 0));
    }

    #[test]
    fn parse_frame_rejects_corruption_in_place() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 5, 3, &Shape::new(vec![1]), &[7, 7, 7, 7]).expect("write");
        let last = buf.len() - 1;
        buf[last] ^= 0x40;
        let err = parse_frame(&buf).expect_err("corrupt");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let giant = (u32::MAX).to_le_bytes();
        let err = parse_frame(&giant).expect_err("giant length");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn back_to_back_frames_stream() {
        let mut buf = Vec::new();
        for seq in 0..3u32 {
            write_frame(&mut buf, 77, seq, &Shape::new(vec![1]), &[seq as u8]).expect("write");
        }
        let mut cursor = io::Cursor::new(buf);
        for seq in 0..3u32 {
            let f = read_frame(&mut cursor).expect("read").expect("frame");
            assert_eq!(f.seq, seq);
            assert_eq!(f.enc.payload().as_ref(), &[seq as u8]);
        }
        assert!(read_frame(&mut cursor).expect("eof").is_none());
    }
}
