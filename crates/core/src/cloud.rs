//! Cloud cost-efficiency arithmetic (paper Table 4).

use crate::estimate::{estimate, Estimate, SystemSetup};
use cgx_models::ModelId;
use cgx_simnet::MachineSpec;

/// A cloud offer: an instance plus the software configuration run on it.
#[derive(Debug, Clone)]
pub struct CloudOffer {
    /// Row label, e.g. `"Genesis CGX"`.
    pub name: String,
    /// The machine (must carry a price).
    pub machine: MachineSpec,
    /// The system configuration.
    pub setup: SystemSetup,
}

/// Cost-efficiency result: throughput, price, and items/second/$.
#[derive(Debug, Clone)]
pub struct CostEfficiency {
    /// Offer label.
    pub name: String,
    /// Estimated throughput (items/s).
    pub throughput: f64,
    /// Hourly price in USD.
    pub price_per_hour: f64,
    /// Items per second per dollar/hour.
    pub items_per_second_per_dollar: f64,
    /// Full estimate for drill-down.
    pub estimate: Estimate,
}

/// Evaluates one offer on a workload.
///
/// # Panics
///
/// Panics if the machine has no price attached.
pub fn cost_efficiency(offer: &CloudOffer, model: ModelId) -> CostEfficiency {
    let price = offer
        .machine
        .price_per_hour()
        .expect("cloud offer without a price");
    let est = estimate(&offer.machine, model, &offer.setup);
    CostEfficiency {
        name: offer.name.clone(),
        throughput: est.throughput,
        price_per_hour: price,
        items_per_second_per_dollar: est.throughput / price,
        estimate: est,
    }
}

/// The three Table 4 rows: Genesis+NCCL, AWS+NCCL, Genesis+CGX.
pub fn table4_offers() -> Vec<CloudOffer> {
    vec![
        CloudOffer {
            name: "Genesis NCCL".into(),
            machine: MachineSpec::genesis_3090(),
            setup: SystemSetup::BaselineNccl,
        },
        CloudOffer {
            name: "AWS NCCL".into(),
            machine: MachineSpec::aws_p3_8xlarge(),
            setup: SystemSetup::BaselineNccl,
        },
        CloudOffer {
            name: "Genesis CGX".into(),
            machine: MachineSpec::genesis_3090(),
            setup: SystemSetup::cgx(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_shape_cgx_doubles_value_per_dollar() {
        // Paper: Genesis+CGX yields ~2x the tokens/s/$ of AWS+NCCL and far
        // more than Genesis+NCCL.
        let rows: Vec<CostEfficiency> = table4_offers()
            .iter()
            .map(|o| cost_efficiency(o, ModelId::BertBase))
            .collect();
        let genesis_nccl = &rows[0];
        let aws = &rows[1];
        let genesis_cgx = &rows[2];
        assert!(
            genesis_cgx.items_per_second_per_dollar > 1.5 * aws.items_per_second_per_dollar,
            "cgx {} vs aws {}",
            genesis_cgx.items_per_second_per_dollar,
            aws.items_per_second_per_dollar
        );
        assert!(
            genesis_cgx.items_per_second_per_dollar
                > 2.0 * genesis_nccl.items_per_second_per_dollar
        );
        // AWS has the raw-throughput lead over uncompressed Genesis.
        assert!(aws.throughput > genesis_nccl.throughput);
        // CGX closes most of the raw-throughput gap.
        assert!(genesis_cgx.throughput > 0.6 * aws.throughput);
    }

    #[test]
    #[should_panic(expected = "cloud offer without a price")]
    fn unpriced_machine_rejected() {
        let offer = CloudOffer {
            name: "DGX".into(),
            machine: MachineSpec::dgx1(),
            setup: SystemSetup::BaselineNccl,
        };
        cost_efficiency(&offer, ModelId::BertBase);
    }
}
