//! Communication errors.
//!
//! The fault taxonomy distinguishes three severities:
//!
//! * **Transient, self-healing** — [`CommError::Corrupted`] frames are
//!   detected by the transport checksum and retransmitted; callers only see
//!   them through [`crate::fault::FaultStats`] counters.
//! * **Transient, surfaced** — [`CommError::Lost`] means the bounded
//!   retransmission budget was exhausted; [`CommError::Timeout`] means a
//!   peer stopped making progress.
//! * **Recoverable peer loss** — the communication engine folds
//!   `Disconnected`/`Timeout`/`Lost` into [`CommError::PeerLost`], the
//!   signal the elastic trainers use to run a membership epoch and continue
//!   on the shrunken world.

use std::fmt;
use std::time::Duration;

/// Errors surfaced by the shared-memory transport and the collectives
/// built on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A receive did not complete within the configured timeout —
    /// typically a peer died or deadlocked. Carries the *actual elapsed*
    /// wait, the peer rank, and how many collectives were in flight.
    Timeout {
        /// The rank we were waiting on.
        from: usize,
        /// How long we actually waited since last observable progress.
        waited: Duration,
        /// Collectives in flight on this rank when the timeout fired
        /// (0 for plain transport receives).
        in_flight: usize,
    },
    /// The peer's channel closed (worker exited or panicked).
    Disconnected {
        /// The rank whose channel closed.
        peer: usize,
    },
    /// A frame failed its checksum. Normally handled inside the transport
    /// by retransmission; surfaced only by direct frame-level APIs.
    Corrupted {
        /// The rank the corrupted frame arrived from.
        peer: usize,
        /// Human-readable description (tag/sequence context).
        detail: String,
    },
    /// A frame was never delivered despite exhausting the bounded
    /// retransmission budget.
    Lost {
        /// The rank the frame was expected from.
        peer: usize,
        /// How many retransmission requests were issued before giving up.
        retries: u32,
    },
    /// The peer's *process* is known dead: its socket reset or EOF'd
    /// mid-frame, a write to it failed, or its liveness deadline elapsed
    /// with no heartbeat. Stronger than [`CommError::Disconnected`]
    /// (which also covers orderly shutdown): the rank is gone and will
    /// not come back on this connection.
    PeerDead {
        /// The rank whose process died.
        rank: usize,
    },
    /// A peer is unrecoverably gone mid-collective. Emitted by the
    /// communication engine in place of the raw transport error so callers
    /// can run membership recovery and continue on the shrunken world.
    PeerLost {
        /// The rank that was lost (in the caller's rank space).
        peer: usize,
        /// The underlying transport error that condemned the peer.
        cause: Box<CommError>,
    },
    /// A worker thread panicked; the payload's message if extractable.
    WorkerPanicked {
        /// The rank of the panicked worker.
        rank: usize,
        /// Panic message, when it was a string payload.
        message: String,
    },
    /// More than one rank failed in a [`crate::ThreadCluster`] run; every
    /// failing rank's outcome is listed so multi-rank failures are
    /// diagnosable (a single failure is returned as itself).
    MultipleFailures {
        /// `(rank, rendered error)` for every failing rank, in rank order.
        failures: Vec<(usize, String)>,
    },
    /// A received payload did not match the expected tensor geometry.
    ShapeMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// Rendezvous/bootstrap failed before a fabric existed: the cluster
    /// never formed (bad address, handshake mismatch, a peer that never
    /// showed up). Distinct from the peer-scoped errors above because no
    /// rank can be implicated — there is no membership to shrink yet.
    Bootstrap {
        /// Human-readable description of what went wrong.
        detail: String,
    },
    /// A run was configured inconsistently (e.g. a per-layer compression
    /// list whose length disagrees with the model's parameter count).
    /// Raised before any collective starts, so no rank is implicated and
    /// no recovery applies — fix the configuration.
    InvalidConfig {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
}

impl CommError {
    /// The peer rank implicated by this error, when one is: the signal the
    /// elastic recovery path uses to seed membership agreement.
    pub fn peer(&self) -> Option<usize> {
        match self {
            CommError::Timeout { from, .. } => Some(*from),
            CommError::Disconnected { peer }
            | CommError::Corrupted { peer, .. }
            | CommError::Lost { peer, .. }
            | CommError::PeerLost { peer, .. } => Some(*peer),
            CommError::PeerDead { rank } => Some(*rank),
            _ => None,
        }
    }
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Timeout {
                from,
                waited,
                in_flight,
            } => {
                write!(
                    f,
                    "timed out after {waited:?} waiting for rank {from} ({in_flight} collectives in flight)"
                )
            }
            CommError::Disconnected { peer } => {
                write!(f, "rank {peer} disconnected")
            }
            CommError::Corrupted { peer, detail } => {
                write!(f, "corrupted frame from rank {peer}: {detail}")
            }
            CommError::Lost { peer, retries } => {
                write!(
                    f,
                    "frame from rank {peer} lost after {retries} retransmission requests"
                )
            }
            CommError::PeerDead { rank } => {
                write!(f, "rank {rank} process is dead (socket reset or liveness deadline elapsed)")
            }
            CommError::PeerLost { peer, cause } => {
                write!(f, "peer {peer} lost ({cause})")
            }
            CommError::WorkerPanicked { rank, message } => {
                write!(f, "worker {rank} panicked: {message}")
            }
            CommError::MultipleFailures { failures } => {
                write!(f, "{} ranks failed:", failures.len())?;
                for (rank, e) in failures {
                    write!(f, " [rank {rank}: {e}]")?;
                }
                Ok(())
            }
            CommError::ShapeMismatch { detail } => {
                write!(f, "payload shape mismatch: {detail}")
            }
            CommError::Bootstrap { detail } => {
                write!(f, "cluster bootstrap failed: {detail}")
            }
            CommError::InvalidConfig { detail } => {
                write!(f, "invalid configuration: {detail}")
            }
        }
    }
}

impl std::error::Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CommError::Timeout {
            from: 3,
            waited: Duration::from_secs(5),
            in_flight: 7,
        };
        assert!(e.to_string().contains("rank 3"));
        assert!(e.to_string().contains("7 collectives"));
        let e = CommError::WorkerPanicked {
            rank: 1,
            message: "boom".into(),
        };
        assert!(e.to_string().contains("boom"));
        let e = CommError::Lost { peer: 2, retries: 9 };
        assert!(e.to_string().contains("9 retransmission"));
        let e = CommError::PeerLost {
            peer: 4,
            cause: Box::new(CommError::Disconnected { peer: 4 }),
        };
        assert!(e.to_string().contains("peer 4"));
        assert!(e.to_string().contains("disconnected"));
        let e = CommError::MultipleFailures {
            failures: vec![(0, "a".into()), (2, "b".into())],
        };
        assert!(e.to_string().contains("rank 2"));
        let e = CommError::PeerDead { rank: 6 };
        assert!(e.to_string().contains("rank 6"));
        assert!(e.to_string().contains("dead"));
        let e = CommError::Bootstrap {
            detail: "rendezvous refused".into(),
        };
        assert!(e.to_string().contains("rendezvous refused"));
        assert_eq!(e.peer(), None);
    }

    #[test]
    fn peer_extraction_covers_loss_shapes() {
        assert_eq!(CommError::Disconnected { peer: 3 }.peer(), Some(3));
        assert_eq!(
            CommError::Timeout {
                from: 1,
                waited: Duration::ZERO,
                in_flight: 0
            }
            .peer(),
            Some(1)
        );
        assert_eq!(CommError::Lost { peer: 2, retries: 1 }.peer(), Some(2));
        assert_eq!(CommError::PeerDead { rank: 7 }.peer(), Some(7));
        assert_eq!(
            CommError::PeerLost {
                peer: 5,
                cause: Box::new(CommError::Disconnected { peer: 5 })
            }
            .peer(),
            Some(5)
        );
        assert_eq!(
            CommError::ShapeMismatch { detail: "x".into() }.peer(),
            None
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<CommError>();
    }
}
