//! Cross-fabric determinism of the live adaptive controller: the plan a
//! rank commits is a pure function of rank-replicated state (the
//! post-allreduce mean-gradient norms), never of the fabric it trains
//! over — so a real-socket TCP run must produce byte-identical
//! parameters *and* the identical plan sequence to the thread-backed
//! shared-memory reference, even though the two fabrics measure wildly
//! different bandwidths (bandwidth is advisory, priced but never
//! planned on).

use cgx_engine::AdaptiveTrainConfig;
use cgx_net::workload::{ElasticOptions, Workload};
use cgx_net::TcpFabric;

/// A short adaptive run that still commits several re-plans: warmup 4,
/// interval 8 over 40 steps.
fn adaptive_cfg() -> AdaptiveTrainConfig {
    AdaptiveTrainConfig::default()
}

#[test]
fn tcp_adaptive_run_matches_the_shm_reference_plans_and_bytes() {
    let world = 4;
    let work = Workload::standard(world);
    let acfg = adaptive_cfg();
    let (ref_params, ref_digest) = work
        .run_reference_shm_adaptive(None, &acfg)
        .expect("shm adaptive reference");

    let endpoints = TcpFabric::build_local(world);
    let handles: Vec<_> = endpoints
        .into_iter()
        .map(|ep| {
            let work = work;
            let acfg = acfg.clone();
            std::thread::spawn(move || {
                work.run_rank_adaptive(&ep, None, &ElasticOptions::default(), Some(acfg))
                    .expect("tcp adaptive rank")
            })
        })
        .collect();
    let runs: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("rank thread"))
        .collect();

    for (rank, run) in runs.iter().enumerate() {
        let params = run.params.as_ref().expect("rank survived");
        assert_eq!(
            *params, ref_params,
            "rank {rank} TCP params diverged from the shm reference"
        );
        assert_eq!(
            run.plan_digest,
            Some(ref_digest),
            "rank {rank} TCP plan sequence diverged from the shm reference"
        );
    }
}

#[test]
fn adaptive_run_actually_replans_and_differs_from_static() {
    // Guard against the controller silently doing nothing: the adaptive
    // run's parameters must differ from the static 4-bit run of the
    // same workload once a re-plan changes a quantizer mid-run.
    let world = 2;
    let work = Workload::standard(world);
    let static_params = work.run_reference_shm(None).expect("static reference");
    // An interval longer than the run never re-plans: the controller's
    // base plan and wire stamping are byte-compatible with the static
    // path, so the trained parameters must match it exactly.
    let idle = AdaptiveTrainConfig {
        replan_interval: 10_000,
        ..AdaptiveTrainConfig::default()
    };
    let (idle_params, idle_digest) = work
        .run_reference_shm_adaptive(None, &idle)
        .expect("idle adaptive reference");
    assert_eq!(
        idle_params, static_params,
        "an idle controller must not perturb training"
    );
    // The default interval re-plans mid-run: a committed plan swaps at
    // least one quantizer, so the trajectory (and trace) must change.
    let (adaptive_params, digest) = work
        .run_reference_shm_adaptive(None, &adaptive_cfg())
        .expect("adaptive reference");
    assert_ne!(digest, idle_digest, "no plan was ever committed");
    assert_ne!(
        adaptive_params, static_params,
        "controller committed no plan that changed training"
    );
}
