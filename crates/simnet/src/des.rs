//! Discrete-event network simulation of collective operations.
//!
//! The analytic α-β formulas in [`crate::collective`] are closed forms;
//! this module cross-validates them with a first-principles discrete-event
//! simulation: every chunk transfer is an explicit operation with data
//! dependencies, scheduled onto per-GPU egress/ingress lanes of finite
//! bandwidth. The DES captures effects the closed forms average away —
//! head-of-line blocking, dependency stalls between reduction phases,
//! lane contention — and the test suite asserts the two models agree
//! within a small factor (they do, which is the justification for using
//! the cheap closed forms in the step simulator).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One point-to-point transfer operation in the dependency graph.
#[derive(Debug, Clone)]
pub struct SendOp {
    /// Source rank (occupies its egress lane).
    pub src: usize,
    /// Destination rank (occupies its ingress lane).
    pub dst: usize,
    /// Payload bytes.
    pub bytes: f64,
    /// Indices of operations that must complete before this one may start.
    pub deps: Vec<usize>,
}

impl SendOp {
    /// Creates a transfer with no dependencies.
    pub fn new(src: usize, dst: usize, bytes: f64) -> Self {
        SendOp {
            src,
            dst,
            bytes,
            deps: Vec::new(),
        }
    }

    /// Adds dependencies.
    pub fn after(mut self, deps: impl IntoIterator<Item = usize>) -> Self {
        self.deps.extend(deps);
        self
    }
}

/// The simulated network: `n` ranks, each with one egress and one ingress
/// lane of the given bandwidth, plus a per-transfer latency α.
#[derive(Debug, Clone, Copy)]
pub struct NetworkDes {
    /// Number of ranks.
    pub ranks: usize,
    /// Per-lane bandwidth, bytes/s.
    pub lane_bw: f64,
    /// Per-transfer latency, seconds.
    pub alpha: f64,
}

#[derive(Debug, PartialEq)]
struct Completion {
    time: f64,
    op: usize,
}

impl Eq for Completion {}

impl Ord for Completion {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on time (ties by op index for determinism).
        other
            .time
            .partial_cmp(&self.time)
            .expect("finite times")
            .then(other.op.cmp(&self.op))
    }
}

impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl NetworkDes {
    /// Creates a network.
    ///
    /// # Panics
    ///
    /// Panics on zero ranks or non-positive bandwidth.
    pub fn new(ranks: usize, lane_bw: f64, alpha: f64) -> Self {
        assert!(ranks > 0, "need at least one rank");
        assert!(lane_bw > 0.0, "bandwidth must be positive");
        assert!(alpha >= 0.0, "alpha must be non-negative");
        NetworkDes {
            ranks,
            lane_bw,
            alpha,
        }
    }

    /// Executes the operation graph; returns per-op completion times and
    /// the makespan.
    ///
    /// Scheduling: an op becomes *ready* when all dependencies completed;
    /// ready ops start as soon as both the source egress lane and the
    /// destination ingress lane are free (FIFO per lane, deterministic by
    /// op index).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range ranks, self-sends, dependency cycles, or
    /// forward dependencies that would deadlock.
    pub fn run(&self, ops: &[SendOp]) -> (Vec<f64>, f64) {
        for (i, op) in ops.iter().enumerate() {
            assert!(
                op.src < self.ranks && op.dst < self.ranks,
                "op {i}: bad rank"
            );
            assert!(op.src != op.dst, "op {i}: self-send");
        }
        let n_ops = ops.len();
        let mut remaining_deps: Vec<usize> = ops.iter().map(|o| o.deps.len()).collect();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n_ops];
        for (i, op) in ops.iter().enumerate() {
            for &d in &op.deps {
                assert!(d < n_ops, "op {i}: dependency {d} out of range");
                dependents[d].push(i);
            }
        }
        let mut egress_free = vec![0.0f64; self.ranks];
        let mut ingress_free = vec![0.0f64; self.ranks];
        let mut ready_at = vec![f64::INFINITY; n_ops];
        let mut done_at = vec![f64::NEG_INFINITY; n_ops];
        let mut scheduled = vec![false; n_ops];
        let mut ready: Vec<usize> = Vec::new();
        for (i, r) in remaining_deps.iter().enumerate() {
            if *r == 0 {
                ready_at[i] = 0.0;
                ready.push(i);
            }
        }
        let mut heap: BinaryHeap<Completion> = BinaryHeap::new();
        let mut completed = 0usize;
        let mut makespan = 0.0f64;
        loop {
            // Schedule every ready, unscheduled op (FIFO by index).
            ready.sort_unstable();
            for &i in &ready {
                if scheduled[i] {
                    continue;
                }
                let op = &ops[i];
                let start = ready_at[i]
                    .max(egress_free[op.src])
                    .max(ingress_free[op.dst]);
                // Bandwidth occupies the lanes; latency rides in flight
                // (transfers pipeline, so α does not serialize a lane).
                let lane_busy_until = start + op.bytes / self.lane_bw;
                let end = lane_busy_until + self.alpha;
                egress_free[op.src] = lane_busy_until;
                ingress_free[op.dst] = lane_busy_until;
                scheduled[i] = true;
                heap.push(Completion { time: end, op: i });
            }
            ready.clear();
            let Some(Completion { time, op }) = heap.pop() else {
                break;
            };
            done_at[op] = time;
            makespan = makespan.max(time);
            completed += 1;
            for &d in &dependents[op] {
                remaining_deps[d] -= 1;
                if remaining_deps[d] == 0 {
                    ready_at[d] = time;
                    ready.push(d);
                }
            }
        }
        assert_eq!(completed, n_ops, "dependency cycle: not all ops ran");
        (done_at, makespan)
    }

    /// Builds the operation graph of a Scatter-Reduce-Allgather Allreduce
    /// of `total_bytes` (wire) and runs it, returning the makespan.
    pub fn sra_allreduce(&self, total_bytes: f64) -> f64 {
        let n = self.ranks;
        if n == 1 {
            return 0.0;
        }
        let chunk = total_bytes / n as f64;
        let mut ops = Vec::new();
        // Phase 1: rank i sends chunk j to rank j (all j != i).
        // op index = i * (n-1) + position.
        let mut phase1_of_dst: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in 0..n {
            for (j, inbox) in phase1_of_dst.iter_mut().enumerate() {
                if j == i {
                    continue;
                }
                inbox.push(ops.len());
                ops.push(SendOp::new(i, j, chunk));
            }
        }
        // Phase 2: rank j broadcasts its aggregated chunk after receiving
        // all of phase 1 addressed to it.
        for (j, inbox) in phase1_of_dst.iter().enumerate() {
            for k in 0..n {
                if k == j {
                    continue;
                }
                ops.push(SendOp::new(j, k, chunk).after(inbox.iter().copied()));
            }
        }
        self.run(&ops).1
    }

    /// Builds and runs a chunked Ring Allreduce of `total_bytes` (wire),
    /// returning the makespan.
    pub fn ring_allreduce(&self, total_bytes: f64) -> f64 {
        let n = self.ranks;
        if n == 1 {
            return 0.0;
        }
        let chunk = total_bytes / n as f64;
        let mut ops: Vec<SendOp> = Vec::new();
        // 2(n-1) rounds; in round s, every rank sends one chunk to its right
        // neighbour, and must have completed its round-(s-1) *receive*.
        let mut prev_recv_op: Vec<Option<usize>> = vec![None; n]; // op idx whose dst == rank
        for _s in 0..2 * (n - 1) {
            let mut this_round: Vec<Option<usize>> = vec![None; n];
            for (i, prev) in prev_recv_op.iter().enumerate() {
                let right = (i + 1) % n;
                let mut op = SendOp::new(i, right, chunk);
                if let Some(p) = prev {
                    op = op.after([*p]);
                }
                this_round[right] = Some(ops.len());
                ops.push(op);
            }
            prev_recv_op = this_round;
        }
        self.run(&ops).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::{allreduce_time, CommCost, ReductionScheme};

    #[test]
    fn single_transfer_takes_alpha_plus_bytes_over_bw() {
        let net = NetworkDes::new(2, 1e9, 10e-6);
        let (done, makespan) = net.run(&[SendOp::new(0, 1, 1e6)]);
        assert!((done[0] - (10e-6 + 1e-3)).abs() < 1e-12);
        assert_eq!(makespan, done[0]);
    }

    #[test]
    fn same_source_transfers_serialize() {
        let net = NetworkDes::new(3, 1e9, 0.0);
        let (done, _) = net.run(&[SendOp::new(0, 1, 1e6), SendOp::new(0, 2, 1e6)]);
        assert!((done[0] - 1e-3).abs() < 1e-12);
        assert!((done[1] - 2e-3).abs() < 1e-12, "egress lane must serialize");
    }

    #[test]
    fn different_lanes_run_concurrently() {
        let net = NetworkDes::new(4, 1e9, 0.0);
        let (done, makespan) = net.run(&[SendOp::new(0, 1, 1e6), SendOp::new(2, 3, 1e6)]);
        assert!((done[0] - 1e-3).abs() < 1e-12);
        assert!((done[1] - 1e-3).abs() < 1e-12);
        assert!((makespan - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn dependencies_are_respected() {
        let net = NetworkDes::new(4, 1e9, 0.0);
        let ops = vec![
            SendOp::new(0, 1, 1e6),
            SendOp::new(2, 3, 1e6).after([0]), // waits for op 0 despite free lanes
        ];
        let (done, _) = net.run(&ops);
        assert!(done[1] >= done[0] + 1e-3 - 1e-12);
    }

    #[test]
    #[should_panic(expected = "self-send")]
    fn self_send_rejected() {
        NetworkDes::new(2, 1e9, 0.0).run(&[SendOp::new(1, 1, 10.0)]);
    }

    #[test]
    fn des_sra_matches_analytic_within_factor_two() {
        for n in [2usize, 4, 8] {
            for bytes in [1e6, 100e6] {
                let bw = 2e9;
                let net = NetworkDes::new(n, bw, 10e-6);
                let des = net.sra_allreduce(bytes);
                let analytic = allreduce_time(
                    ReductionScheme::ScatterReduceAllgather,
                    n,
                    bytes as usize,
                    CommCost::new(bw, 10e-6),
                );
                let ratio = des / analytic;
                assert!(
                    (0.5..2.0).contains(&ratio),
                    "n={n} bytes={bytes}: DES {des:.4} vs analytic {analytic:.4}"
                );
            }
        }
    }

    #[test]
    fn des_ring_matches_analytic_within_factor_two() {
        for n in [2usize, 4, 8] {
            let bw = 2e9;
            let bytes = 50e6;
            let net = NetworkDes::new(n, bw, 10e-6);
            let des = net.ring_allreduce(bytes);
            let analytic = allreduce_time(
                ReductionScheme::Ring,
                n,
                bytes as usize,
                CommCost::new(bw, 10e-6),
            );
            let ratio = des / analytic;
            assert!(
                (0.5..2.0).contains(&ratio),
                "n={n}: DES {des:.4} vs analytic {analytic:.4}"
            );
        }
    }

    #[test]
    fn des_times_scale_linearly_in_bytes() {
        let net = NetworkDes::new(8, 1e9, 0.0);
        let t1 = net.sra_allreduce(10e6);
        let t2 = net.sra_allreduce(20e6);
        assert!((t2 / t1 - 2.0).abs() < 0.05, "{t1} vs {t2}");
    }

    #[test]
    fn ring_latency_grows_with_ranks_sra_does_not() {
        // The latency-term difference that makes SRA win (Figure 10): at
        // tiny payloads, ring pays 2(n-1) alphas on the critical path.
        let alpha = 1e-3;
        let tiny = 8.0 * 64.0; // 64 bytes/rank
        let sra8 = NetworkDes::new(8, 1e9, alpha).sra_allreduce(tiny);
        let ring8 = NetworkDes::new(8, 1e9, alpha).ring_allreduce(tiny);
        assert!(
            ring8 > 1.5 * sra8,
            "ring {ring8:.4} should pay far more latency than SRA {sra8:.4}"
        );
    }

    #[test]
    fn single_rank_is_free() {
        let net = NetworkDes::new(1, 1e9, 1e-3);
        assert_eq!(net.sra_allreduce(1e9), 0.0);
        assert_eq!(net.ring_allreduce(1e9), 0.0);
    }
}
