//! Figure 8: the PCIe topology of the RTX machines (and, for contrast, the
//! DGX-1 NVLink hypercube mesh), with the measured-style GPU-to-GPU
//! bandwidth matrix and the ring-contention analysis that explains the
//! Allreduce bandwidth collapse.

use cgx_bench::{note, render_table};
use cgx_simnet::MachineSpec;

fn main() {
    for machine in [MachineSpec::rtx3090(), MachineSpec::dgx1()] {
        let topo = machine.topology();
        println!("{}", topo.render_ascii());
        let matrix = topo.bandwidth_matrix();
        let n = matrix.len();
        let headers: Vec<String> = std::iter::once("GB/s".to_string())
            .chain((0..n).map(|j| format!("GPU{j}")))
            .collect();
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = (0..n)
            .map(|i| {
                std::iter::once(format!("GPU{i}"))
                    .chain((0..n).map(|j| {
                        if i == j {
                            "-".to_string()
                        } else {
                            format!("{:.0}", matrix[i][j] / 1e9)
                        }
                    }))
                    .collect()
            })
            .collect();
        print!(
            "{}",
            render_table(
                &format!("{}: pairwise GPU bandwidth matrix", machine.name()),
                &header_refs,
                &rows,
            )
        );
        println!(
            "ring contention: per-flow {:.2} GB/s -> Allreduce algbw {:.2} GB/s\n",
            topo.ring_flow_bandwidth() / 1e9,
            topo.ring_allreduce_algbw() / 1e9,
        );
    }
    note(
        "paper: 13-16 GB/s pairwise on the 3090 box, ~1 GB/s Allreduce; NVLink machines ~100 GB/s.",
    );
}
