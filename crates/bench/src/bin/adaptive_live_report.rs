//! Live adaptive-compression report: the controller running *inside real
//! training*, not the offline planner.
//!
//! Two sections, both emitted into `BENCH_adaptive.json`:
//!
//! 1. **Real training** — the standard Gaussian-mixture MLP workload on
//!    the thread-backed fabric, static 4-bit CGX vs the live
//!    [`AdaptiveTrainConfig`] controller (choice set `{2,3,4}`, so every
//!    committed plan can only shrink the wire). Records measured wire
//!    bytes per worker, committed re-plans, the plan-trace digest, and
//!    wall time; asserts the controller re-planned at least twice and
//!    cut real wire bytes.
//! 2. **Zoo live sessions** — [`live_adaptive_session`] drives the same
//!    controller over the paper's model zoo with closed-form gradient
//!    statistics; asserts the headline: at least one transformer model
//!    saves ≥20% integrated wire traffic vs uniform static 4-bit.
//!
//! Regression-guard mode mirrors `net_report`: when
//! `CGX_ADAPTIVE_GUARD` names a baseline `BENCH_adaptive.json`, the run
//! fails if the adaptive training step time exceeds the baseline by
//! more than `CGX_ADAPTIVE_GUARD_TOLERANCE` (default 1.5x), or if the
//! zoo wire-ratio regressed above its recorded value by more than the
//! same factor.

use cgx_core::live_adaptive_session;
use cgx_engine::data::GaussianMixture;
use cgx_engine::nn::Mlp;
use cgx_engine::{
    train_data_parallel, AdaptiveTrainConfig, LayerCompression, TrainConfig, TrainReport,
};
use cgx_models::{ModelId, ModelSpec};
use cgx_tensor::Rng;
use std::time::{Duration, Instant};

const WORKERS: usize = 4;
const STEPS: usize = 60;
const ZOO_STEPS: usize = 64;

struct TrainRow {
    label: &'static str,
    bytes_per_worker: usize,
    replans: usize,
    plan_digest: Option<u64>,
    wall: Duration,
}

fn train(adaptive: Option<AdaptiveTrainConfig>, label: &'static str) -> TrainRow {
    let task = GaussianMixture::new(4, 16, 1.5);
    let mut rng = Rng::seed_from_u64(53);
    let model = Mlp::new(&mut rng, &[16, 64, 4]);
    let cfg = TrainConfig {
        compression: LayerCompression::cgx_default(),
        adaptive,
        ..TrainConfig::new(WORKERS, STEPS)
    };
    let t = task.clone();
    let start = Instant::now();
    let (_, report): (_, TrainReport) =
        train_data_parallel(&model, move |r| t.sample_batch(r, 8), &cfg).expect("training run");
    let wall = start.elapsed();
    TrainRow {
        label,
        bytes_per_worker: report.bytes_sent_per_worker,
        replans: report.adaptive.as_ref().map_or(0, |t| t.replans()),
        plan_digest: report.adaptive.as_ref().map(|t| t.digest()),
        wall,
    }
}

struct ZooRow {
    model: &'static str,
    transformer: bool,
    replans: usize,
    wire_ratio: f64,
    final_bits_per_element: f64,
}

fn zoo_session(id: ModelId) -> ZooRow {
    let spec = ModelSpec::build(id);
    let report = live_adaptive_session(&spec, &AdaptiveTrainConfig::default(), ZOO_STEPS, 7);
    ZooRow {
        model: id.name(),
        transformer: matches!(id, ModelId::TransformerXl | ModelId::BertBase | ModelId::Gpt2),
        replans: report.trace.replans(),
        wire_ratio: report.wire_ratio_vs_static4(),
        final_bits_per_element: report
            .trace
            .records
            .last()
            .map_or(4.25, |r| r.nominal_bits_per_element),
    }
}

/// Pulls a `"key": <float>` out of our own hand-built JSON.
fn baseline_field(json: &str, key: &str) -> Option<f64> {
    let at = json.find(&format!("\"{key}\": "))?;
    let digits: String = json[at + key.len() + 4..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    digits.parse().ok()
}

fn main() {
    // Snapshot the guard baseline before overwriting the report file.
    let guard = std::env::var("CGX_ADAPTIVE_GUARD").ok().map(|path| {
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("CGX_ADAPTIVE_GUARD baseline {path}: {e}"));
        (path, baseline)
    });

    // Section 1: real training on the thread fabric.
    let static4 = train(None, "static_q4");
    let acfg = AdaptiveTrainConfig {
        bit_choices: vec![2, 3, 4],
        ..AdaptiveTrainConfig::default()
    };
    let adaptive = train(Some(acfg), "adaptive");
    let train_saving = 1.0 - adaptive.bytes_per_worker as f64 / static4.bytes_per_worker as f64;
    println!(
        "training: static {} B/worker, adaptive {} B/worker ({} re-plans, {:.1}% wire saved)",
        static4.bytes_per_worker,
        adaptive.bytes_per_worker,
        adaptive.replans,
        train_saving * 100.0
    );
    assert!(
        adaptive.replans >= 2,
        "controller committed only {} re-plans mid-run",
        adaptive.replans
    );
    assert!(
        adaptive.bytes_per_worker < static4.bytes_per_worker,
        "live adaptation saved no real wire bytes"
    );

    // Section 2: zoo live sessions.
    let zoo: Vec<ZooRow> = [
        ModelId::ResNet50,
        ModelId::Vgg16,
        ModelId::VitBase,
        ModelId::TransformerXl,
        ModelId::BertBase,
        ModelId::Gpt2,
    ]
    .into_iter()
    .map(zoo_session)
    .collect();
    for row in &zoo {
        println!(
            "zoo {}: wire ratio {:.3} vs static 4-bit, {} re-plans, final {:.2} bits/elem",
            row.model, row.wire_ratio, row.replans, row.final_bits_per_element
        );
    }
    let best_transformer = zoo
        .iter()
        .filter(|r| r.transformer)
        .map(|r| r.wire_ratio)
        .fold(f64::INFINITY, f64::min);
    assert!(
        best_transformer <= 0.8,
        "headline: no transformer saved >=20% wire traffic (best ratio {best_transformer:.3})"
    );

    // Emit BENCH_adaptive.json (hand-rolled, like every other report).
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"workers\": {WORKERS},\n  \"steps\": {STEPS},\n  \"zoo_steps\": {ZOO_STEPS},\n"
    ));
    json.push_str("  \"training\": [\n");
    for (i, row) in [&static4, &adaptive].iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"wire_bytes_per_worker\": {}, \"replans\": {}, \"plan_digest\": {}, \"step_us\": {}}}{}\n",
            row.label,
            row.bytes_per_worker,
            row.replans,
            row.plan_digest
                .map_or("null".to_string(), |d| d.to_string()),
            (row.wall.as_micros() as usize) / STEPS,
            if i == 0 { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"training_wire_saving\": {train_saving:.4},\n"
    ));
    json.push_str("  \"zoo\": [\n");
    for (i, row) in zoo.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"model\": \"{}\", \"transformer\": {}, \"wire_ratio_vs_static4\": {:.4}, \"replans\": {}, \"final_bits_per_element\": {:.4}}}{}\n",
            row.model,
            row.transformer,
            row.wire_ratio,
            row.replans,
            row.final_bits_per_element,
            if i + 1 < zoo.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_adaptive.json", &json).expect("write BENCH_adaptive.json");
    print!("{json}");

    if let Some((path, baseline)) = guard {
        let tolerance: f64 = std::env::var("CGX_ADAPTIVE_GUARD_TOLERANCE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1.5);
        // Step-time regression on the adaptive training run: the live
        // controller must stay cheap (re-planning is off the hot path).
        let adaptive_us = (adaptive.wall.as_micros() as usize / STEPS) as f64;
        let base_rows: Vec<&str> = baseline.split('{').collect();
        let base_us = base_rows
            .iter()
            .find(|r| r.contains("\"mode\": \"adaptive\""))
            .and_then(|r| baseline_field(r, "step_us"))
            .unwrap_or_else(|| panic!("baseline {path} has no adaptive step_us"));
        let limit = base_us * tolerance;
        println!("guard: adaptive step {adaptive_us}us vs baseline {base_us}us (limit {limit:.0}us)");
        assert!(
            adaptive_us <= limit,
            "adaptive step regression: {adaptive_us}us > {tolerance}x baseline {base_us}us"
        );
        // Wire-ratio regression on the zoo headline.
        let base_ratio = baseline_field(&baseline, "training_wire_saving")
            .unwrap_or_else(|| panic!("baseline {path} has no training_wire_saving"));
        assert!(
            train_saving >= base_ratio / tolerance,
            "training wire saving regressed: {train_saving:.4} vs baseline {base_ratio:.4}"
        );
        println!("guard: OK (tolerance {tolerance}x)");
    }
}
