//! End-to-end QNCCL training: the full DDP-over-quantized-primitives loop
//! (fused buffer, uniform ring quantization) vs CGX's layer-wise path.
//!
//! Paper Section 6: QNCCL "has higher accuracy degradation because it
//! cannot perform layer-wise compression"; with the bucket size reduced to
//! 128 it recovers within 1%.

use cgx_collectives::ThreadCluster;
use cgx_engine::data::GaussianMixture;
use cgx_engine::nn::Mlp;
use cgx_engine::{train_data_parallel, LayerCompression, SgdMomentum, TrainConfig};
use cgx_qnccl::{FusedBuffer, QncclRing};
use cgx_tensor::{Rng, Tensor};

const WORKERS: usize = 4;
const STEPS: usize = 300;

fn eval(model: &Mlp, task: &GaussianMixture) -> f64 {
    let mut rng = Rng::seed_from_u64(424_242);
    let (x, y) = task.sample_batch(&mut rng, 2048);
    model.accuracy(&x, &y)
}

/// Trains with the QNCCL pipeline: every step fuses all gradients into one
/// buffer and all-reduces it through the uniformly-quantized ring.
fn train_qnccl(task: &GaussianMixture, model: &Mlp, bits: u32, bucket: usize) -> Mlp {
    let outputs = ThreadCluster::run(WORKERS, |t| {
        let mut local = model.clone();
        let mut data_rng = Rng::seed_from_u64(0xD00D + t.rank() as u64 * 7919);
        let mut comp_rng = Rng::seed_from_u64(0xC0FFEE + t.rank() as u64 * 104_729);
        let mut ring = QncclRing::new(bits, bucket);
        let mut opt = SgdMomentum::new(0.2, 0.9, 0.0);
        for _ in 0..STEPS {
            let (x, y) = task.sample_batch(&mut data_rng, 16);
            let (_, grads) = local.loss_and_grads(&x, &y);
            let fused = FusedBuffer::pack(&grads);
            let mean = ring
                .allreduce(&t, &fused, &mut comp_rng)
                .expect("qnccl allreduce");
            let mean_grads: Vec<Tensor> = mean.unpack();
            opt.step(local.params_mut(), &mean_grads);
        }
        local
    })
    .expect("cluster");
    outputs.into_iter().next().expect("rank 0")
}

#[test]
fn qnccl_with_small_buckets_recovers_accuracy() {
    let task = GaussianMixture::new(6, 12, 1.2);
    let mut rng = Rng::seed_from_u64(5);
    let model = Mlp::new(&mut rng, &[12, 32, 6]);
    // FP32 data-parallel reference via the engine.
    let cfg = TrainConfig {
        lr: 0.2,
        compression: LayerCompression::none(),
        ..TrainConfig::new(WORKERS, STEPS)
    };
    let t2 = task.clone();
    let (baseline, _) = train_data_parallel(&model, move |r| t2.sample_batch(r, 16), &cfg).unwrap();
    let base_acc = eval(&baseline, &task);
    let qnccl_acc = eval(&train_qnccl(&task, &model, 4, 128), &task);
    assert!(
        qnccl_acc > base_acc - 0.01,
        "qnccl(4b,128) {qnccl_acc} vs baseline {base_acc}"
    );
}

#[test]
fn qnccl_replicas_stay_consistent() {
    // The uniform ring still guarantees bit-exact consensus, so replicas
    // cannot drift even though accuracy suffers at coarse settings.
    let task = GaussianMixture::new(4, 8, 1.5);
    let mut rng = Rng::seed_from_u64(9);
    let model = Mlp::new(&mut rng, &[8, 16, 4]);
    let replicas = ThreadCluster::run(WORKERS, |t| {
        let mut local = model.clone();
        let mut data_rng = Rng::seed_from_u64(100 + t.rank() as u64);
        let mut comp_rng = Rng::seed_from_u64(200 + t.rank() as u64);
        let mut ring = QncclRing::new(4, 512);
        let mut opt = SgdMomentum::new(0.1, 0.9, 0.0);
        for _ in 0..25 {
            let (x, y) = task.sample_batch(&mut data_rng, 8);
            let (_, grads) = local.loss_and_grads(&x, &y);
            let fused = FusedBuffer::pack(&grads);
            let mean = ring.allreduce(&t, &fused, &mut comp_rng).unwrap();
            opt.step(local.params_mut(), &mean.unpack());
        }
        local
    })
    .unwrap();
    for r in &replicas[1..] {
        for (a, b) in r.params().iter().zip(replicas[0].params()) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }
}

#[test]
fn coarse_buckets_degrade_more_than_layerwise_cgx() {
    // Same bit-width, but a blob-level bucket (4096) that straddles layers
    // vs CGX's layer-wise 4-bit with filters: the layer-wise path must be
    // at least as accurate.
    let task = GaussianMixture::new(6, 12, 1.2);
    let mut rng = Rng::seed_from_u64(5);
    let model = Mlp::new(&mut rng, &[12, 32, 6]);
    let cfg = TrainConfig {
        lr: 0.2,
        compression: LayerCompression::cgx_default(),
        ..TrainConfig::new(WORKERS, STEPS)
    };
    let t2 = task.clone();
    let (cgx, _) = train_data_parallel(&model, move |r| t2.sample_batch(r, 16), &cfg).unwrap();
    let cgx_acc = eval(&cgx, &task);
    let coarse_acc = eval(&train_qnccl(&task, &model, 2, 4096), &task);
    assert!(
        cgx_acc >= coarse_acc,
        "layer-wise {cgx_acc} vs coarse blob {coarse_acc}"
    );
}
