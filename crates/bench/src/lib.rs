#![warn(missing_docs)]
//! Shared helpers for the benchmark harness binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the CGX
//! paper; this crate provides the common table formatting so their output
//! reads like the paper's artifacts. See `DESIGN.md` for the experiment
//! index and `EXPERIMENTS.md` for paper-vs-measured results.

use std::fmt::Write as _;

/// Renders an ASCII table with a title, headers, and rows.
///
/// # Examples
///
/// ```
/// let t = cgx_bench::render_table(
///     "demo",
///     &["name", "value"],
///     &[vec!["a".into(), "1".into()]],
/// );
/// assert!(t.contains("| a"));
/// assert!(t.contains("demo"));
/// ```
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch in table '{title}'");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let line = |widths: &[usize]| {
        let mut s = String::from("+");
        for w in widths {
            s.push_str(&"-".repeat(w + 2));
            s.push('+');
        }
        s
    };
    let _ = writeln!(out, "{}", line(&widths));
    let mut header = String::from("|");
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(header, " {h:<w$} |");
    }
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "{}", line(&widths));
    for row in rows {
        let mut r = String::from("|");
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(r, " {cell:<w$} |");
        }
        let _ = writeln!(out, "{r}");
    }
    let _ = writeln!(out, "{}", line(&widths));
    out
}

/// Formats a throughput value compactly (`1.23k`, `45.6k`, `789`).
pub fn fmt_items(v: f64) -> String {
    if v >= 100_000.0 {
        format!("{:.0}k", v / 1000.0)
    } else if v >= 10_000.0 {
        format!("{:.1}k", v / 1000.0)
    } else if v >= 1000.0 {
        format!("{:.2}k", v / 1000.0)
    } else {
        format!("{v:.0}")
    }
}

/// Formats seconds as milliseconds with 1 decimal.
pub fn fmt_ms(seconds: f64) -> String {
    format!("{:.1} ms", seconds * 1000.0)
}

/// Formats a 0..1 fraction as a percentage.
pub fn fmt_pct(frac: f64) -> String {
    format!("{:.0}%", frac * 100.0)
}

/// Prints a free-form note line under a table.
pub fn note(text: &str) {
    println!("   note: {text}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_pads_cells() {
        let t = render_table(
            "t",
            &["a", "long-header"],
            &[
                vec!["xxxxxx".into(), "1".into()],
                vec!["y".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        // All body lines have identical width.
        let widths: Vec<usize> = lines[1..].iter().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{t}");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_panic() {
        render_table("t", &["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_items(850.0), "850");
        assert_eq!(fmt_items(2900.0), "2.90k");
        assert_eq!(fmt_items(38_700.0), "38.7k");
        assert_eq!(fmt_items(260_000.0), "260k");
        assert_eq!(fmt_ms(0.0376), "37.6 ms");
        assert_eq!(fmt_pct(0.895), "90%");
    }
}
