//! Accuracy recovery under real compressed training (paper Table 3 at
//! miniature scale): train the same model data-parallel with FP32
//! gradients, CGX 4-bit quantization, and an over-aggressive 2-bit
//! configuration, and compare final accuracy.
//!
//! ```sh
//! cargo run --release --example accuracy_recovery
//! ```

use cgx::compress::CompressionScheme;
use cgx::engine::data::GaussianMixture;
use cgx::engine::nn::Mlp;
use cgx::engine::{train_data_parallel, LayerCompression, TrainConfig};
use cgx::tensor::Rng;

fn main() {
    let task = GaussianMixture::new(6, 12, 1.2);
    let mut rng = Rng::seed_from_u64(5);
    let model = Mlp::new(&mut rng, &[12, 32, 6]);

    let configs: Vec<(&str, LayerCompression)> = vec![
        ("fp32 baseline", LayerCompression::none()),
        ("CGX 4-bit + filters", LayerCompression::cgx_default()),
        (
            "uniform 2-bit, no filters (too aggressive)",
            LayerCompression::uniform(CompressionScheme::Qsgd {
                bits: 2,
                bucket_size: 2048,
            }),
        ),
    ];
    for (name, compression) in configs {
        let cfg = TrainConfig {
            lr: 0.2,
            compression,
            ..TrainConfig::new(4, 300)
        };
        let t = task.clone();
        let (trained, report) =
            train_data_parallel(&model, move |r| t.sample_batch(r, 16), &cfg).expect("training");
        let mut eval_rng = Rng::seed_from_u64(777);
        let (x, y) = task.sample_batch(&mut eval_rng, 2048);
        println!(
            "{name:<45} accuracy {:>5.1}%   wire {:>8} bytes/worker   final loss {:.3}",
            trained.accuracy(&x, &y) * 100.0,
            report.bytes_sent_per_worker,
            report.losses.last().unwrap(),
        );
    }
    println!("\nCGX matches the baseline within the paper's 1% tolerance at ~7.5x less traffic;");
    println!("pushing to uniform 2-bit without filters visibly degrades accuracy.");
}
