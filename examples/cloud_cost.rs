//! Cloud cost efficiency (paper Table 4): is a cheap commodity-GPU cloud
//! instance with CGX a better deal than a V100 instance?
//!
//! ```sh
//! cargo run --release --example cloud_cost
//! ```

use cgx::core::cloud::{cost_efficiency, table4_offers};
use cgx::models::ModelId;

fn main() {
    println!("BERT question-answering, tokens/second per dollar-hour:\n");
    let rows: Vec<_> = table4_offers()
        .iter()
        .map(|o| cost_efficiency(o, ModelId::BertBase))
        .collect();
    for r in &rows {
        println!(
            "  {:<14} {:>8.0} tok/s   ${:>5.1}/h   {:>6.0} tok/s/$",
            r.name, r.throughput, r.price_per_hour, r.items_per_second_per_dollar,
        );
    }
    let aws = &rows[1];
    let cgx = &rows[2];
    println!(
        "\nGenesis+CGX delivers {:.0}% of AWS's raw throughput at {:.1}x its cost efficiency.",
        100.0 * cgx.throughput / aws.throughput,
        cgx.items_per_second_per_dollar / aws.items_per_second_per_dollar,
    );
}
