//! GPU memory accounting.
//!
//! The paper attributes part of the RTX 2080 Ti's throughput deficit to
//! memory: "The 2080 GPUs have lower throughput due to both lower memory,
//! limiting its maximum batch size, as well as lower computational power."
//! This module estimates the training footprint — weights, gradients,
//! optimizer state, activations — and the maximum per-GPU batch a model
//! fits at.

use crate::hardware::GpuModel;
use cgx_models::{ModelSpec, Precision};

/// Which optimizer's state is resident (paper recipes: SGD+momentum for
/// CNNs, Adam for Transformers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimizerKind {
    /// One extra fp32 tensor (velocity).
    SgdMomentum,
    /// Two extra fp32 tensors (first/second moments).
    Adam,
}

impl OptimizerKind {
    /// The recipe optimizer for a model (Transformers train with Adam).
    pub fn for_model(model: &ModelSpec) -> Self {
        use cgx_models::ModelId::*;
        match model.id() {
            ResNet50 | Vgg16 => OptimizerKind::SgdMomentum,
            VitBase | TransformerXl | BertBase | Gpt2 => OptimizerKind::Adam,
        }
    }

    fn state_bytes_per_param(self) -> usize {
        match self {
            OptimizerKind::SgdMomentum => 4,
            OptimizerKind::Adam => 8,
        }
    }
}

/// Memory the framework and CUDA context reserve regardless of the model.
pub const FRAMEWORK_RESERVE_MB: f64 = 1500.0;

/// Estimated resident training memory in MB for a per-GPU batch size.
pub fn training_memory_mb(model: &ModelSpec, batch: usize, optimizer: OptimizerKind) -> f64 {
    let params = model.param_count() as f64;
    let weight_bytes = match model.precision() {
        // AMP keeps fp32 master weights plus an fp16 copy.
        Precision::AmpLevel1 | Precision::AmpLevel2 => 6.0,
        Precision::Fp32 => 4.0,
    };
    let grad_bytes = model.precision().bytes_per_grad_element() as f64;
    let opt_bytes = optimizer.state_bytes_per_param() as f64;
    let static_mb = params * (weight_bytes + grad_bytes + opt_bytes) / 1e6;
    static_mb + batch as f64 * model.activation_mb_per_sample() + FRAMEWORK_RESERVE_MB
}

/// The largest per-GPU batch that fits in `gpu`'s memory (0 if even the
/// static footprint does not fit).
pub fn max_batch(model: &ModelSpec, gpu: GpuModel) -> usize {
    let capacity_mb = gpu.spec().ram_gb as f64 * 1024.0;
    let optimizer = OptimizerKind::for_model(model);
    if training_memory_mb(model, 1, optimizer) > capacity_mb {
        return 0;
    }
    // Monotone in batch: binary search.
    let mut lo = 1usize;
    let mut hi = 65_536usize;
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if training_memory_mb(model, mid, optimizer) <= capacity_mb {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

/// Whether the paper's recipe batch fits on this GPU.
pub fn recipe_batch_fits(model: &ModelSpec, gpu: GpuModel) -> bool {
    max_batch(model, gpu) >= model.per_gpu_batch()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgx_models::ModelId;

    #[test]
    fn memory_grows_linearly_with_batch() {
        let m = ModelSpec::build(ModelId::ResNet50);
        let a = training_memory_mb(&m, 8, OptimizerKind::SgdMomentum);
        let b = training_memory_mb(&m, 16, OptimizerKind::SgdMomentum);
        let c = training_memory_mb(&m, 24, OptimizerKind::SgdMomentum);
        assert!((c - b - (b - a)).abs() < 1e-6, "linear in batch");
        assert!(b > a);
    }

    #[test]
    fn adam_costs_more_than_sgd() {
        let m = ModelSpec::build(ModelId::VitBase);
        assert!(
            training_memory_mb(&m, 8, OptimizerKind::Adam)
                > training_memory_mb(&m, 8, OptimizerKind::SgdMomentum)
        );
    }

    #[test]
    fn recipe_batches_fit_on_their_evaluation_gpus() {
        // The paper ran all six models on the 3090 box (24 GB).
        for id in ModelId::all() {
            let m = ModelSpec::build(id);
            assert!(
                recipe_batch_fits(&m, GpuModel::Rtx3090),
                "{id}: batch {} should fit 24 GB (max {})",
                m.per_gpu_batch(),
                max_batch(&m, GpuModel::Rtx3090),
            );
        }
    }

    #[test]
    fn the_2080_memory_limit_bites() {
        // Paper: "2080 GPUs have lower throughput due to ... lower memory,
        // limiting its maximum batch size". The 10 GB card cannot run the
        // ViT recipe batch the 24 GB card uses.
        let vit = ModelSpec::build(ModelId::VitBase);
        let on_2080 = max_batch(&vit, GpuModel::Rtx2080Ti);
        let on_3090 = max_batch(&vit, GpuModel::Rtx3090);
        assert!(
            on_2080 < vit.per_gpu_batch(),
            "2080 max {} vs recipe {}",
            on_2080,
            vit.per_gpu_batch()
        );
        assert!(on_3090 >= vit.per_gpu_batch());
    }

    #[test]
    fn max_batch_is_consistent_with_footprint() {
        let m = ModelSpec::build(ModelId::BertBase);
        for gpu in GpuModel::all() {
            let b = max_batch(&m, gpu);
            let cap = gpu.spec().ram_gb as f64 * 1024.0;
            let opt = OptimizerKind::for_model(&m);
            if b > 0 {
                assert!(training_memory_mb(&m, b, opt) <= cap);
                assert!(training_memory_mb(&m, b + 1, opt) > cap);
            }
        }
    }

    #[test]
    fn v100_16gb_is_tighter_than_a6000_48gb() {
        let gpt2 = ModelSpec::build(ModelId::Gpt2);
        assert!(max_batch(&gpt2, GpuModel::V100) < max_batch(&gpt2, GpuModel::A6000));
    }
}
