//! No-op `#[derive(Serialize, Deserialize)]` stubs for offline
//! verification builds (see `.verify/build.sh`). The real serde is used
//! by CI; nothing in-repo depends on serialization behavior at test
//! time.
extern crate proc_macro;
use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
