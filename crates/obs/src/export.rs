//! Exporters: Chrome `trace_event` JSON and a paper-style time-breakdown
//! table, both hand-rolled (this crate stays zero-dependency).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::events::{meta_epoch, meta_op, meta_phase, meta_segment, Event, SpanKind};

/// Quote + escape `s` as a JSON string (returned value includes the quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format a float with enough precision for trace timestamps without
/// scientific notation.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0".to_string()
    }
}

/// Render per-rank event streams as Chrome `trace_event` JSON (the format
/// `chrome://tracing` / Perfetto load directly). One process, one thread
/// per rank; durations use the `"X"` (complete) phase with microsecond
/// timestamps.
pub fn chrome_trace_json(ranks: &[(usize, Vec<Event>)]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    for (rank, events) in ranks {
        if !out.ends_with('[') {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{rank},\
             \"args\":{{\"name\":{}}}}}",
            json_string(&format!("rank {rank}"))
        );
        for e in events {
            let ts = e.start_ns as f64 / 1000.0;
            let dur = e.dur_ns() as f64 / 1000.0;
            let name = json_string(e.kind.name());
            let args = format!(
                "{{\"op\":{},\"segment\":{},\"phase\":{},\"epoch\":{},\"extra\":{}}}",
                meta_op(e.meta),
                meta_segment(e.meta),
                meta_phase(e.meta),
                meta_epoch(e.meta),
                e.extra
            );
            match e.kind {
                SpanKind::Submit | SpanKind::Complete | SpanKind::Wire => {
                    let _ = write!(
                        out,
                        ",{{\"name\":{name},\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{rank},\
                         \"ts\":{},\"args\":{args}}}",
                        json_f64(ts)
                    );
                }
                _ => {
                    let _ = write!(
                        out,
                        ",{{\"name\":{name},\"ph\":\"X\",\"pid\":0,\"tid\":{rank},\
                         \"ts\":{},\"dur\":{},\"args\":{args}}}",
                        json_f64(ts),
                        json_f64(dur)
                    );
                }
            }
        }
    }
    out.push_str("]}");
    out
}

/// Aggregate per-phase time breakdown of one rank's event stream — the
/// numbers behind the paper-style "where does the step go" table.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TimeBreakdown {
    /// Total ns inside compression kernels.
    pub compress_ns: u64,
    /// Total ns decoding + accumulating inbound payloads.
    pub decode_ns: u64,
    /// Total ns parked waiting for progress.
    pub idle_ns: u64,
    /// Number of payloads handed to the transport.
    pub wire_events: u64,
    /// Total payload bytes handed to the transport.
    pub wire_bytes: u64,
    /// Number of collectives submitted.
    pub submits: u64,
    /// Number of collectives completed.
    pub completes: u64,
    /// Observed wall span (max end − min start over all events).
    pub wall_ns: u64,
}

impl TimeBreakdown {
    /// Summarise one rank's events.
    pub fn from_events(events: &[Event]) -> TimeBreakdown {
        let mut b = TimeBreakdown::default();
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for e in events {
            lo = lo.min(e.start_ns);
            hi = hi.max(e.end_ns);
            match e.kind {
                SpanKind::Compress => b.compress_ns += e.dur_ns(),
                SpanKind::Decode => b.decode_ns += e.dur_ns(),
                SpanKind::Idle => b.idle_ns += e.dur_ns(),
                SpanKind::Wire => {
                    b.wire_events += 1;
                    b.wire_bytes += e.extra;
                }
                SpanKind::Submit => b.submits += 1,
                SpanKind::Complete => b.completes += 1,
            }
        }
        if hi > lo {
            b.wall_ns = hi - lo;
        }
        b
    }

    /// Element-wise saturating sum (wall takes the max, since ranks run
    /// concurrently).
    pub fn merge(&self, other: &TimeBreakdown) -> TimeBreakdown {
        TimeBreakdown {
            compress_ns: self.compress_ns.saturating_add(other.compress_ns),
            decode_ns: self.decode_ns.saturating_add(other.decode_ns),
            idle_ns: self.idle_ns.saturating_add(other.idle_ns),
            wire_events: self.wire_events + other.wire_events,
            wire_bytes: self.wire_bytes.saturating_add(other.wire_bytes),
            submits: self.submits + other.submits,
            completes: self.completes + other.completes,
            wall_ns: self.wall_ns.max(other.wall_ns),
        }
    }

    /// Wall time not attributed to compress/decode/idle — transport and
    /// framework overhead ("wire" in the paper's breakdown).
    pub fn other_ns(&self) -> u64 {
        self.wall_ns
            .saturating_sub(self.compress_ns)
            .saturating_sub(self.decode_ns)
            .saturating_sub(self.idle_ns)
    }
}

/// Fraction of total collective lifetime hidden behind *other* work on the
/// same rank: for each collective (paired `Submit`/`Complete` on one
/// rank's stream), `lifetime − own_busy` summed, over summed lifetimes.
/// 0.0 means fully serial (every collective's lifetime is its own compute);
/// values near 1.0 mean wire/decode latency almost entirely overlapped.
pub fn overlap_ratio(events: &[Event]) -> f64 {
    // op id (with epoch) → (submit_ns, complete_ns, own busy ns)
    let mut ops: BTreeMap<u64, (Option<u64>, Option<u64>, u64)> = BTreeMap::new();
    let key = |e: &Event| ((meta_op(e.meta) as u64) << 8) | meta_epoch(e.meta) as u64;
    for e in events {
        let entry = ops.entry(key(e)).or_default();
        match e.kind {
            SpanKind::Submit => entry.0 = Some(entry.0.unwrap_or(e.start_ns).min(e.start_ns)),
            SpanKind::Complete => entry.1 = Some(entry.1.unwrap_or(e.end_ns).max(e.end_ns)),
            SpanKind::Compress | SpanKind::Decode => entry.2 += e.dur_ns(),
            _ => {}
        }
    }
    let mut lifetime_total = 0u64;
    let mut hidden_total = 0u64;
    for (submit, complete, busy) in ops.values() {
        if let (Some(s), Some(c)) = (submit, complete) {
            let lifetime = c.saturating_sub(*s);
            lifetime_total += lifetime;
            hidden_total += lifetime.saturating_sub(*busy);
        }
    }
    if lifetime_total == 0 {
        0.0
    } else {
        hidden_total as f64 / lifetime_total as f64
    }
}

/// Render labelled breakdowns as an aligned text table (one row per
/// label), paper-style: compress / wire(other) / decode / idle columns as
/// absolute ms and percent of wall.
pub fn render_breakdown_table(rows: &[(String, TimeBreakdown)]) -> String {
    let ms = |ns: u64| ns as f64 / 1e6;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>16} {:>16} {:>16} {:>16} {:>10}",
        "rank", "wall ms", "compress", "wire/other", "decode", "idle", "MB sent"
    );
    for (label, b) in rows {
        let pct = |ns: u64| {
            if b.wall_ns == 0 {
                0.0
            } else {
                100.0 * ns as f64 / b.wall_ns as f64
            }
        };
        let _ = writeln!(
            out,
            "{:<14} {:>10.2} {:>9.2} {:>5.1}% {:>9.2} {:>5.1}% {:>9.2} {:>5.1}% {:>9.2} {:>5.1}% {:>10.2}",
            label,
            ms(b.wall_ns),
            ms(b.compress_ns),
            pct(b.compress_ns),
            ms(b.other_ns()),
            pct(b.other_ns()),
            ms(b.decode_ns),
            pct(b.decode_ns),
            ms(b.idle_ns),
            pct(b.idle_ns),
            b.wire_bytes as f64 / 1e6
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::pack_meta;

    fn ev(kind: SpanKind, op: u32, start: u64, end: u64, extra: u64) -> Event {
        Event {
            kind,
            meta: pack_meta(op, 0, 0, 0),
            start_ns: start,
            end_ns: end,
            extra,
        }
    }

    #[test]
    fn breakdown_sums_phases() {
        let events = vec![
            ev(SpanKind::Submit, 1, 0, 0, 0),
            ev(SpanKind::Compress, 1, 0, 100, 0),
            ev(SpanKind::Wire, 1, 110, 110, 64),
            ev(SpanKind::Decode, 1, 200, 260, 0),
            ev(SpanKind::Idle, 1, 260, 300, 0),
            ev(SpanKind::Complete, 1, 300, 300, 0),
        ];
        let b = TimeBreakdown::from_events(&events);
        assert_eq!(b.compress_ns, 100);
        assert_eq!(b.decode_ns, 60);
        assert_eq!(b.idle_ns, 40);
        assert_eq!(b.wire_bytes, 64);
        assert_eq!(b.wall_ns, 300);
        assert_eq!(b.other_ns(), 100);
        assert_eq!(b.submits, 1);
        assert_eq!(b.completes, 1);
    }

    #[test]
    fn overlap_ratio_bounds() {
        // One collective whose whole lifetime is its own compute: no overlap.
        let serial = vec![
            ev(SpanKind::Submit, 1, 0, 0, 0),
            ev(SpanKind::Compress, 1, 0, 100, 0),
            ev(SpanKind::Complete, 1, 100, 100, 0),
        ];
        assert!(overlap_ratio(&serial) < 1e-9);
        // A collective that lives 1000ns but only computes 100ns: 90% hidden.
        let overlapped = vec![
            ev(SpanKind::Submit, 2, 0, 0, 0),
            ev(SpanKind::Compress, 2, 0, 100, 0),
            ev(SpanKind::Complete, 2, 1000, 1000, 0),
        ];
        let r = overlap_ratio(&overlapped);
        assert!((r - 0.9).abs() < 1e-9, "{r}");
        assert!(overlap_ratio(&[]) == 0.0);
    }

    #[test]
    fn chrome_trace_is_valid_shape() {
        let events = vec![
            ev(SpanKind::Compress, 1, 0, 1500, 0),
            ev(SpanKind::Wire, 1, 2000, 2000, 64),
        ];
        let json = chrome_trace_json(&[(0, events)]);
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"traceEvents\""), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"ph\":\"i\""), "{json}");
        assert!(json.contains("\"dur\":1.500"), "{json}");
        // Balanced braces/brackets as a cheap well-formedness check.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn table_renders_all_rows() {
        let b = TimeBreakdown {
            compress_ns: 1_000_000,
            decode_ns: 500_000,
            idle_ns: 250_000,
            wire_events: 3,
            wire_bytes: 1 << 20,
            submits: 2,
            completes: 2,
            wall_ns: 4_000_000,
        };
        let table = render_breakdown_table(&[("rank0".into(), b), ("total".into(), b.merge(&b))]);
        assert!(table.contains("rank0"));
        assert!(table.contains("total"));
        assert_eq!(table.lines().count(), 3);
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
