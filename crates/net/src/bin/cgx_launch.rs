//! `cgx-launch`: run the standard CGX workload as real OS processes over
//! TCP.
//!
//! Two modes, selected by the environment:
//!
//! - **Worker** (`CGX_RANK` set): rendezvous with the mesh, train, and —
//!   when `CGX_OUT_DIR` is set — write this replica's final parameters
//!   to `<dir>/params_rank<rank>.bin` as little-endian `f32` bytes.
//! - **Coordinator** (`CGX_RANK` unset): spawn one copy of this binary
//!   per rank via [`ProcessCluster`], wait for all of them, and verify
//!   every written replica is byte-identical.
//!
//! ```text
//! cgx-launch --world 4 --out-dir /tmp/cgx [--nodes 0,0,1,1] [--steps 40] [--seed 4242]
//! ```

use cgx_net::cluster::{ProcessCluster, WorkerEnv};
use cgx_net::rendezvous::{rendezvous_with_options, DEFAULT_BOOT_TIMEOUT};
use cgx_net::workload::Workload;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const ENV_OUT_DIR: &str = "CGX_OUT_DIR";
const ENV_STEPS: &str = "CGX_STEPS";
const ENV_SEED: &str = "CGX_SEED";

fn workload(world: usize) -> Workload {
    let mut w = Workload::standard(world);
    if let Ok(s) = std::env::var(ENV_STEPS) {
        w.steps = s.parse().expect("CGX_STEPS must be a step count");
    }
    if let Ok(s) = std::env::var(ENV_SEED) {
        w.seed = s.parse().expect("CGX_SEED must be a u64");
    }
    w
}

fn rank_file(dir: &Path, rank: usize) -> PathBuf {
    dir.join(format!("params_rank{rank}.bin"))
}

fn run_worker(env: WorkerEnv) -> Result<(), String> {
    let work = workload(env.world);
    let (transport, topo) = rendezvous_with_options(
        env.rank,
        env.world,
        &env.rendezvous,
        env.node,
        DEFAULT_BOOT_TIMEOUT,
        work.net_options(),
    )
    .map_err(|e| format!("rank {}: bootstrap failed: {e}", env.rank))?;
    // A flat cluster (every rank on one node) runs the flat collective —
    // identical semantics to the thread-backed reference; a multi-node
    // roster switches on the hierarchical path.
    let topology = (topo.num_nodes() > 1).then(|| topo.clone());
    let params = work
        .run_rank(&transport, topology)
        .map_err(|e| format!("rank {}: training failed: {e}", env.rank))?;
    if let Ok(dir) = std::env::var(ENV_OUT_DIR) {
        // Hand-launched workers (no coordinator) may point at a directory
        // nobody has created yet.
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("rank {}: creating {dir}: {e}", env.rank))?;
        let path = rank_file(Path::new(&dir), env.rank);
        std::fs::write(&path, &params)
            .map_err(|e| format!("rank {}: writing {}: {e}", env.rank, path.display()))?;
    }
    println!(
        "rank {}/{} done: {} param bytes, {} wire bytes sent",
        env.rank,
        env.world,
        params.len(),
        transport.wire_bytes_sent()
    );
    Ok(())
}

struct Cli {
    world: usize,
    nodes: Option<Vec<u32>>,
    out_dir: Option<PathBuf>,
    steps: Option<String>,
    seed: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: cgx-launch [--world N] [--nodes 0,0,1,1] [--out-dir DIR] [--steps N] [--seed N]"
    );
    std::process::exit(2);
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        world: 4,
        nodes: None,
        out_dir: None,
        steps: None,
        seed: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--world" => cli.world = value().parse().unwrap_or_else(|_| usage()),
            "--nodes" => {
                cli.nodes = Some(
                    value()
                        .split(',')
                        .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                        .collect(),
                )
            }
            "--out-dir" => cli.out_dir = Some(PathBuf::from(value())),
            "--steps" => cli.steps = Some(value()),
            "--seed" => cli.seed = Some(value()),
            _ => usage(),
        }
    }
    cli
}

fn run_coordinator() -> Result<(), String> {
    let cli = parse_cli();
    let bin = std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
    let mut cluster = ProcessCluster::new(bin, cli.world);
    if let Some(nodes) = &cli.nodes {
        if nodes.len() != cli.world {
            return Err(format!(
                "--nodes names {} ranks but --world is {}",
                nodes.len(),
                cli.world
            ));
        }
        cluster = cluster.nodes(nodes);
    }
    if let Some(dir) = &cli.out_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        cluster = cluster.env(ENV_OUT_DIR, dir.display().to_string());
    }
    if let Some(steps) = &cli.steps {
        cluster = cluster.env(ENV_STEPS, steps);
    }
    if let Some(seed) = &cli.seed {
        cluster = cluster.env(ENV_SEED, seed);
    }
    cluster.run().map_err(|e| e.to_string())?;
    if let Some(dir) = &cli.out_dir {
        let first = std::fs::read(rank_file(dir, 0))
            .map_err(|e| format!("reading rank 0 replica: {e}"))?;
        for rank in 1..cli.world {
            let other = std::fs::read(rank_file(dir, rank))
                .map_err(|e| format!("reading rank {rank} replica: {e}"))?;
            if other != first {
                return Err(format!("rank {rank} replica diverged from rank 0"));
            }
        }
        println!(
            "launch ok: {} ranks, replicas byte-identical ({} param bytes)",
            cli.world,
            first.len()
        );
    } else {
        println!("launch ok: {} ranks", cli.world);
    }
    Ok(())
}

fn main() -> ExitCode {
    let result = match WorkerEnv::from_env() {
        Ok(Some(env)) => run_worker(env),
        Ok(None) => run_coordinator(),
        Err(e) => Err(format!("bad worker environment: {e}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("cgx-launch: {msg}");
            ExitCode::FAILURE
        }
    }
}
