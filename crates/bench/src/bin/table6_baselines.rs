//! Table 6: CGX vs PowerSGD vs GRACE (and the uncompressed baseline) on a
//! single 8x RTX 3090 machine, FP32 where the comparison requires it
//! (PowerSGD cannot train in FP16).
//!
//! Paper shape: CGX > PowerSGD > baseline > GRACE.

use cgx_bench::{fmt_items, note, render_table};
use cgx_core::api::CgxBuilder;
use cgx_core::estimate::{estimate_fp32, SystemSetup};
use cgx_models::ModelId;
use cgx_simnet::MachineSpec;

fn main() {
    let rtx = MachineSpec::rtx3090();
    let models = [ModelId::ResNet50, ModelId::TransformerXl, ModelId::BertBase];
    let setups: Vec<(&str, SystemSetup)> = vec![
        ("Baseline", SystemSetup::BaselineNccl),
        (
            "CGX",
            SystemSetup::Cgx {
                session: Box::new(CgxBuilder::new().build()),
                fp32: true,
            },
        ),
        ("PowerSGD", SystemSetup::PowerSgd { rank: 4 }),
        ("Grace", SystemSetup::Grace { bits: 4 }),
    ];
    let mut rows = Vec::new();
    for (name, setup) in &setups {
        let mut row = vec![name.to_string()];
        for model in models {
            // Everything runs FP32: PowerSGD cannot train in FP16, so the
            // paper pins the whole comparison to full precision.
            let e = estimate_fp32(&rtx, model, setup);
            row.push(fmt_items(e.throughput));
        }
        rows.push(row);
    }
    print!(
        "{}",
        render_table(
            "Table 6: items/s, single 8x RTX 3090 node",
            &["", "ResNet50", "Transformer-XL-base", "BERT"],
            &rows,
        )
    );
    note("paper: baseline 1900/170k/17.5k; CGX 2900/260k/38.7k; PowerSGD 2600/220k*/38.3k; Grace 1000/30k/14.3k.");
    note("expected ordering: CGX > PowerSGD > baseline > Grace.");
}
