//! Property tests for the communication engine: for arbitrary world
//! sizes, layer inventories, and compression schemes, driving all layers
//! concurrently through [`CommEngine`] must be bit-identical to the
//! blocking one-allreduce-per-layer reference, and every rank must agree.

use cgx_collectives::reduce::{allreduce, Algorithm};
use cgx_collectives::{CommEngine, EngineOptions, ThreadCluster};
use cgx_compress::{CompressionScheme, Compressor, ScratchPool};
use cgx_tensor::{Rng, Tensor};
use proptest::prelude::*;

fn scheme_strategy() -> impl Strategy<Value = CompressionScheme> {
    prop_oneof![
        Just(CompressionScheme::None),
        Just(CompressionScheme::Qsgd {
            bits: 4,
            bucket_size: 128
        }),
        Just(CompressionScheme::Qsgd {
            bits: 2,
            bucket_size: 64
        }),
        Just(CompressionScheme::Nuqsgd {
            bits: 4,
            bucket_size: 64
        }),
        Just(CompressionScheme::TopK { ratio: 0.25 }),
    ]
}

/// A layer: odd-biased length (including lengths smaller than the world
/// size) plus a scheme.
fn layer_strategy() -> impl Strategy<Value = (usize, CompressionScheme)> {
    ((1usize..700).prop_map(|n| n | 1), scheme_strategy())
}

fn run_engine(
    world: usize,
    seed: u64,
    layers: &[(usize, CompressionScheme)],
    alg: Algorithm,
) -> Vec<Vec<Tensor>> {
    ThreadCluster::run(world, |t| {
        let mut data = Rng::seed_from_u64(seed ^ (0x9E37 + t.rank() as u64));
        let grads: Vec<Tensor> = layers
            .iter()
            .map(|(n, _)| Tensor::randn(&mut data, &[*n]))
            .collect();
        let mut master = Rng::seed_from_u64(seed);
        let mut eng = CommEngine::new(&t, ScratchPool::new(), EngineOptions::default());
        let handles: Vec<_> = grads
            .iter()
            .zip(layers)
            .map(|(g, (_, s))| eng.submit(alg, g, s.build(), &mut master))
            .collect();
        handles
            .into_iter()
            .map(|h| eng.wait(h).expect("engine wait").0)
            .collect::<Vec<_>>()
    })
    .expect("engine cluster")
}

fn run_sequential(
    world: usize,
    seed: u64,
    layers: &[(usize, CompressionScheme)],
    alg: Algorithm,
) -> Vec<Vec<Tensor>> {
    ThreadCluster::run(world, |t| {
        let mut data = Rng::seed_from_u64(seed ^ (0x9E37 + t.rank() as u64));
        let grads: Vec<Tensor> = layers
            .iter()
            .map(|(n, _)| Tensor::randn(&mut data, &[*n]))
            .collect();
        let mut master = Rng::seed_from_u64(seed);
        grads
            .iter()
            .zip(layers)
            .map(|(g, (_, s))| {
                let mut lrng = Rng::seed_from_u64(master.next_u64());
                let mut comp: Box<dyn Compressor> = s.build();
                allreduce(alg, &t, g, comp.as_mut(), &mut lrng)
                    .expect("allreduce")
                    .0
            })
            .collect::<Vec<_>>()
    })
    .expect("sequential cluster")
}

fn check(
    world: usize,
    seed: u64,
    layers: &[(usize, CompressionScheme)],
    alg: Algorithm,
) -> Result<(), TestCaseError> {
    let eng = run_engine(world, seed, layers, alg);
    let seq = run_sequential(world, seed, layers, alg);
    for (r, replica) in eng.iter().enumerate() {
        for (i, (a, b)) in replica.iter().zip(&seq[0]).enumerate() {
            for (j, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
                prop_assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "rank {} layer {} elem {}: engine {} vs sequential {}",
                    r,
                    i,
                    j,
                    x,
                    y
                );
            }
        }
    }
    Ok(())
}

proptest! {
    // Thread clusters are expensive; a couple dozen cases still explore
    // world size x inventory x scheme space well because each case runs
    // up to 10 concurrent collectives.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_is_bitwise_equal_to_sequential_sra(
        world in 2usize..=8,
        seed in 0u64..1_000_000,
        layers in prop::collection::vec(layer_strategy(), 1..10),
    ) {
        check(world, seed, &layers, Algorithm::ScatterReduceAllgather)?;
    }

    #[test]
    fn engine_is_bitwise_equal_to_sequential_ring(
        world in 2usize..=8,
        seed in 0u64..1_000_000,
        layers in prop::collection::vec(layer_strategy(), 1..6),
    ) {
        check(world, seed, &layers, Algorithm::Ring)?;
    }
}
