//! Property-based tests over the performance plane: cost-model
//! monotonicity, step-simulator sanity, DES-vs-analytic agreement, and
//! topology invariants, for randomized parameters.

use cgx::simnet::{
    allreduce_time, fuse_messages, run, simulate_step, CommCost, ComputeProfile, DesScratch,
    Fabric, LayerMsg, MachineSpec, NetworkDes, OpGraph, ReductionScheme, SimError, StepConfig,
};
use proptest::prelude::*;

fn random_layers(sizes: &[u32]) -> Vec<LayerMsg> {
    sizes
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let elems = (*s as usize) + 1;
            LayerMsg::new(format!("l{i}"), elems, elems / 2 + 4, 0.0)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn collective_time_monotone_in_everything(
        n in 2usize..32,
        bytes in 1usize..1_000_000_000,
        bw_gbps in 1u32..200,
        scheme_idx in 0usize..4,
    ) {
        let scheme = ReductionScheme::all()[scheme_idx];
        let cost = CommCost::new(bw_gbps as f64 * 1e9, 10e-6);
        let t = allreduce_time(scheme, n, bytes, cost);
        prop_assert!(t > 0.0 && t.is_finite());
        // More bytes: slower. More bandwidth: faster.
        prop_assert!(allreduce_time(scheme, n, bytes * 2, cost) >= t);
        let faster = CommCost::new(bw_gbps as f64 * 2e9, 10e-6);
        prop_assert!(allreduce_time(scheme, n, bytes, faster) <= t);
    }

    #[test]
    fn step_time_bounded_below_by_compute_and_monotone_in_wire(
        sizes in prop::collection::vec(1u32..2_000_000, 1..40),
        compute_ms in 5u32..400,
    ) {
        let layers = random_layers(&sizes);
        let compute = ComputeProfile::new(compute_ms as f64 / 1000.0);
        let cfg = StepConfig::cgx(MachineSpec::rtx3090());
        let r = simulate_step(&cfg, &layers, compute);
        prop_assert!(r.step_seconds >= compute.step_seconds);
        prop_assert!(r.exposed_comm_seconds >= 0.0);
        // Doubling every wire size cannot make the step faster.
        let bigger: Vec<LayerMsg> = layers
            .iter()
            .map(|l| LayerMsg::new(l.name.clone(), l.elements, l.wire_bytes * 2, 0.0))
            .collect();
        let r2 = simulate_step(&cfg, &bigger, compute);
        prop_assert!(r2.step_seconds >= r.step_seconds - 1e-12);
    }

    #[test]
    fn fusion_preserves_totals_and_respects_threshold(
        sizes in prop::collection::vec(1u32..3_000_000, 1..60),
        threshold in 1usize..8_000_000,
    ) {
        let layers = random_layers(&sizes);
        let fused = fuse_messages(&layers, threshold);
        prop_assert!(!fused.is_empty());
        prop_assert!(fused.len() <= layers.len());
        let (e0, w0): (usize, usize) = (
            layers.iter().map(|l| l.elements).sum(),
            layers.iter().map(|l| l.wire_bytes).sum(),
        );
        let (e1, w1): (usize, usize) = (
            fused.iter().map(|l| l.elements).sum(),
            fused.iter().map(|l| l.wire_bytes).sum(),
        );
        prop_assert_eq!(e0, e1);
        prop_assert_eq!(w0, w1);
        // Every bucket except possibly the last reaches the threshold.
        for b in &fused[..fused.len() - 1] {
            prop_assert!(b.wire_bytes >= threshold);
        }
    }

    #[test]
    fn des_and_analytic_sra_agree(
        n in 2usize..10,
        mb in 1u32..200,
        bw_gbps in 1u32..50,
    ) {
        let bytes = mb as f64 * 1e6;
        let bw = bw_gbps as f64 * 1e9;
        let des = NetworkDes::new(n, bw, 10e-6).sra_allreduce(bytes);
        prop_assert!(des.is_ok());
        let des = des.unwrap();
        let analytic = allreduce_time(
            ReductionScheme::ScatterReduceAllgather,
            n,
            bytes as usize,
            CommCost::new(bw, 10e-6),
        );
        let ratio = des / analytic;
        prop_assert!((0.4..2.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn des_and_analytic_ring_agree(
        n in 2usize..10,
        mb in 1u32..200,
        bw_gbps in 1u32..50,
    ) {
        let bytes = mb as f64 * 1e6;
        let bw = bw_gbps as f64 * 1e9;
        let des = NetworkDes::new(n, bw, 10e-6).ring_allreduce(bytes);
        prop_assert!(des.is_ok());
        let des = des.unwrap();
        let analytic = allreduce_time(
            ReductionScheme::Ring,
            n,
            bytes as usize,
            CommCost::new(bw, 10e-6),
        );
        let ratio = des / analytic;
        prop_assert!((0.4..2.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn wheel_runs_any_valid_graph_without_panicking(
        ranks in 2usize..24,
        ops in prop::collection::vec((0usize..24, 0usize..24, 1u32..1000), 1..120),
        mb in 1u32..64,
        straggle_ms in 0u32..3,
        jitter_milli in 0u32..900,
        seed in any::<u64>(),
    ) {
        // Random DAG: transfers between random ranks (computes when the
        // pair collapses), each depending on up to two earlier ops.
        let mut g = OpGraph::new();
        let mut ids: Vec<u32> = Vec::new();
        for &(a, b, frac_m) in &ops {
            let (src, dst) = (a % ranks, b % ranks);
            let deps: Vec<u32> = ids.iter().rev().take(2).copied().collect();
            let id = if src == dst {
                g.push_compute(src, frac_m, &deps).unwrap()
            } else {
                g.push_transfer(src, dst, frac_m as f64 / 1000.0, &deps).unwrap()
            };
            ids.push(id);
        }
        g.seal();
        let mut fabric = Fabric::uniform(ranks, 5e9, 8e-6).unwrap();
        if straggle_ms > 0 {
            fabric.scale_rank_bandwidth(0, 0.5).unwrap();
            fabric.set_release(0, straggle_ms as f64 * 1e-3).unwrap();
        }
        fabric.set_jitter(seed, jitter_milli as f64 / 1000.0).unwrap();
        let mut scratch = DesScratch::new();
        let stats = run(&g, &fabric, mb as f64 * 1e6, &mut scratch);
        prop_assert!(stats.is_ok(), "valid graph must simulate: {:?}", stats.err());
        let s = stats.unwrap();
        prop_assert_eq!(s.events as usize, g.len());
        // Re-running with the same scratch is deterministic.
        let s2 = run(&g, &fabric, mb as f64 * 1e6, &mut scratch).unwrap();
        prop_assert_eq!(s.makespan_ns, s2.makespan_ns);
    }

    #[test]
    fn malformed_inputs_error_instead_of_panicking(
        ranks in 2usize..16,
        bad_idx in 0usize..3,
    ) {
        // Bad fabrics are rejected up front.
        let bad_bw = [f64::NAN, 0.0, -3.0][bad_idx];
        prop_assert!(Fabric::uniform(ranks, bad_bw, 1e-6).is_err());
        prop_assert!(Fabric::uniform(0, 1e9, 1e-6).is_err());
        // Self-transfers, non-finite fractions, and forward deps are
        // rejected at push time.
        let mut g = OpGraph::new();
        prop_assert!(g.push_transfer(1, 1, 0.5, &[]).is_err());
        prop_assert!(g.push_transfer(0, 1, f64::NAN, &[]).is_err());
        prop_assert!(g.push_transfer(0, 1, 0.5, &[9]).is_err());
        // A rank beyond the fabric is caught at run time, as an error.
        g.push_transfer(0, ranks, 0.5, &[]).unwrap();
        g.seal();
        let fabric = Fabric::uniform(ranks, 1e9, 1e-6).unwrap();
        let mut scratch = DesScratch::new();
        prop_assert!(matches!(
            run(&g, &fabric, 1e6, &mut scratch),
            Err(SimError::BadRank { .. })
        ));
        // Unsealed graphs are refused.
        let mut g2 = OpGraph::new();
        g2.push_transfer(0, 1, 0.5, &[]).unwrap();
        prop_assert!(matches!(
            run(&g2, &fabric, 1e6, &mut scratch),
            Err(SimError::Unsealed)
        ));
        // Non-finite reference byte counts are refused.
        g2.seal();
        prop_assert!(run(&g2, &fabric, f64::NAN, &mut scratch).is_err());
    }

    #[test]
    fn gpu_subsets_scale_monotonically(
        gpus in 1usize..=8,
    ) {
        // More GPUs never reduce aggregate CGX throughput on the 3090 box.
        use cgx::core::estimate::{estimate, SystemSetup};
        use cgx::models::ModelId;
        let m = MachineSpec::rtx3090().with_gpus(gpus);
        let e = estimate(&m, ModelId::ResNet50, &SystemSetup::cgx());
        if gpus > 1 {
            let fewer = MachineSpec::rtx3090().with_gpus(gpus - 1);
            let e2 = estimate(&fewer, ModelId::ResNet50, &SystemSetup::cgx());
            prop_assert!(e.throughput >= e2.throughput * 0.98);
        }
        prop_assert!(e.scaling <= 1.0 + 1e-9);
    }

    #[test]
    fn topology_p2p_is_symmetric_and_positive(
        pcie in 4u32..40,
        qpi in 4u32..40,
    ) {
        use cgx::simnet::topology::rtx_dual_numa;
        let t = rtx_dual_numa("p", 8, pcie as f64 * 1e9, qpi as f64 * 1e9);
        for i in 0..8u32 {
            for j in 0..8u32 {
                if i == j { continue; }
                let a = t.p2p_bandwidth(i, j);
                let b = t.p2p_bandwidth(j, i);
                prop_assert!(a > 0.0);
                prop_assert_eq!(a, b);
            }
        }
        prop_assert!(t.ring_allreduce_algbw() > 0.0);
    }
}
