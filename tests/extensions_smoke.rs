//! Smoke tests pinning the extension results (beyond the paper's tables):
//! scheduling ablations, local SGD, online adaptation, QNCCL, memory
//! limits, the attention LM.

use cgx::adaptive::{AdaptiveOptions, AdaptivePolicy};
use cgx::core::api::CgxBuilder;
use cgx::core::session_sim::simulate_adaptive_session;
use cgx::engine::data::GaussianMixture;
use cgx::engine::nn::Mlp;
use cgx::engine::{train_data_parallel, train_local_sgd, LayerCompression, TrainConfig};
use cgx::models::{ModelId, ModelSpec};
use cgx::simnet::{
    cross_barrier_step, max_batch, simulate_step_ordered, ComputeProfile, GpuModel, MachineSpec,
    MessageOrder, StepConfig,
};
use cgx::tensor::Rng;

fn cgx_msgs(model: ModelId) -> (Vec<cgx::simnet::LayerMsg>, ComputeProfile) {
    let spec = ModelSpec::build(model);
    let mut session = CgxBuilder::new().build();
    session.register_model_spec(&spec);
    let msgs = session.layer_messages(spec.precision());
    let compute = ComputeProfile::new(MachineSpec::rtx3090().gpu().step_compute_seconds(&spec));
    (msgs, compute)
}

#[test]
fn cross_barrier_single_node_gain_is_insignificant_for_resnet() {
    // The paper's claim, verbatim, for the compressed single-node setup.
    let (msgs, compute) = cgx_msgs(ModelId::ResNet50);
    let cfg = StepConfig::cgx(MachineSpec::rtx3090());
    let within = simulate_step_ordered(&cfg, &msgs, compute, MessageOrder::Fifo);
    let cross = cross_barrier_step(&cfg, &msgs, compute, false).expect("no clipping");
    let gain = within.step_seconds / cross.step_seconds;
    assert!(gain < 1.03, "gain {gain:.3} should be insignificant");
}

#[test]
fn clipping_disables_cross_barrier() {
    let (msgs, compute) = cgx_msgs(ModelId::TransformerXl);
    let cfg = StepConfig::cgx(MachineSpec::rtx3090());
    assert!(cross_barrier_step(&cfg, &msgs, compute, true).is_none());
}

#[test]
fn priority_scheduling_is_a_safe_default() {
    for model in [ModelId::ResNet50, ModelId::TransformerXl, ModelId::Vgg16] {
        let (msgs, compute) = cgx_msgs(model);
        let cfg = StepConfig::cgx(MachineSpec::rtx3090());
        let fifo = simulate_step_ordered(&cfg, &msgs, compute, MessageOrder::Fifo);
        let prio = simulate_step_ordered(&cfg, &msgs, compute, MessageOrder::Priority);
        assert!(prio.step_seconds <= fifo.step_seconds + 1e-9, "{model}");
    }
}

#[test]
fn local_sgd_and_gradient_sync_reach_similar_accuracy() {
    let task = GaussianMixture::new(5, 10, 1.3);
    let mut rng = Rng::seed_from_u64(5);
    let model = Mlp::new(&mut rng, &[10, 24, 5]);
    let eval = |m: &Mlp| {
        let mut r = Rng::seed_from_u64(999);
        let (x, y) = task.sample_batch(&mut r, 1024);
        m.accuracy(&x, &y)
    };
    let cfg = TrainConfig {
        lr: 0.2,
        compression: LayerCompression::cgx_default(),
        ..TrainConfig::new(4, 200)
    };
    let t1 = task.clone();
    let (grad_sync, grad_rep) =
        train_data_parallel(&model, move |r| t1.sample_batch(r, 16), &cfg).unwrap();
    let t2 = task.clone();
    let (local, local_rep) =
        train_local_sgd(&model, move |r| t2.sample_batch(r, 16), &cfg, 8).unwrap();
    assert!(eval(&grad_sync) > 0.85);
    assert!(eval(&local) > 0.85);
    // Local SGD at period 8 cuts traffic by ~8x.
    let ratio = grad_rep.bytes_sent_per_worker as f64 / local_rep.bytes_sent_per_worker as f64;
    assert!(ratio > 5.0, "traffic ratio {ratio}");
}

#[test]
fn online_adaptation_compresses_harder_as_training_progresses() {
    let r = simulate_adaptive_session(
        &MachineSpec::genesis_cluster(),
        ModelId::TransformerXl,
        AdaptivePolicy::KMeans,
        &AdaptiveOptions::default(),
        1000,
        250,
        7,
    );
    let first = r.epochs.first().unwrap().size_ratio;
    let last = r.epochs.last().unwrap().size_ratio;
    assert!(last <= first + 1e-9, "size ratio {first} -> {last}");
    assert!(r.speedup() > 1.15, "whole-run speedup {:.2}", r.speedup());
}

#[test]
fn memory_model_reproduces_the_2080_batch_limit() {
    let vit = ModelSpec::build(ModelId::VitBase);
    assert!(max_batch(&vit, GpuModel::Rtx2080Ti) < vit.per_gpu_batch());
    assert!(max_batch(&vit, GpuModel::Rtx3090) >= vit.per_gpu_batch());
    // Every recipe fits the machines the paper ran it on (24 GB cards).
    for id in ModelId::all() {
        let m = ModelSpec::build(id);
        assert!(
            max_batch(&m, GpuModel::Rtx3090) >= m.per_gpu_batch(),
            "{id}"
        );
    }
}

#[test]
fn qnccl_fused_ring_reduces_exactly_like_a_mean() {
    use cgx::collectives::ThreadCluster;
    use cgx::qnccl::{FusedBuffer, QncclRing};
    use cgx::tensor::Tensor;
    let results = ThreadCluster::run(4, |t| {
        let grads = vec![Tensor::full(&[64], t.rank() as f32)];
        let fused = FusedBuffer::pack(&grads);
        let mut ring = QncclRing::new(8, 64);
        let mut rng = Rng::seed_from_u64(t.rank() as u64);
        ring.allreduce(&t, &fused, &mut rng).unwrap().unpack()[0].clone()
    })
    .unwrap();
    // Mean of 0..=3 is 1.5; 8-bit quantization of a constant bucket is
    // near-exact.
    for r in &results {
        assert!((r[0] - 1.5).abs() < 0.05, "{}", r[0]);
    }
}
