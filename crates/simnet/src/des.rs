//! Discrete-event network simulation of collective operations.
//!
//! The analytic α-β formulas in [`crate::collective`] are closed forms;
//! this module cross-validates them with a first-principles discrete-event
//! simulation: every chunk transfer is an explicit operation with data
//! dependencies, scheduled onto per-GPU egress/ingress lanes of finite
//! bandwidth. The DES captures effects the closed forms average away —
//! head-of-line blocking, dependency stalls between reduction phases,
//! lane contention — and the test suite asserts the two models agree
//! within a small factor (they do, which is the justification for using
//! the cheap closed forms in the step simulator).
//!
//! # Engine design (the million-sweep core)
//!
//! The sweep driver evaluates tens of thousands of (model × world ×
//! scheme × bits × topology) cells per run, so the hot loop is built for
//! throughput:
//!
//! * **Integer-nanosecond time.** Event times are `u64` nanoseconds, so
//!   scheduling is branch-cheap integer math with no `partial_cmp`
//!   panics and bit-reproducible results across hosts. All time
//!   arithmetic saturates at `u64::MAX` rather than overflowing.
//! * **Calendar-queue event wheel.** Pending completions live in a
//!   power-of-two ring of time buckets ([`Wheel`]); push is O(1), pop
//!   scans one bucket (sized so the expected occupancy is a handful of
//!   events) — O(1) amortized vs `O(log n)` heap churn. Far-future
//!   events park in an overflow list drained once per lap.
//! * **Arena op graphs.** [`OpGraph`] stores ops column-wise with CSR
//!   dependency edges — no per-op `Vec` allocations — and is reused
//!   across builds via [`OpGraph::clear`]. Dependencies may only point
//!   at earlier ops, so graphs are acyclic by construction.
//! * **Per-lane FIFO.** Each rank owns one egress and one ingress lane
//!   (`free_at` timestamps); ops claim lanes in deterministic schedule
//!   order (completion time, then op index), which is exactly a FIFO
//!   queue per lane without materializing one.
//! * **Heterogeneous fabric.** [`Fabric`] carries per-rank egress and
//!   ingress bandwidth, per-rank release offsets (compute stragglers),
//!   a node map with shared per-node uplink/downlink lanes and a
//!   separate inter-node α, an optional host-side serial [`Bus`] (used
//!   by loopback calibration), and seeded multiplicative jitter.
//!
//! The previous `f64`-time `BinaryHeap` core is preserved verbatim in
//! [`legacy`] as a validation oracle: the pinned-seed corpus test proves
//! the new core produces *identical* makespans, and the criterion bench
//! plus `sim_sweep` measure its events/sec against it.

/// Errors surfaced by the DES public API.
///
/// Every malformed input that used to `panic!`/`expect` in the old core
/// (non-finite times, bad ranks, self-sends, dangling deps, cycles) is
/// reported through this enum instead; no panic is reachable from safe
/// inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// A fabric parameter is structurally invalid (zero ranks,
    /// non-positive bandwidth, jitter amplitude outside `[0, 1)`, ...).
    InvalidFabric(&'static str),
    /// A floating-point input was NaN/infinite or negative where a
    /// finite non-negative value is required.
    NonFinite(&'static str),
    /// An op references a rank outside the fabric.
    BadRank {
        /// Offending op index.
        op: usize,
        /// The out-of-range rank.
        rank: usize,
        /// Fabric size.
        ranks: usize,
    },
    /// A dependency index does not point at an earlier op.
    DepOutOfRange {
        /// Offending op index (`usize::MAX` when raised at push time,
        /// i.e. for the op currently being appended).
        op: usize,
        /// The offending dependency index.
        dep: usize,
    },
    /// The graph was mutated after (or never) [`OpGraph::seal`]ed.
    Unsealed,
    /// Not every op completed — a dependency cycle (impossible for
    /// graphs built through [`OpGraph::push`], which only accepts
    /// backward edges; kept as a defensive check).
    Cycle {
        /// Ops that did complete.
        completed: usize,
        /// Total ops in the graph.
        total: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InvalidFabric(what) => write!(f, "invalid fabric: {what}"),
            SimError::NonFinite(what) => write!(f, "non-finite or negative input: {what}"),
            SimError::BadRank { op, rank, ranks } => {
                write!(f, "op {op}: rank {rank} out of range (fabric has {ranks})")
            }
            SimError::DepOutOfRange { op, dep } => {
                write!(f, "op {op}: dependency {dep} does not point at an earlier op")
            }
            SimError::Unsealed => write!(f, "op graph must be sealed before running"),
            SimError::Cycle { completed, total } => {
                write!(f, "dependency cycle: only {completed}/{total} ops completed")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Converts seconds to integer nanoseconds, rejecting NaN/∞/negatives.
fn sec_to_ns(seconds: f64, what: &'static str) -> Result<u64, SimError> {
    if !seconds.is_finite() || seconds < 0.0 {
        return Err(SimError::NonFinite(what));
    }
    Ok(f64_to_ns(seconds * 1e9))
}

/// Saturating f64→u64 nanosecond conversion (round to nearest).
#[inline]
fn f64_to_ns(ns: f64) -> u64 {
    if !(ns > 0.0) {
        0
    } else if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        ns.round() as u64
    }
}

// ---------------------------------------------------------------------------
// Op graph: flat columnar arena with CSR dependency edges.
// ---------------------------------------------------------------------------

/// A dependency graph of simulation operations, stored column-wise.
///
/// Three op kinds share one encoding:
///
/// * **transfer** (`src != dst`): moves `frac * ref_bytes` bytes (plus a
///   fixed `fixed_ns` floor) from `src`'s egress lane to `dst`'s ingress
///   lane; pays α in flight.
/// * **compute** (`src == dst`, `fixed_ns > 0`): occupies both of the
///   rank's lanes (and the [`Bus`], when configured) for `fixed_ns`; no α.
/// * **join** (`src == dst`, `frac == 0`, `fixed_ns == 0`): a zero-cost
///   aggregation point that completes the instant its last dependency
///   does — it exists so an op fanning in from `k` producers costs one
///   edge per producer once, not `k` edges per consumer (the dense
///   phase-2 encoding of a 512-rank scatter-reduce-allgather needs 133M
///   edges; with joins it needs 524k).
///
/// Dependencies are validated at push time and may only reference
/// earlier ops, making every graph acyclic by construction. Call
/// [`OpGraph::seal`] after the last push (builders do this for you);
/// [`run`] refuses unsealed graphs.
#[derive(Debug, Clone, Default)]
pub struct OpGraph {
    srcs: Vec<u32>,
    dsts: Vec<u32>,
    fracs: Vec<f32>,
    fixed: Vec<u32>,
    dep_off: Vec<u32>,
    deps: Vec<u32>,
    // Reverse CSR (who depends on me), built by `seal`.
    rdep_off: Vec<u32>,
    rdeps: Vec<u32>,
    indegree: Vec<u32>,
    sealed: bool,
    max_rank: u32,
    frac_sum: f64,
    fixed_sum: u64,
}

impl OpGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        let mut g = OpGraph::default();
        g.dep_off.push(0);
        g
    }

    /// Creates an empty graph with capacity for `ops` operations and
    /// `edges` dependency edges.
    pub fn with_capacity(ops: usize, edges: usize) -> Self {
        let mut g = OpGraph {
            srcs: Vec::with_capacity(ops),
            dsts: Vec::with_capacity(ops),
            fracs: Vec::with_capacity(ops),
            fixed: Vec::with_capacity(ops),
            dep_off: Vec::with_capacity(ops + 1),
            deps: Vec::with_capacity(edges),
            ..OpGraph::default()
        };
        g.dep_off.push(0);
        g
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.srcs.len()
    }

    /// True when no ops have been pushed.
    pub fn is_empty(&self) -> bool {
        self.srcs.is_empty()
    }

    /// True once [`seal`](OpGraph::seal)ed and unmodified since.
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// Total dependency edges.
    pub fn edge_count(&self) -> usize {
        self.deps.len()
    }

    /// Resets to empty, keeping every allocation for reuse.
    pub fn clear(&mut self) {
        self.srcs.clear();
        self.dsts.clear();
        self.fracs.clear();
        self.fixed.clear();
        self.dep_off.clear();
        self.dep_off.push(0);
        self.deps.clear();
        self.rdep_off.clear();
        self.rdeps.clear();
        self.indegree.clear();
        self.sealed = false;
        self.max_rank = 0;
        self.frac_sum = 0.0;
        self.fixed_sum = 0;
    }

    /// Appends an op; the workhorse behind the typed push helpers.
    ///
    /// `frac` is the payload as a fraction of the `ref_bytes` passed to
    /// [`run`] (so one sealed graph prices any payload size);
    /// `fixed_ns` is an unconditional duration floor. Returns the new
    /// op's index. Dependencies must point at already-pushed ops.
    pub fn push(
        &mut self,
        src: usize,
        dst: usize,
        frac: f64,
        fixed_ns: u32,
        deps: &[u32],
    ) -> Result<u32, SimError> {
        let op = self.srcs.len();
        if src > u32::MAX as usize || dst > u32::MAX as usize {
            return Err(SimError::BadRank {
                op,
                rank: src.max(dst),
                ranks: u32::MAX as usize,
            });
        }
        if !frac.is_finite() || frac < 0.0 {
            return Err(SimError::NonFinite("op frac"));
        }
        for &d in deps {
            if d as usize >= op {
                return Err(SimError::DepOutOfRange {
                    op: usize::MAX,
                    dep: d as usize,
                });
            }
        }
        self.srcs.push(src as u32);
        self.dsts.push(dst as u32);
        self.fracs.push(frac as f32);
        self.fixed.push(fixed_ns);
        self.deps.extend_from_slice(deps);
        self.dep_off.push(self.deps.len() as u32);
        self.max_rank = self.max_rank.max(src as u32).max(dst as u32);
        self.frac_sum += frac;
        self.fixed_sum = self.fixed_sum.saturating_add(fixed_ns as u64);
        self.sealed = false;
        Ok(op as u32)
    }

    /// Appends a point-to-point transfer of `frac * ref_bytes` bytes.
    pub fn push_transfer(
        &mut self,
        src: usize,
        dst: usize,
        frac: f64,
        deps: &[u32],
    ) -> Result<u32, SimError> {
        if src == dst {
            return Err(SimError::BadRank {
                op: self.srcs.len(),
                rank: src,
                ranks: src, // self-send: reported as the degenerate rank
            });
        }
        self.push(src, dst, frac, 0, deps)
    }

    /// Appends a zero-cost join on `rank` (completes with its last dep).
    pub fn push_join(&mut self, rank: usize, deps: &[u32]) -> Result<u32, SimError> {
        self.push(rank, rank, 0.0, 0, deps)
    }

    /// Appends a compute occupancy of `fixed_ns` on `rank`'s lanes (and
    /// the bus, when the fabric has one).
    pub fn push_compute(
        &mut self,
        rank: usize,
        fixed_ns: u32,
        deps: &[u32],
    ) -> Result<u32, SimError> {
        self.push(rank, rank, 0.0, fixed_ns, deps)
    }

    /// Builds the reverse dependency CSR and indegrees; must be called
    /// after the last push and before [`run`].
    pub fn seal(&mut self) {
        let n = self.len();
        self.indegree.clear();
        self.indegree.resize(n, 0);
        self.rdep_off.clear();
        self.rdep_off.resize(n + 1, 0);
        for i in 0..n {
            let (a, b) = (self.dep_off[i] as usize, self.dep_off[i + 1] as usize);
            self.indegree[i] = (b - a) as u32;
            for &d in &self.deps[a..b] {
                self.rdep_off[d as usize + 1] += 1;
            }
        }
        for i in 0..n {
            self.rdep_off[i + 1] += self.rdep_off[i];
        }
        self.rdeps.clear();
        self.rdeps.resize(self.deps.len(), 0);
        // Fill per-dep cursor; iterating ops in order keeps each rdep
        // list ascending, which the scheduler relies on for determinism.
        let mut cursor: Vec<u32> = self.rdep_off[..n].to_vec();
        for i in 0..n {
            let (a, b) = (self.dep_off[i] as usize, self.dep_off[i + 1] as usize);
            for &d in &self.deps[a..b] {
                let c = &mut cursor[d as usize];
                self.rdeps[*c as usize] = i as u32;
                *c += 1;
            }
        }
        self.sealed = true;
    }

    #[inline]
    fn rdeps_of(&self, op: usize) -> &[u32] {
        &self.rdeps[self.rdep_off[op] as usize..self.rdep_off[op + 1] as usize]
    }
}

// ---------------------------------------------------------------------------
// Fabric: heterogeneous bandwidth, nodes, stragglers, jitter, host bus.
// ---------------------------------------------------------------------------

/// A serial host-side resource every op crosses (memory bus / loopback
/// kernel path). Used by the calibration replay, where the single-host
/// TCP-loopback fabric is bus-bound, not lane-bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bus {
    /// Fixed bus occupancy per transfer (framing, syscalls), ns.
    pub per_op_ns: u64,
    /// Bus bandwidth, bytes/s.
    pub bytes_per_sec: f64,
}

/// The simulated fabric: per-rank lane bandwidths, per-rank release
/// offsets, an optional node map with shared inter-node lanes, an
/// optional serial [`Bus`], and seeded jitter.
///
/// Build one with [`Fabric::uniform`] and specialize it with the
/// setters; [`run`] validates the whole fabric and returns
/// [`SimError`] on anything malformed (no panics).
#[derive(Debug, Clone)]
pub struct Fabric {
    egress_bw: Vec<f64>,
    ingress_bw: Vec<f64>,
    release_ns: Vec<u64>,
    node_of: Vec<u32>,
    n_nodes: usize,
    inter_bw: f64,
    alpha_ns: u64,
    inter_alpha_ns: u64,
    per_op_lane_ns: u64,
    bus: Option<Bus>,
    jitter_seed: u64,
    jitter_amp: f64,
}

impl Fabric {
    /// A flat single-node fabric: `ranks` ranks, every lane `lane_bw`
    /// bytes/s, per-transfer latency `alpha` seconds.
    pub fn uniform(ranks: usize, lane_bw: f64, alpha: f64) -> Result<Self, SimError> {
        if ranks == 0 {
            return Err(SimError::InvalidFabric("need at least one rank"));
        }
        if !lane_bw.is_finite() || lane_bw <= 0.0 {
            return Err(SimError::InvalidFabric("lane bandwidth must be positive"));
        }
        let alpha_ns = sec_to_ns(alpha, "alpha")?;
        Ok(Fabric {
            egress_bw: vec![lane_bw; ranks],
            ingress_bw: vec![lane_bw; ranks],
            release_ns: vec![0; ranks],
            node_of: Vec::new(),
            n_nodes: 1,
            inter_bw: lane_bw,
            alpha_ns,
            inter_alpha_ns: alpha_ns,
            per_op_lane_ns: 0,
            bus: None,
            jitter_seed: 0,
            jitter_amp: 0.0,
        })
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.egress_bw.len()
    }

    /// Sets one rank's egress/ingress lane bandwidths (bytes/s).
    pub fn set_rank_bandwidth(
        &mut self,
        rank: usize,
        egress_bw: f64,
        ingress_bw: f64,
    ) -> Result<(), SimError> {
        let ranks = self.ranks();
        if rank >= ranks {
            return Err(SimError::BadRank { op: 0, rank, ranks });
        }
        self.egress_bw[rank] = egress_bw;
        self.ingress_bw[rank] = ingress_bw;
        Ok(())
    }

    /// Scales one rank's lanes by `factor` (straggler modelling).
    pub fn scale_rank_bandwidth(&mut self, rank: usize, factor: f64) -> Result<(), SimError> {
        let ranks = self.ranks();
        if rank >= ranks {
            return Err(SimError::BadRank { op: 0, rank, ranks });
        }
        self.egress_bw[rank] *= factor;
        self.ingress_bw[rank] *= factor;
        Ok(())
    }

    /// Delays every op touching `rank`'s lanes until `seconds` — a
    /// compute straggler that releases its gradient late.
    pub fn set_release(&mut self, rank: usize, seconds: f64) -> Result<(), SimError> {
        let ranks = self.ranks();
        if rank >= ranks {
            return Err(SimError::BadRank { op: 0, rank, ranks });
        }
        self.release_ns[rank] = sec_to_ns(seconds, "release")?;
        Ok(())
    }

    /// Groups ranks into nodes of `gpus_per_node` consecutive ranks.
    /// Cross-node transfers are capped at `inter_bw` bytes/s, pay
    /// `inter_alpha` seconds instead of the intra α, and serialize on
    /// their node's shared uplink (source side) and downlink
    /// (destination side) — which is what makes hierarchical schemes
    /// beat flat ones on slow interconnects.
    pub fn set_nodes(
        &mut self,
        gpus_per_node: usize,
        inter_bw: f64,
        inter_alpha: f64,
    ) -> Result<(), SimError> {
        if gpus_per_node == 0 {
            return Err(SimError::InvalidFabric("gpus_per_node must be positive"));
        }
        if !inter_bw.is_finite() || inter_bw <= 0.0 {
            return Err(SimError::InvalidFabric("inter bandwidth must be positive"));
        }
        let ranks = self.ranks();
        self.node_of = (0..ranks).map(|r| (r / gpus_per_node) as u32).collect();
        self.n_nodes = ranks.div_ceil(gpus_per_node);
        self.inter_bw = inter_bw;
        self.inter_alpha_ns = sec_to_ns(inter_alpha, "inter_alpha")?;
        Ok(())
    }

    /// Attaches a serial host bus: `per_op` seconds fixed occupancy per
    /// transfer plus `bytes_per_sec` streaming bandwidth.
    pub fn set_bus(&mut self, per_op: f64, bytes_per_sec: f64) -> Result<(), SimError> {
        if !bytes_per_sec.is_finite() || bytes_per_sec <= 0.0 {
            return Err(SimError::InvalidFabric("bus bandwidth must be positive"));
        }
        self.bus = Some(Bus {
            per_op_ns: sec_to_ns(per_op, "bus per_op")?,
            bytes_per_sec,
        });
        Ok(())
    }

    /// Adds a fixed per-op lane occupancy (seconds) — per-message CPU
    /// cost that does serialize the lane, unlike α.
    pub fn set_per_op_lane(&mut self, seconds: f64) -> Result<(), SimError> {
        self.per_op_lane_ns = sec_to_ns(seconds, "per_op_lane")?;
        Ok(())
    }

    /// Seeded multiplicative jitter: every op's duration is scaled by a
    /// deterministic pseudo-random factor in `[1-amp, 1+amp]`.
    /// `amp` must lie in `[0, 1)`.
    pub fn set_jitter(&mut self, seed: u64, amp: f64) -> Result<(), SimError> {
        if !amp.is_finite() || !(0.0..1.0).contains(&amp) {
            return Err(SimError::InvalidFabric("jitter amplitude must be in [0, 1)"));
        }
        self.jitter_seed = seed;
        self.jitter_amp = amp;
        Ok(())
    }

    /// Node id of `rank` (0 when the fabric is single-node).
    #[inline]
    fn node(&self, rank: usize) -> u32 {
        if self.node_of.is_empty() {
            0
        } else {
            self.node_of[rank]
        }
    }

    fn validate(&self) -> Result<(), SimError> {
        if self.ranks() == 0 {
            return Err(SimError::InvalidFabric("need at least one rank"));
        }
        for bw in self.egress_bw.iter().chain(self.ingress_bw.iter()) {
            if !bw.is_finite() || *bw <= 0.0 {
                return Err(SimError::InvalidFabric("lane bandwidth must be positive"));
            }
        }
        if !self.inter_bw.is_finite() || self.inter_bw <= 0.0 {
            return Err(SimError::InvalidFabric("inter bandwidth must be positive"));
        }
        if !self.jitter_amp.is_finite() || !(0.0..1.0).contains(&self.jitter_amp) {
            return Err(SimError::InvalidFabric("jitter amplitude must be in [0, 1)"));
        }
        if let Some(b) = &self.bus {
            if !b.bytes_per_sec.is_finite() || b.bytes_per_sec <= 0.0 {
                return Err(SimError::InvalidFabric("bus bandwidth must be positive"));
            }
        }
        Ok(())
    }
}

/// splitmix64 — the one-instruction-class PRNG behind deterministic
/// per-op jitter.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Deterministic per-op jitter multiplier in `[1-amp, 1+amp]`.
#[inline]
fn jitter_mult(seed: u64, op: u32, amp: f64) -> f64 {
    let u = splitmix64(seed ^ (op as u64).wrapping_mul(0x2545F4914F6CDD1D));
    let unit = (u >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
    1.0 + amp * (2.0 * unit - 1.0)
}

// ---------------------------------------------------------------------------
// Calendar-queue event wheel.
// ---------------------------------------------------------------------------

/// Bucketed event wheel: a power-of-two ring of time buckets of fixed
/// `width` ns. `push` appends to the bucket `t / width` maps to (or the
/// overflow list when `t` is beyond one full lap); `pop_min` scans the
/// current bucket for the least `(time, op)` pair, advancing the wheel
/// through empty buckets and draining overflow once per lap. With width
/// matched to the mean event gap, both operations are O(1) amortized.
///
/// Ordering invariant: pushed times never precede the last popped time
/// (completions are scheduled at or after "now"), so an event always
/// lands in the current or a future window and global `(time, op)`
/// order is preserved.
#[derive(Debug, Default)]
struct Wheel {
    buckets: Vec<Vec<(u64, u32)>>,
    mask: usize,
    width: u64,
    cur: usize,
    cur_start: u64,
    len: usize,
    in_buckets: usize,
    overflow: Vec<(u64, u32)>,
}

impl Wheel {
    fn reset(&mut self, nbuckets: usize, width: u64) {
        debug_assert!(nbuckets.is_power_of_two());
        if self.buckets.len() != nbuckets {
            self.buckets.resize_with(nbuckets, Vec::new);
        }
        if self.len != 0 {
            // Only reachable when a prior run aborted mid-flight.
            for b in &mut self.buckets {
                b.clear();
            }
        }
        self.mask = nbuckets - 1;
        self.width = width.max(1);
        self.cur = 0;
        self.cur_start = 0;
        self.len = 0;
        self.in_buckets = 0;
        self.overflow.clear();
    }

    #[inline]
    fn span(&self) -> u64 {
        self.width.saturating_mul(self.buckets.len() as u64)
    }

    #[inline]
    fn push(&mut self, t: u64, op: u32) {
        debug_assert!(t >= self.cur_start, "event pushed into the past");
        self.len += 1;
        if t < self.cur_start.saturating_add(self.span()) {
            let idx = ((t / self.width) as usize) & self.mask;
            self.buckets[idx].push((t, op));
            self.in_buckets += 1;
        } else {
            self.overflow.push((t, op));
        }
    }

    /// Moves every overflow event now within one lap into its bucket.
    fn drain_overflow(&mut self) {
        let limit = self.cur_start.saturating_add(self.span());
        let mut i = 0;
        while i < self.overflow.len() {
            if self.overflow[i].0 < limit {
                let (t, op) = self.overflow.swap_remove(i);
                let idx = ((t / self.width) as usize) & self.mask;
                self.buckets[idx].push((t, op));
                self.in_buckets += 1;
            } else {
                i += 1;
            }
        }
    }

    fn pop_min(&mut self) -> Option<(u64, u32)> {
        if self.len == 0 {
            return None;
        }
        loop {
            if self.in_buckets == 0 {
                // Everything pending is far-future: jump straight to the
                // earliest overflow event's window instead of spinning
                // through empty buckets.
                let min_t = self.overflow.iter().map(|e| e.0).min().expect("len > 0");
                let slot = min_t / self.width;
                self.cur_start = slot * self.width;
                self.cur = (slot as usize) & self.mask;
                self.drain_overflow();
                continue;
            }
            let window_end = self.cur_start.saturating_add(self.width);
            let bucket = &mut self.buckets[self.cur];
            let mut best: Option<usize> = None;
            for (k, &(t, op)) in bucket.iter().enumerate() {
                if t < window_end
                    && best.map_or(true, |b| {
                        let (bt, bop) = bucket[b];
                        (t, op) < (bt, bop)
                    })
                {
                    best = Some(k);
                }
            }
            if let Some(k) = best {
                let ev = bucket.swap_remove(k);
                self.len -= 1;
                self.in_buckets -= 1;
                return Some(ev);
            }
            self.cur = (self.cur + 1) & self.mask;
            self.cur_start = window_end;
            if self.cur == 0 {
                self.drain_overflow();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Run state and the event loop.
// ---------------------------------------------------------------------------

/// Reusable run-state buffers; allocate once, pass to every [`run`]
/// call in a sweep loop.
#[derive(Debug, Default)]
pub struct DesScratch {
    remaining: Vec<u32>,
    egress_free: Vec<u64>,
    ingress_free: Vec<u64>,
    uplink_free: Vec<u64>,
    downlink_free: Vec<u64>,
    wheel: Wheel,
}

impl DesScratch {
    /// Creates empty scratch; buffers grow on first use and are reused.
    pub fn new() -> Self {
        DesScratch::default()
    }
}

/// What a [`run`] produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Completion time of the last op, integer nanoseconds.
    pub makespan_ns: u64,
    /// Events processed (one completion per op).
    pub events: u64,
}

impl RunStats {
    /// Makespan in seconds.
    pub fn makespan_seconds(&self) -> f64 {
        self.makespan_ns as f64 / 1e9
    }
}

/// Executes `graph` on `fabric` with payloads priced against
/// `ref_bytes`; returns the makespan and event count.
///
/// Scheduling semantics (identical to the legacy heap core): an op is
/// scheduled the instant its last dependency completes; it claims its
/// lanes (source egress, destination ingress, plus the node uplink /
/// downlink pair when crossing nodes and the bus when one is
/// configured) at `start = max(ready, lane frees)`, holds them for the
/// op duration, and completes α later (α rides in flight — it does not
/// serialize lanes). Completions are processed in `(time, op index)`
/// order; dependents of one completion are scheduled in index order.
/// Time saturates at `u64::MAX` instead of overflowing.
pub fn run(
    graph: &OpGraph,
    fabric: &Fabric,
    ref_bytes: f64,
    scratch: &mut DesScratch,
) -> Result<RunStats, SimError> {
    run_inner(graph, fabric, ref_bytes, scratch, None)
}

/// Like [`run`], but also records each op's completion time (ns) into
/// `times` (cleared and resized to `graph.len()`).
pub fn run_with_times(
    graph: &OpGraph,
    fabric: &Fabric,
    ref_bytes: f64,
    scratch: &mut DesScratch,
    times: &mut Vec<u64>,
) -> Result<RunStats, SimError> {
    run_inner(graph, fabric, ref_bytes, scratch, Some(times))
}

fn run_inner(
    graph: &OpGraph,
    fabric: &Fabric,
    ref_bytes: f64,
    scratch: &mut DesScratch,
    mut times: Option<&mut Vec<u64>>,
) -> Result<RunStats, SimError> {
    fabric.validate()?;
    if !graph.sealed {
        return Err(SimError::Unsealed);
    }
    if !ref_bytes.is_finite() || ref_bytes < 0.0 {
        return Err(SimError::NonFinite("ref_bytes"));
    }
    let n = graph.len();
    let ranks = fabric.ranks();
    if n > 0 && graph.max_rank as usize >= ranks {
        let bad = graph.max_rank as usize;
        let op = (0..n)
            .find(|&i| graph.srcs[i] as usize == bad || graph.dsts[i] as usize == bad)
            .unwrap_or(0);
        return Err(SimError::BadRank { op, rank: bad, ranks });
    }
    if let Some(t) = times.as_deref_mut() {
        t.clear();
        t.resize(n, 0);
    }
    if n == 0 {
        return Ok(RunStats { makespan_ns: 0, events: 0 });
    }

    // --- reset scratch -----------------------------------------------------
    scratch.remaining.clear();
    scratch.remaining.extend_from_slice(&graph.indegree);
    scratch.egress_free.clear();
    scratch.egress_free.extend_from_slice(&fabric.release_ns);
    scratch.ingress_free.clear();
    scratch.ingress_free.extend_from_slice(&fabric.release_ns);
    scratch.uplink_free.clear();
    scratch.uplink_free.resize(fabric.n_nodes, 0);
    scratch.downlink_free.clear();
    scratch.downlink_free.resize(fabric.n_nodes, 0);

    // Wheel width ≈ estimated makespan / op count (the mean event gap);
    // one lap of the wheel covers ~2x the estimate so mis-estimates
    // only cost overflow drains, never correctness. The estimate uses
    // the *bottleneck* per-rank bandwidth: on a multi-node fabric most
    // chunks cross the shared uplinks, and with a serial bus every op
    // occupies it — underestimating the makespan by orders of magnitude
    // would make the wheel lap (and rescan its overflow list) that many
    // times.
    let avg_bw = fabric.egress_bw.iter().sum::<f64>() / ranks as f64;
    let eff_bw = if fabric.n_nodes > 1 {
        avg_bw.min(fabric.inter_bw * fabric.n_nodes as f64 / ranks as f64)
    } else {
        avg_bw
    };
    let mut est_ns = graph.frac_sum * ref_bytes / (eff_bw * ranks as f64) * 1e9
        + graph.fixed_sum as f64 / ranks as f64
        + fabric.alpha_ns as f64
        + fabric.inter_alpha_ns as f64;
    if let Some(bus) = fabric.bus {
        est_ns += n as f64 * bus.per_op_ns as f64
            + graph.frac_sum * ref_bytes / bus.bytes_per_sec * 1e9
            + graph.fixed_sum as f64;
    }
    let nbuckets = (n / 4).next_power_of_two().clamp(16, 65_536);
    let width = f64_to_ns(2.0 * est_ns / nbuckets as f64).max(1);
    scratch.wheel.reset(nbuckets, width);

    let mut bus_free: u64 = 0;
    let mut completed: usize = 0;
    let mut makespan: u64 = 0;

    macro_rules! schedule {
        ($op:expr, $ready:expr) => {{
            let op = $op as usize;
            let ready: u64 = $ready;
            let src = graph.srcs[op] as usize;
            let dst = graph.dsts[op] as usize;
            let frac = graph.fracs[op] as f64;
            let fixed = graph.fixed[op] as u64;
            if src == dst && frac == 0.0 && fixed == 0 {
                // Join: completes the instant it is ready.
                scratch.wheel.push(ready, op as u32);
            } else if src == dst {
                // Compute: occupies the rank's lanes (and bus) for
                // `fixed` ns; no α.
                let dur = if fabric.jitter_amp > 0.0 {
                    f64_to_ns(fixed as f64 * jitter_mult(fabric.jitter_seed, op as u32, fabric.jitter_amp))
                } else {
                    fixed
                };
                let mut start = ready.max(scratch.egress_free[src]).max(scratch.ingress_free[src]);
                if fabric.bus.is_some() {
                    start = start.max(bus_free);
                }
                let busy = start.saturating_add(dur);
                scratch.egress_free[src] = busy;
                scratch.ingress_free[src] = busy;
                if fabric.bus.is_some() {
                    bus_free = busy;
                }
                scratch.wheel.push(busy, op as u32);
            } else {
                let bytes = frac * ref_bytes;
                let src_node = fabric.node(src);
                let dst_node = fabric.node(dst);
                let cross = src_node != dst_node;
                let mut rate = fabric.egress_bw[src].min(fabric.ingress_bw[dst]);
                if cross {
                    rate = rate.min(fabric.inter_bw);
                }
                let jit = if fabric.jitter_amp > 0.0 {
                    jitter_mult(fabric.jitter_seed, op as u32, fabric.jitter_amp)
                } else {
                    1.0
                };
                let lane_ns = f64_to_ns(bytes / rate * 1e9 * jit)
                    .saturating_add(fixed)
                    .saturating_add(fabric.per_op_lane_ns);
                let mut start = ready.max(scratch.egress_free[src]).max(scratch.ingress_free[dst]);
                if cross {
                    start = start
                        .max(scratch.uplink_free[src_node as usize])
                        .max(scratch.downlink_free[dst_node as usize]);
                }
                if fabric.bus.is_some() {
                    start = start.max(bus_free);
                }
                let lane_busy = start.saturating_add(lane_ns);
                scratch.egress_free[src] = lane_busy;
                scratch.ingress_free[dst] = lane_busy;
                if cross {
                    scratch.uplink_free[src_node as usize] = lane_busy;
                    scratch.downlink_free[dst_node as usize] = lane_busy;
                }
                let mut end = lane_busy;
                if let Some(bus) = &fabric.bus {
                    let bus_ns = bus
                        .per_op_ns
                        .saturating_add(f64_to_ns(bytes / bus.bytes_per_sec * 1e9));
                    let bus_busy = start.saturating_add(bus_ns);
                    bus_free = bus_busy;
                    end = end.max(bus_busy);
                }
                let alpha = if cross { fabric.inter_alpha_ns } else { fabric.alpha_ns };
                scratch.wheel.push(end.saturating_add(alpha), op as u32);
            }
        }};
    }

    // Roots are ready at t=0, scheduled in index order (exactly the
    // legacy core's sorted initial ready list).
    for i in 0..n {
        if scratch.remaining[i] == 0 {
            schedule!(i as u32, 0);
        }
    }
    while let Some((t, op)) = scratch.wheel.pop_min() {
        if let Some(out) = times.as_deref_mut() {
            out[op as usize] = t;
        }
        makespan = makespan.max(t);
        completed += 1;
        // rdep lists are ascending, so dependents of one completion are
        // scheduled in index order — the legacy core's sorted ready set.
        for &d in graph.rdeps_of(op as usize) {
            let r = &mut scratch.remaining[d as usize];
            *r -= 1;
            if *r == 0 {
                schedule!(d, t);
            }
        }
    }
    if completed != n {
        return Err(SimError::Cycle { completed, total: n });
    }
    Ok(RunStats { makespan_ns: makespan, events: n as u64 })
}

// ---------------------------------------------------------------------------
// Streaming graph builders (reuse a caller-provided graph; no per-op Vecs).
// ---------------------------------------------------------------------------

fn check_ranks(ranks: usize) -> Result<(), SimError> {
    if ranks == 0 {
        return Err(SimError::InvalidFabric("need at least one rank"));
    }
    Ok(())
}

/// Index of the phase-1 SRA op `src → dst` (src-major push order).
#[inline]
fn sra_p1(ranks: usize, src: usize, dst: usize) -> u32 {
    (src * (ranks - 1) + if dst < src { dst } else { dst - 1 }) as u32
}

/// Builds a scatter-reduce-allgather allreduce of `ref_bytes` wire
/// bytes into `g` (cleared first, sealed after): every rank scatters
/// `1/n` chunks, a join per destination aggregates its inbox, and the
/// allgather fans back out from the join. `2n(n-1)` transfers, `n`
/// joins, `O(n²)` edges — the dense encoding's `O(n³)` edge blow-up is
/// what made 512-rank sweeps impossible.
pub fn build_sra(g: &mut OpGraph, ranks: usize) -> Result<(), SimError> {
    check_ranks(ranks)?;
    g.clear();
    let n = ranks;
    if n == 1 {
        g.seal();
        return Ok(());
    }
    let frac = 1.0 / n as f64;
    for i in 0..n {
        for j in 0..n {
            if j != i {
                g.push_transfer(i, j, frac, &[])?;
            }
        }
    }
    let mut deps: Vec<u32> = Vec::with_capacity(n - 1);
    let join0 = (n * (n - 1)) as u32;
    for j in 0..n {
        deps.clear();
        for i in 0..n {
            if i != j {
                deps.push(sra_p1(n, i, j));
            }
        }
        g.push_join(j, &deps)?;
    }
    for j in 0..n {
        for k in 0..n {
            if k != j {
                g.push_transfer(j, k, frac, &[join0 + j as u32])?;
            }
        }
    }
    g.seal();
    Ok(())
}

/// Builds a chunked ring allreduce into `g`: `2(n-1)` rounds, each rank
/// forwarding a `1/n` chunk to its right neighbour, gated on its
/// previous-round receive. Identical structure to the legacy builder.
pub fn build_ring(g: &mut OpGraph, ranks: usize) -> Result<(), SimError> {
    check_ranks(ranks)?;
    g.clear();
    let n = ranks;
    if n == 1 {
        g.seal();
        return Ok(());
    }
    let frac = 1.0 / n as f64;
    for s in 0..2 * (n - 1) {
        for i in 0..n {
            // Rank i's round-(s-1) receive is the op sent by its left
            // neighbour in round s-1 (round-major, src-order push).
            if s == 0 {
                g.push_transfer(i, (i + 1) % n, frac, &[])?;
            } else {
                let dep = ((s - 1) * n + (i + n - 1) % n) as u32;
                g.push_transfer(i, (i + 1) % n, frac, &[dep])?;
            }
        }
    }
    g.seal();
    Ok(())
}

/// Builds a binomial-tree allreduce (reduce to rank 0, then broadcast)
/// into `g`: `2⌈log₂n⌉` levels of full-payload (`frac = 1`) hops, each
/// hop gated on both endpoints' previous activity.
pub fn build_tree(g: &mut OpGraph, ranks: usize) -> Result<(), SimError> {
    check_ranks(ranks)?;
    g.clear();
    let n = ranks;
    if n == 1 {
        g.seal();
        return Ok(());
    }
    let mut last: Vec<Option<u32>> = vec![None; n];
    let mut deps: Vec<u32> = Vec::with_capacity(2);
    let hop = |g: &mut OpGraph,
                   last: &mut Vec<Option<u32>>,
                   deps: &mut Vec<u32>,
                   src: usize,
                   dst: usize|
     -> Result<(), SimError> {
        deps.clear();
        if let Some(p) = last[src] {
            deps.push(p);
        }
        if let Some(p) = last[dst] {
            if deps.first() != Some(&p) {
                deps.push(p);
            }
        }
        let op = g.push_transfer(src, dst, 1.0, deps)?;
        last[src] = Some(op);
        last[dst] = Some(op);
        Ok(())
    };
    let mut d = 1;
    while d < n {
        let mut r = 0;
        while r + d < n {
            hop(g, &mut last, &mut deps, r + d, r)?; // reduce: child → parent
            r += 2 * d;
        }
        d *= 2;
    }
    while d >= 1 {
        let mut r = 0;
        while r + d < n {
            hop(g, &mut last, &mut deps, r, r + d)?; // broadcast: parent → child
            r += 2 * d;
        }
        d /= 2;
    }
    g.seal();
    Ok(())
}

/// Builds the node-aware hierarchical allreduce of
/// `cgx_collectives::allreduce_hierarchical` into `g`: members stage
/// raw gradients (`frac = 1`) to their node leader, leaders run a
/// scatter-reduce-allgather among themselves with per-chunk
/// `inter_frac / nodes` payload (`inter_frac` is the compressed-wire
/// fraction of `ref_bytes`, e.g. `1/7.5` for 4-bit QSGD), and leaders
/// broadcast the raw result back. With [`Fabric::set_nodes`] in place
/// the leader phase automatically rides the shared inter-node lanes.
pub fn build_hierarchical(
    g: &mut OpGraph,
    nodes: usize,
    per_node: usize,
    inter_frac: f64,
) -> Result<(), SimError> {
    check_ranks(nodes)?;
    check_ranks(per_node)?;
    if !inter_frac.is_finite() || inter_frac < 0.0 {
        return Err(SimError::NonFinite("inter_frac"));
    }
    g.clear();
    let world = nodes * per_node;
    if world == 1 {
        g.seal();
        return Ok(());
    }
    let leader = |m: usize| m * per_node;
    // Stage 1: members push raw gradients to their leader.
    for m in 0..nodes {
        for k in 1..per_node {
            g.push_transfer(leader(m) + k, leader(m), 1.0, &[])?;
        }
    }
    // Per-leader join over its members (index formula: m-major push).
    let s1 = |m: usize, k: usize| (m * (per_node - 1) + (k - 1)) as u32;
    let stage1_join = (nodes * (per_node - 1)) as u32;
    let mut deps: Vec<u32> = Vec::with_capacity(nodes.max(per_node));
    for m in 0..nodes {
        deps.clear();
        for k in 1..per_node {
            deps.push(s1(m, k));
        }
        g.push_join(leader(m), &deps)?;
    }
    // Stage 2: compressed SRA among leaders.
    let done_join_of: u32;
    if nodes > 1 {
        let frac = inter_frac / nodes as f64;
        let p1_base = stage1_join + nodes as u32;
        for a in 0..nodes {
            for b in 0..nodes {
                if b != a {
                    g.push_transfer(leader(a), leader(b), frac, &[stage1_join + a as u32])?;
                }
            }
        }
        // Per-leader join over its SRA inbox, then allgather, then a
        // final per-leader join marking "result complete".
        let p1 = |a: usize, b: usize| p1_base + sra_p1(nodes, a, b);
        let sra_join = p1_base + (nodes * (nodes - 1)) as u32;
        for b in 0..nodes {
            deps.clear();
            for a in 0..nodes {
                if a != b {
                    deps.push(p1(a, b));
                }
            }
            g.push_join(leader(b), &deps)?;
        }
        let p2_base = sra_join + nodes as u32;
        for a in 0..nodes {
            for b in 0..nodes {
                if b != a {
                    g.push_transfer(leader(a), leader(b), frac, &[sra_join + a as u32])?;
                }
            }
        }
        let p2 = |a: usize, b: usize| p2_base + sra_p1(nodes, a, b);
        done_join_of = p2_base + (nodes * (nodes - 1)) as u32;
        for b in 0..nodes {
            deps.clear();
            deps.push(sra_join + b as u32); // own reduced chunk
            for a in 0..nodes {
                if a != b {
                    deps.push(p2(a, b));
                }
            }
            g.push_join(leader(b), &deps)?;
        }
    } else {
        done_join_of = stage1_join;
    }
    // Stage 3: leaders broadcast the raw result to their members.
    for m in 0..nodes {
        for k in 1..per_node {
            g.push_transfer(leader(m), leader(m) + k, 1.0, &[done_join_of + m as u32])?;
        }
    }
    g.seal();
    Ok(())
}

// ---------------------------------------------------------------------------
// Compatibility façade.
// ---------------------------------------------------------------------------

/// Reusable graph + scratch bundle for the [`NetworkDes`] convenience
/// methods; one per sweep thread avoids all per-call allocation.
#[derive(Debug, Default)]
pub struct SimWorkspace {
    /// The op graph the next build fills (reused across builds).
    pub graph: OpGraph,
    /// Run-state buffers (reused across runs).
    pub scratch: DesScratch,
}

impl SimWorkspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        SimWorkspace::default()
    }
}

/// The simulated network: `n` ranks, each with one egress and one
/// ingress lane of the given bandwidth, plus a per-transfer latency α.
///
/// Convenience façade over [`Fabric`] + the graph builders + [`run`];
/// use those directly for heterogeneous fabrics or sweep loops.
#[derive(Debug, Clone, Copy)]
pub struct NetworkDes {
    /// Number of ranks.
    pub ranks: usize,
    /// Per-lane bandwidth, bytes/s.
    pub lane_bw: f64,
    /// Per-transfer latency, seconds.
    pub alpha: f64,
}

impl NetworkDes {
    /// Creates a network.
    ///
    /// # Panics
    ///
    /// Panics on zero ranks or non-positive bandwidth (programmer
    /// error); runtime-sourced parameters flow through
    /// [`Fabric::uniform`], which returns [`SimError`] instead.
    pub fn new(ranks: usize, lane_bw: f64, alpha: f64) -> Self {
        assert!(ranks > 0, "need at least one rank");
        assert!(lane_bw > 0.0, "bandwidth must be positive");
        assert!(alpha >= 0.0, "alpha must be non-negative");
        NetworkDes { ranks, lane_bw, alpha }
    }

    fn fabric(&self) -> Result<Fabric, SimError> {
        Fabric::uniform(self.ranks, self.lane_bw, self.alpha)
    }

    /// Simulates a scatter-reduce-allgather allreduce of `total_bytes`
    /// (wire); returns the makespan in seconds.
    pub fn sra_allreduce(&self, total_bytes: f64) -> Result<f64, SimError> {
        self.sra_allreduce_with(total_bytes, &mut SimWorkspace::new())
    }

    /// [`sra_allreduce`](Self::sra_allreduce) reusing caller scratch.
    pub fn sra_allreduce_with(
        &self,
        total_bytes: f64,
        ws: &mut SimWorkspace,
    ) -> Result<f64, SimError> {
        build_sra(&mut ws.graph, self.ranks)?;
        let stats = run(&ws.graph, &self.fabric()?, total_bytes, &mut ws.scratch)?;
        Ok(stats.makespan_seconds())
    }

    /// Simulates a chunked ring allreduce of `total_bytes` (wire);
    /// returns the makespan in seconds.
    pub fn ring_allreduce(&self, total_bytes: f64) -> Result<f64, SimError> {
        self.ring_allreduce_with(total_bytes, &mut SimWorkspace::new())
    }

    /// [`ring_allreduce`](Self::ring_allreduce) reusing caller scratch.
    pub fn ring_allreduce_with(
        &self,
        total_bytes: f64,
        ws: &mut SimWorkspace,
    ) -> Result<f64, SimError> {
        build_ring(&mut ws.graph, self.ranks)?;
        let stats = run(&ws.graph, &self.fabric()?, total_bytes, &mut ws.scratch)?;
        Ok(stats.makespan_seconds())
    }

    /// Simulates a binomial-tree allreduce of `total_bytes` (wire);
    /// returns the makespan in seconds.
    pub fn tree_allreduce(&self, total_bytes: f64) -> Result<f64, SimError> {
        self.tree_allreduce_with(total_bytes, &mut SimWorkspace::new())
    }

    /// [`tree_allreduce`](Self::tree_allreduce) reusing caller scratch.
    pub fn tree_allreduce_with(
        &self,
        total_bytes: f64,
        ws: &mut SimWorkspace,
    ) -> Result<f64, SimError> {
        build_tree(&mut ws.graph, self.ranks)?;
        let stats = run(&ws.graph, &self.fabric()?, total_bytes, &mut ws.scratch)?;
        Ok(stats.makespan_seconds())
    }
}

/// The pre-rewrite `f64`-time `BinaryHeap` DES core, preserved verbatim
/// as a validation oracle and performance baseline. The pinned-seed
/// corpus test proves the wheel core reproduces its makespans exactly;
/// the criterion bench and `sim_sweep` measure the speedup against it.
/// Not part of the supported API.
#[doc(hidden)]
pub mod legacy {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    /// One point-to-point transfer operation in the dependency graph.
    #[derive(Debug, Clone)]
    pub struct SendOp {
        /// Source rank (occupies its egress lane).
        pub src: usize,
        /// Destination rank (occupies its ingress lane).
        pub dst: usize,
        /// Payload bytes.
        pub bytes: f64,
        /// Indices of operations that must complete before this one may start.
        pub deps: Vec<usize>,
    }

    impl SendOp {
        /// Creates a transfer with no dependencies.
        pub fn new(src: usize, dst: usize, bytes: f64) -> Self {
            SendOp { src, dst, bytes, deps: Vec::new() }
        }

        /// Adds dependencies.
        pub fn after(mut self, deps: impl IntoIterator<Item = usize>) -> Self {
            self.deps.extend(deps);
            self
        }
    }

    /// The simulated network: `n` ranks, each with one egress and one ingress
    /// lane of the given bandwidth, plus a per-transfer latency α.
    #[derive(Debug, Clone, Copy)]
    pub struct NetworkDes {
        /// Number of ranks.
        pub ranks: usize,
        /// Per-lane bandwidth, bytes/s.
        pub lane_bw: f64,
        /// Per-transfer latency, seconds.
        pub alpha: f64,
    }

    #[derive(Debug, PartialEq)]
    struct Completion {
        time: f64,
        op: usize,
    }

    impl Eq for Completion {}

    impl Ord for Completion {
        fn cmp(&self, other: &Self) -> Ordering {
            // Min-heap on time (ties by op index for determinism).
            other
                .time
                .partial_cmp(&self.time)
                .expect("finite times")
                .then(other.op.cmp(&self.op))
        }
    }

    impl PartialOrd for Completion {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    /// Builds the legacy dense scatter-reduce-allgather op list:
    /// phase 2 depends on every phase-1 op addressed to its source —
    /// `O(n³)` dependency edges.
    pub fn sra_ops(ranks: usize, chunk: f64) -> Vec<SendOp> {
        let n = ranks;
        let mut ops = Vec::new();
        let mut phase1_of_dst: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in 0..n {
            for (j, inbox) in phase1_of_dst.iter_mut().enumerate() {
                if j == i {
                    continue;
                }
                inbox.push(ops.len());
                ops.push(SendOp::new(i, j, chunk));
            }
        }
        for (j, inbox) in phase1_of_dst.iter().enumerate() {
            for k in 0..n {
                if k == j {
                    continue;
                }
                ops.push(SendOp::new(j, k, chunk).after(inbox.iter().copied()));
            }
        }
        ops
    }

    /// Builds the legacy chunked-ring op list.
    pub fn ring_ops(ranks: usize, chunk: f64) -> Vec<SendOp> {
        let n = ranks;
        let mut ops: Vec<SendOp> = Vec::new();
        let mut prev_recv_op: Vec<Option<usize>> = vec![None; n];
        for _s in 0..2 * (n - 1) {
            let mut this_round: Vec<Option<usize>> = vec![None; n];
            for (i, prev) in prev_recv_op.iter().enumerate() {
                let right = (i + 1) % n;
                let mut op = SendOp::new(i, right, chunk);
                if let Some(p) = prev {
                    op = op.after([*p]);
                }
                this_round[right] = Some(ops.len());
                ops.push(op);
            }
            prev_recv_op = this_round;
        }
        ops
    }

    impl NetworkDes {
        /// Creates a network.
        pub fn new(ranks: usize, lane_bw: f64, alpha: f64) -> Self {
            assert!(ranks > 0, "need at least one rank");
            assert!(lane_bw > 0.0, "bandwidth must be positive");
            assert!(alpha >= 0.0, "alpha must be non-negative");
            NetworkDes { ranks, lane_bw, alpha }
        }

        /// Executes the operation graph; returns per-op completion times and
        /// the makespan.
        pub fn run(&self, ops: &[SendOp]) -> (Vec<f64>, f64) {
            for (i, op) in ops.iter().enumerate() {
                assert!(op.src < self.ranks && op.dst < self.ranks, "op {i}: bad rank");
                assert!(op.src != op.dst, "op {i}: self-send");
            }
            let n_ops = ops.len();
            let mut remaining_deps: Vec<usize> = ops.iter().map(|o| o.deps.len()).collect();
            let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n_ops];
            for (i, op) in ops.iter().enumerate() {
                for &d in &op.deps {
                    assert!(d < n_ops, "op {i}: dependency {d} out of range");
                    dependents[d].push(i);
                }
            }
            let mut egress_free = vec![0.0f64; self.ranks];
            let mut ingress_free = vec![0.0f64; self.ranks];
            let mut ready_at = vec![f64::INFINITY; n_ops];
            let mut done_at = vec![f64::NEG_INFINITY; n_ops];
            let mut scheduled = vec![false; n_ops];
            let mut ready: Vec<usize> = Vec::new();
            for (i, r) in remaining_deps.iter().enumerate() {
                if *r == 0 {
                    ready_at[i] = 0.0;
                    ready.push(i);
                }
            }
            let mut heap: BinaryHeap<Completion> = BinaryHeap::new();
            let mut completed = 0usize;
            let mut makespan = 0.0f64;
            loop {
                ready.sort_unstable();
                for &i in &ready {
                    if scheduled[i] {
                        continue;
                    }
                    let op = &ops[i];
                    let start = ready_at[i].max(egress_free[op.src]).max(ingress_free[op.dst]);
                    // Bandwidth occupies the lanes; latency rides in flight.
                    let lane_busy_until = start + op.bytes / self.lane_bw;
                    let end = lane_busy_until + self.alpha;
                    egress_free[op.src] = lane_busy_until;
                    ingress_free[op.dst] = lane_busy_until;
                    scheduled[i] = true;
                    heap.push(Completion { time: end, op: i });
                }
                ready.clear();
                let Some(Completion { time, op }) = heap.pop() else {
                    break;
                };
                done_at[op] = time;
                makespan = makespan.max(time);
                completed += 1;
                for &d in &dependents[op] {
                    remaining_deps[d] -= 1;
                    if remaining_deps[d] == 0 {
                        ready_at[d] = time;
                        ready.push(d);
                    }
                }
            }
            assert_eq!(completed, n_ops, "dependency cycle: not all ops ran");
            (done_at, makespan)
        }

        /// Dense scatter-reduce-allgather allreduce makespan.
        pub fn sra_allreduce(&self, total_bytes: f64) -> f64 {
            if self.ranks == 1 {
                return 0.0;
            }
            let ops = sra_ops(self.ranks, total_bytes / self.ranks as f64);
            self.run(&ops).1
        }

        /// Chunked ring allreduce makespan.
        pub fn ring_allreduce(&self, total_bytes: f64) -> f64 {
            if self.ranks == 1 {
                return 0.0;
            }
            let ops = ring_ops(self.ranks, total_bytes / self.ranks as f64);
            self.run(&ops).1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::{allreduce_time, CommCost, ReductionScheme};

    fn uniform(ranks: usize, bw: f64, alpha: f64) -> Fabric {
        Fabric::uniform(ranks, bw, alpha).expect("fabric")
    }

    /// Runs a hand-built graph, returning (per-op times, makespan).
    fn run_graph(g: &OpGraph, f: &Fabric, ref_bytes: f64) -> (Vec<u64>, u64) {
        let mut times = Vec::new();
        let stats = run_with_times(g, f, ref_bytes, &mut DesScratch::new(), &mut times)
            .expect("run");
        (times, stats.makespan_ns)
    }

    #[test]
    fn single_transfer_takes_alpha_plus_bytes_over_bw() {
        let mut g = OpGraph::new();
        g.push_transfer(0, 1, 1.0, &[]).unwrap();
        g.seal();
        let (done, makespan) = run_graph(&g, &uniform(2, 1e9, 10e-6), 1e6);
        // 1 MB over 1 GB/s = 1 ms, plus 10 µs of α.
        assert_eq!(done[0], 1_000_000 + 10_000);
        assert_eq!(makespan, done[0]);
    }

    #[test]
    fn same_source_transfers_serialize() {
        let mut g = OpGraph::new();
        g.push_transfer(0, 1, 1.0, &[]).unwrap();
        g.push_transfer(0, 2, 1.0, &[]).unwrap();
        g.seal();
        let (done, _) = run_graph(&g, &uniform(3, 1e9, 0.0), 1e6);
        assert_eq!(done[0], 1_000_000);
        assert_eq!(done[1], 2_000_000, "egress lane must serialize");
    }

    #[test]
    fn different_lanes_run_concurrently() {
        let mut g = OpGraph::new();
        g.push_transfer(0, 1, 1.0, &[]).unwrap();
        g.push_transfer(2, 3, 1.0, &[]).unwrap();
        g.seal();
        let (done, makespan) = run_graph(&g, &uniform(4, 1e9, 0.0), 1e6);
        assert_eq!(done, vec![1_000_000, 1_000_000]);
        assert_eq!(makespan, 1_000_000);
    }

    #[test]
    fn dependencies_are_respected() {
        let mut g = OpGraph::new();
        g.push_transfer(0, 1, 1.0, &[]).unwrap();
        g.push_transfer(2, 3, 1.0, &[0]).unwrap(); // waits despite free lanes
        g.seal();
        let (done, _) = run_graph(&g, &uniform(4, 1e9, 0.0), 1e6);
        assert!(done[1] >= done[0] + 1_000_000);
    }

    #[test]
    fn joins_are_free_and_instant() {
        let mut g = OpGraph::new();
        g.push_transfer(0, 1, 1.0, &[]).unwrap();
        let j = g.push_join(1, &[0]).unwrap();
        g.push_transfer(1, 2, 1.0, &[j]).unwrap();
        g.seal();
        let (done, _) = run_graph(&g, &uniform(3, 1e9, 0.0), 1e6);
        assert_eq!(done[1], done[0], "join completes with its last dep");
        assert_eq!(done[2], done[0] + 1_000_000);
    }

    #[test]
    fn errors_not_panics_on_malformed_inputs() {
        let mut g = OpGraph::new();
        assert!(matches!(g.push_transfer(1, 1, 1.0, &[]), Err(SimError::BadRank { .. })));
        assert!(matches!(
            g.push_transfer(0, 1, 1.0, &[5]),
            Err(SimError::DepOutOfRange { .. })
        ));
        assert!(matches!(
            g.push_transfer(0, 1, f64::NAN, &[]),
            Err(SimError::NonFinite(_))
        ));
        g.push_transfer(0, 7, 1.0, &[]).unwrap();
        let mut scratch = DesScratch::new();
        // Unsealed graph.
        assert_eq!(
            run(&g, &uniform(8, 1e9, 0.0), 1.0, &mut scratch).unwrap_err(),
            SimError::Unsealed
        );
        g.seal();
        // Rank 7 does not fit a 4-rank fabric.
        assert!(matches!(
            run(&g, &uniform(4, 1e9, 0.0), 1.0, &mut scratch),
            Err(SimError::BadRank { rank: 7, ranks: 4, .. })
        ));
        // Non-finite payload.
        assert_eq!(
            run(&g, &uniform(8, 1e9, 0.0), f64::INFINITY, &mut scratch).unwrap_err(),
            SimError::NonFinite("ref_bytes")
        );
        // Malformed fabrics are Err, not panic.
        assert!(Fabric::uniform(0, 1e9, 0.0).is_err());
        assert!(Fabric::uniform(2, f64::NAN, 0.0).is_err());
        assert!(Fabric::uniform(2, 1e9, -1.0).is_err());
        let mut f = uniform(2, 1e9, 0.0);
        assert!(f.set_jitter(1, 1.5).is_err());
        assert!(f.set_nodes(0, 1e9, 0.0).is_err());
        // A NaN smuggled into the public fields surfaces as Err at run.
        let net = NetworkDes { ranks: 2, lane_bw: f64::NAN, alpha: 0.0 };
        assert!(net.sra_allreduce(1e6).is_err());
    }

    #[test]
    fn des_sra_matches_analytic_within_factor_two() {
        let mut ws = SimWorkspace::new();
        for n in [2usize, 4, 8] {
            for bytes in [1e6, 100e6] {
                let bw = 2e9;
                let net = NetworkDes::new(n, bw, 10e-6);
                let des = net.sra_allreduce_with(bytes, &mut ws).unwrap();
                let analytic = allreduce_time(
                    ReductionScheme::ScatterReduceAllgather,
                    n,
                    bytes as usize,
                    CommCost::new(bw, 10e-6),
                );
                let ratio = des / analytic;
                assert!(
                    (0.5..2.0).contains(&ratio),
                    "n={n} bytes={bytes}: DES {des:.4} vs analytic {analytic:.4}"
                );
            }
        }
    }

    #[test]
    fn des_ring_matches_analytic_within_factor_two() {
        let mut ws = SimWorkspace::new();
        for n in [2usize, 4, 8] {
            let bw = 2e9;
            let bytes = 50e6;
            let net = NetworkDes::new(n, bw, 10e-6);
            let des = net.ring_allreduce_with(bytes, &mut ws).unwrap();
            let analytic =
                allreduce_time(ReductionScheme::Ring, n, bytes as usize, CommCost::new(bw, 10e-6));
            let ratio = des / analytic;
            assert!(
                (0.5..2.0).contains(&ratio),
                "n={n}: DES {des:.4} vs analytic {analytic:.4}"
            );
        }
    }

    #[test]
    fn des_times_scale_linearly_in_bytes() {
        let net = NetworkDes::new(8, 1e9, 0.0);
        let t1 = net.sra_allreduce(10e6).unwrap();
        let t2 = net.sra_allreduce(20e6).unwrap();
        assert!((t2 / t1 - 2.0).abs() < 0.05, "{t1} vs {t2}");
    }

    #[test]
    fn ring_latency_grows_with_ranks_sra_does_not() {
        // The latency-term difference that makes SRA win (Figure 10): at
        // tiny payloads, ring pays 2(n-1) alphas on the critical path.
        let alpha = 1e-3;
        let tiny = 8.0 * 64.0; // 64 bytes/rank
        let sra8 = NetworkDes::new(8, 1e9, alpha).sra_allreduce(tiny).unwrap();
        let ring8 = NetworkDes::new(8, 1e9, alpha).ring_allreduce(tiny).unwrap();
        assert!(
            ring8 > 1.5 * sra8,
            "ring {ring8:.4} should pay far more latency than SRA {sra8:.4}"
        );
    }

    #[test]
    fn single_rank_is_free() {
        let net = NetworkDes::new(1, 1e9, 1e-3);
        assert_eq!(net.sra_allreduce(1e9).unwrap(), 0.0);
        assert_eq!(net.ring_allreduce(1e9).unwrap(), 0.0);
        assert_eq!(net.tree_allreduce(1e9).unwrap(), 0.0);
    }

    /// Dense (join-free) SRA with frac payloads, mirroring the legacy
    /// builder's op order — the quadratic-edge encoding build_sra's
    /// joins replace.
    fn dense_sra_frac(g: &mut OpGraph, n: usize) {
        g.clear();
        let frac = 1.0 / n as f64;
        let mut deps: Vec<u32> = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if j != i {
                    g.push_transfer(i, j, frac, &[]).unwrap();
                }
            }
        }
        for j in 0..n {
            deps.clear();
            for i in 0..n {
                if i != j {
                    deps.push(sra_p1(n, i, j));
                }
            }
            for k in 0..n {
                if k != j {
                    g.push_transfer(j, k, frac, &deps).unwrap();
                }
            }
        }
        g.seal();
    }

    #[test]
    fn join_sra_matches_dense_sra_on_uniform_fabrics() {
        let mut sparse = OpGraph::new();
        let mut dense = OpGraph::new();
        for n in [2usize, 4, 8, 16] {
            for bytes in [4096.0, 1e6, 100e6] {
                build_sra(&mut sparse, n).unwrap();
                dense_sra_frac(&mut dense, n);
                let f = uniform(n, 2e9, 10e-6);
                let a = run_graph(&sparse, &f, bytes).1;
                let b = run_graph(&dense, &f, bytes).1;
                assert_eq!(a, b, "n={n} bytes={bytes}");
            }
        }
    }

    // --- pinned-seed equivalence corpus vs the legacy heap core ----------
    //
    // Durations are fed as exact integers (legacy: bytes at bw=1.0, so
    // its f64 arithmetic is exact integer addition in "nanosecond"
    // units; new core: the fixed_ns field), making makespans comparable
    // bit-for-bit, not just approximately.

    fn corpus_dag(seed: u64, ranks: usize, n_ops: usize) -> Vec<legacy::SendOp> {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            splitmix64(state)
        };
        let mut ops = Vec::with_capacity(n_ops);
        for i in 0..n_ops {
            let src = (next() % ranks as u64) as usize;
            let mut dst = (next() % (ranks as u64 - 1)) as usize;
            if dst >= src {
                dst += 1;
            }
            let dur = 1 + next() % 1_000_000;
            let mut op = legacy::SendOp::new(src, dst, dur as f64);
            if i > 0 {
                for _ in 0..next() % 4 {
                    let d = (next() % i as u64) as usize;
                    if !op.deps.contains(&d) {
                        op.deps.push(d);
                    }
                }
            }
            ops.push(op);
        }
        ops
    }

    fn graph_from_legacy(ops: &[legacy::SendOp]) -> OpGraph {
        let mut g = OpGraph::with_capacity(ops.len(), ops.len());
        let mut deps: Vec<u32> = Vec::new();
        for op in ops {
            deps.clear();
            deps.extend(op.deps.iter().map(|&d| d as u32));
            g.push(op.src, op.dst, 0.0, op.bytes as u32, &deps).unwrap();
        }
        g.seal();
        g
    }

    fn assert_identical(ops: &[legacy::SendOp], ranks: usize, alpha_units: u64, label: &str) {
        let old = legacy::NetworkDes::new(ranks, 1.0, alpha_units as f64);
        let (old_times, old_makespan) = old.run(ops);
        let g = graph_from_legacy(ops);
        let f = uniform(ranks, 1.0, alpha_units as f64 * 1e-9);
        let (new_times, new_makespan) = run_graph(&g, &f, 0.0);
        assert_eq!(old_makespan as u64, new_makespan, "{label}: makespan");
        for (i, (o, n)) in old_times.iter().zip(&new_times).enumerate() {
            assert_eq!(*o as u64, *n, "{label}: op {i} completion");
        }
    }

    #[test]
    fn wheel_matches_legacy_on_pinned_corpus() {
        // Random DAGs across seeds, rank counts, and α values.
        for &seed in &[1u64, 7, 42, 1234, 0xC6C] {
            for &ranks in &[2usize, 3, 5, 8, 16] {
                for &alpha in &[0u64, 500, 123_456] {
                    let ops = corpus_dag(seed.wrapping_mul(31).wrapping_add(ranks as u64), ranks, 200);
                    assert_identical(&ops, ranks, alpha, &format!("dag s{seed} n{ranks} a{alpha}"));
                }
            }
        }
        // The legacy collective builders themselves (dense SRA, ring).
        for &ranks in &[2usize, 3, 5, 8] {
            let chunk = 777_000.0;
            assert_identical(&legacy::sra_ops(ranks, chunk), ranks, 500, &format!("sra n{ranks}"));
            assert_identical(&legacy::ring_ops(ranks, chunk), ranks, 500, &format!("ring n{ranks}"));
        }
    }

    // --- heterogeneity ----------------------------------------------------

    #[test]
    fn compute_ops_serialize_on_the_bus() {
        let mut g = OpGraph::new();
        for r in 0..4 {
            g.push_compute(r, 1_000, &[]).unwrap();
        }
        g.seal();
        // Without a bus, computes on distinct ranks run in parallel.
        let (_, free) = run_graph(&g, &uniform(4, 1e9, 0.0), 0.0);
        assert_eq!(free, 1_000);
        // With a serial bus they stack: 4 x 1 µs.
        let mut f = uniform(4, 1e9, 0.0);
        f.set_bus(0.0, 1e9).unwrap();
        let (_, bused) = run_graph(&g, &f, 0.0);
        assert_eq!(bused, 4_000);
    }

    #[test]
    fn bus_charges_per_op_and_bytes_on_transfers() {
        let mut g = OpGraph::new();
        g.push_transfer(0, 1, 1.0, &[]).unwrap();
        g.push_transfer(2, 3, 1.0, &[]).unwrap();
        g.seal();
        let mut f = uniform(4, 1e12, 0.0); // lanes effectively free
        f.set_bus(10e-6, 1e9).unwrap(); // 10 µs/op + 1 GB/s
        let (done, makespan) = run_graph(&g, &f, 1e6);
        // Each op: 10 µs + 1 ms of bus; the second queues behind the first.
        assert_eq!(done[0], 1_010_000);
        assert_eq!(makespan, 2_020_000);
    }

    #[test]
    fn stragglers_delay_and_slow_lanes() {
        let mut g = OpGraph::new();
        g.push_transfer(0, 1, 1.0, &[]).unwrap();
        g.seal();
        let mut f = uniform(2, 1e9, 0.0);
        f.set_release(0, 1e-3).unwrap();
        let (_, m) = run_graph(&g, &f, 1e6);
        assert_eq!(m, 2_000_000, "release offset shifts the transfer");
        let mut f = uniform(2, 1e9, 0.0);
        f.scale_rank_bandwidth(0, 0.5).unwrap();
        let (_, m) = run_graph(&g, &f, 1e6);
        assert_eq!(m, 2_000_000, "halved egress bandwidth doubles the time");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let mut g = OpGraph::new();
        build_sra(&mut g, 8).unwrap();
        let mut f = uniform(8, 1e9, 10e-6);
        f.set_jitter(7, 0.2).unwrap();
        let a = run_graph(&g, &f, 1e7).1;
        let b = run_graph(&g, &f, 1e7).1;
        assert_eq!(a, b, "same seed, same makespan");
        let clean = run_graph(&g, &uniform(8, 1e9, 10e-6), 1e7).1;
        assert!(a as f64 >= clean as f64 * 0.8 && a as f64 <= clean as f64 * 1.2);
        f.set_jitter(8, 0.2).unwrap();
        let c = run_graph(&g, &f, 1e7).1;
        assert_ne!(a, c, "different seed perturbs the schedule");
    }

    #[test]
    fn hierarchical_beats_flat_on_slow_interconnects() {
        // 4 nodes x 4 GPUs, fast intra (10 GB/s) but slow inter
        // (0.5 GB/s) — the genesis-cluster regime where the paper's
        // hierarchical scheme wins.
        let mut f = uniform(16, 10e9, 10e-6);
        f.set_nodes(4, 0.5e9, 1e-4).unwrap();
        let mut flat = OpGraph::new();
        build_sra(&mut flat, 16).unwrap();
        let mut hier = OpGraph::new();
        build_hierarchical(&mut hier, 4, 4, 1.0 / 7.5).unwrap();
        let t_flat = run_graph(&flat, &f, 100e6).1;
        let t_hier = run_graph(&hier, &f, 100e6).1;
        assert!(
            t_hier * 2 < t_flat,
            "hier {t_hier}ns should be <2x flat {t_flat}ns"
        );
        // And on a single fast node, flat SRA wins (hier pays raw staging).
        let f1 = uniform(16, 10e9, 10e-6);
        let t_flat1 = run_graph(&flat, &f1, 100e6).1;
        let t_hier1 = run_graph(&hier, &f1, 100e6).1;
        assert!(t_flat1 < t_hier1);
    }

    #[test]
    fn wheel_overflow_and_jump_paths_are_exact() {
        // Three chained 1 ns ops with a huge in-flight α: completions
        // land far beyond one wheel lap, exercising overflow + jump.
        let mut g = OpGraph::new();
        g.push(0, 1, 0.0, 1, &[]).unwrap();
        g.push(0, 1, 0.0, 1, &[0]).unwrap();
        g.push(0, 1, 0.0, 1, &[1]).unwrap();
        g.seal();
        let f = uniform(2, 1e9, 0.1); // α = 1e8 ns
        let (done, makespan) = run_graph(&g, &f, 0.0);
        assert_eq!(done[0], 100_000_001);
        assert_eq!(done[1], 200_000_002);
        assert_eq!(done[2], 300_000_003);
        assert_eq!(makespan, 300_000_003);
    }

    #[test]
    fn empty_and_trivial_graphs() {
        let mut g = OpGraph::new();
        g.seal();
        let stats = run(&g, &uniform(1, 1e9, 0.0), 1e9, &mut DesScratch::new()).unwrap();
        assert_eq!(stats.makespan_ns, 0);
        assert_eq!(stats.events, 0);
        build_sra(&mut g, 1).unwrap();
        assert!(g.is_empty() && g.is_sealed());
    }
}
