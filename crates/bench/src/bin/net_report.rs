//! Wire-level communication report for the TCP fabric.
//!
//! Every byte here crosses a real loopback socket: for 2, 4, and 8 ranks
//! the report runs compressed scatter-reduce-allgather over
//! [`cgx_net::TcpFabric`] twice — full-precision FP32 and 4-bit QSGD
//! (the CGX default) — and records the bytes each rank actually put on
//! the wire (frame headers included) plus the mean step wall time.
//!
//! Emits `BENCH_net.json` and asserts the paper's headline property on
//! measured traffic: 4-bit quantization cuts wire bytes by at least 6x
//! versus FP32 at every world size.

use cgx_collectives::reduce::allreduce_sra;
use cgx_collectives::{barrier, Transport};
use cgx_compress::CompressionScheme;
use cgx_net::TcpFabric;
use cgx_tensor::{Rng, Tensor};
use std::time::{Duration, Instant};

/// Gradient elements per step: big enough that header overhead is noise,
/// small enough that 8 ranks over loopback finish in seconds.
const ELEMS: usize = 64 * 1024;
const REPS: usize = 5;

#[derive(Clone, Copy)]
enum Mode {
    Fp32,
    Q4,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Fp32 => "fp32",
            Mode::Q4 => "q4",
        }
    }

    fn scheme(self) -> CompressionScheme {
        match self {
            Mode::Fp32 => CompressionScheme::None,
            Mode::Q4 => CompressionScheme::Qsgd {
                bits: 4,
                bucket_size: 128,
            },
        }
    }
}

struct Measurement {
    /// Wire bytes sent per rank per step (max over ranks).
    wire_bytes_per_step: u64,
    /// Mean step wall time (max over ranks).
    step: Duration,
}

fn measure(world: usize, mode: Mode) -> Measurement {
    let eps = TcpFabric::build_local(world);
    let per_rank: Vec<(u64, Duration)> = std::thread::scope(|s| {
        let handles: Vec<_> = eps
            .into_iter()
            .map(|ep| {
                s.spawn(move || {
                    let mut grad_rng = Rng::seed_from_u64(7 + ep.rank() as u64);
                    let grad = Tensor::randn(&mut grad_rng, &[ELEMS]);
                    let mut comp = mode.scheme().build();
                    let mut rng = Rng::seed_from_u64(11 + ep.rank() as u64);
                    barrier(&ep).expect("barrier");
                    let base = ep.wire_bytes_sent();
                    let start = Instant::now();
                    for _ in 0..REPS {
                        allreduce_sra(&ep, &grad, comp.as_mut(), &mut rng).expect("allreduce");
                    }
                    let elapsed = start.elapsed();
                    let bytes = ep.wire_bytes_sent() - base;
                    (bytes / REPS as u64, elapsed / REPS as u32)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread"))
            .collect()
    });
    Measurement {
        wire_bytes_per_step: per_rank.iter().map(|(b, _)| *b).max().expect("ranks"),
        step: per_rank.iter().map(|(_, d)| *d).max().expect("ranks"),
    }
}

fn main() {
    let worlds = [2usize, 4, 8];
    let mut rows = Vec::new();
    for &world in &worlds {
        let fp32 = measure(world, Mode::Fp32);
        let q4 = measure(world, Mode::Q4);
        let ratio = fp32.wire_bytes_per_step as f64 / q4.wire_bytes_per_step as f64;
        println!(
            "world {world}: fp32 {} B/step ({:.2?}), q4 {} B/step ({:.2?}), ratio {ratio:.2}x",
            fp32.wire_bytes_per_step, fp32.step, q4.wire_bytes_per_step, q4.step
        );
        assert!(
            ratio >= 6.0,
            "4-bit wire traffic must be >=6x smaller than fp32 at world {world}, got {ratio:.2}x"
        );
        rows.push((world, fp32, q4, ratio));
    }
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"elements\": {ELEMS},\n"));
    json.push_str(&format!("  \"reps\": {REPS},\n"));
    json.push_str("  \"fabric\": \"tcp-loopback\",\n");
    json.push_str("  \"worlds\": [\n");
    for (i, (world, fp32, q4, ratio)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"world\": {world}, \"{}_wire_bytes_per_step\": {}, \"{}_step_us\": {}, \"{}_wire_bytes_per_step\": {}, \"{}_step_us\": {}, \"compression_ratio\": {ratio:.2}}}{}\n",
            Mode::Fp32.label(),
            fp32.wire_bytes_per_step,
            Mode::Fp32.label(),
            fp32.step.as_micros(),
            Mode::Q4.label(),
            q4.wire_bytes_per_step,
            Mode::Q4.label(),
            q4.step.as_micros(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_net.json", &json).expect("write BENCH_net.json");
    print!("{json}");
}
