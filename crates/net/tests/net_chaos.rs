//! Process-level fault tolerance over real sockets, end to end.
//!
//! Two layers of the same scenario — a 4-rank TCP training run loses
//! rank 2 mid-run and the survivors shrink the world and finish with
//! byte-identical replicas:
//!
//! * **In-process**: four threads over a loopback TCP mesh, the death an
//!   orderly endpoint drop scheduled by [`NetFaultPlan`] — the socket
//!   analogue of the thread-cluster chaos test.
//! * **Cross-process**: four OS processes running `cgx-launch` in worker
//!   mode, the death a real `SIGKILL` — no destructors, no flushes, the
//!   kernel tears the sockets down.

use cgx_net::cluster::ProcessCluster;
use cgx_net::workload::{ElasticOptions, Workload};
use cgx_net::{NetFaultPlan, TcpFabric};
use std::path::PathBuf;
use std::time::Duration;

/// Locates the `cgx-launch` binary: cargo exports it to integration
/// tests at compile time; the offline harness points at its own copy via
/// `CGX_LAUNCH_BIN`.
fn launch_bin() -> PathBuf {
    if let Ok(p) = std::env::var("CGX_LAUNCH_BIN") {
        return PathBuf::from(p);
    }
    if let Some(p) = option_env!("CARGO_BIN_EXE_cgx-launch") {
        return PathBuf::from(p);
    }
    let fallback = PathBuf::from(".verify/cgx_launch");
    assert!(
        fallback.exists(),
        "cgx-launch binary not found: set CGX_LAUNCH_BIN or run under cargo"
    );
    fallback
}

struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(label: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("cgx_{label}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7)
}

#[test]
fn in_process_tcp_run_shrinks_around_an_orderly_death() {
    let world = 4;
    let victim = 2;
    let work = Workload::standard(world);
    let opts = ElasticOptions {
        elastic: true,
        comm_timeout: Some(Duration::from_secs(2)),
    };
    let endpoints = TcpFabric::build_local(world);
    let runs: Vec<_> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for (rank, mut t) in endpoints.into_iter().enumerate() {
            let work = &work;
            let opts = &opts;
            handles.push(s.spawn(move || {
                if rank == victim {
                    t.set_fault(NetFaultPlan::new(chaos_seed()).with_kill(victim, 8));
                }
                work.run_rank_elastic(&t, None, opts).expect("rank run")
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    assert!(runs[victim].params.is_none(), "victim must die on schedule");
    let survivors: Vec<usize> = (0..world).filter(|&r| r != victim).collect();
    let first = runs[survivors[0]]
        .params
        .as_ref()
        .expect("survivor has a replica");
    assert!(!first.is_empty());
    for &rank in &survivors {
        let run = &runs[rank];
        assert_eq!(
            run.params.as_ref().expect("survivor replica"),
            first,
            "rank {rank} replica diverged after the shrink"
        );
        assert_eq!(run.final_world, world - 1, "rank {rank} world");
        assert!(run.recovery_epochs >= 1, "rank {rank} recorded no recovery");
    }
}

#[cfg(unix)]
#[test]
fn four_process_tcp_run_survives_a_sigkill() {
    let world = 4;
    let victim = 2;
    let dir = ScratchDir::new("net_chaos_sigkill");
    let report = ProcessCluster::new(launch_bin(), world)
        .env("CGX_OUT_DIR", dir.0.display().to_string())
        .env("CGX_STEPS", "24")
        .env("CGX_NET_KILL", format!("{victim}@12"))
        .env("CGX_NET_SIGKILL", "1")
        .env("CGX_NET_FAULT_SEED", chaos_seed().to_string())
        .env("CGX_ELASTIC", "1")
        .env("CGX_COMM_TIMEOUT_MS", "2000")
        .run_supervised()
        .expect("all ranks spawn");
    assert_eq!(report.deaths(), 1, "exactly the victim dies: {report:?}");
    assert_eq!(report.dead_ranks(), vec![victim]);
    assert_eq!(
        report.exits[victim].code, None,
        "SIGKILL leaves no exit code: {:?}",
        report.exits[victim]
    );
    let first = std::fs::read(dir.0.join("params_rank0.bin")).expect("rank 0 replica");
    assert!(!first.is_empty());
    for rank in (0..world).filter(|&r| r != victim) {
        let other = std::fs::read(dir.0.join(format!("params_rank{rank}.bin")))
            .unwrap_or_else(|e| panic!("rank {rank} replica: {e}"));
        assert_eq!(other, first, "rank {rank} replica diverged after SIGKILL");
        let sidecar = std::fs::read_to_string(dir.0.join(format!("report_rank{rank}.txt")))
            .unwrap_or_else(|e| panic!("rank {rank} report: {e}"));
        assert!(
            sidecar.contains(&format!("final_world={}", world - 1)),
            "rank {rank} finished on the wrong world: {sidecar}"
        );
    }
    assert!(
        !dir.0.join(format!("params_rank{victim}.bin")).exists(),
        "a SIGKILLed rank cannot have written a replica"
    );
}
