//! Figure 7 (Appendix B): time per iteration, CGX 4-bit quantization vs
//! PowerSGD (rank 8), on ViT/ImageNet and BERT/SQuAD at FP32.
//!
//! Paper shape: QSGD-CGX beats PowerSGD on both benchmarks despite lower
//! nominal compression, because decomposition pays GEMM + orthogonalization
//! per step and its higher-rank settings (needed for Transformers) erode
//! the wire savings.

use cgx_bench::{fmt_ms, note, render_table};
use cgx_core::api::CgxBuilder;
use cgx_core::estimate::{estimate, SystemSetup};
use cgx_models::ModelId;
use cgx_simnet::MachineSpec;

fn main() {
    let rtx = MachineSpec::rtx3090();
    let mut rows = Vec::new();
    for model in [ModelId::VitBase, ModelId::BertBase] {
        let cgx = estimate(
            &rtx,
            model,
            &SystemSetup::Cgx {
                session: Box::new(CgxBuilder::new().build()),
                fp32: true,
            },
        );
        let psgd = estimate(&rtx, model, &SystemSetup::PowerSgd { rank: 8 });
        rows.push(vec![
            model.to_string(),
            fmt_ms(cgx.report.step_seconds),
            fmt_ms(psgd.report.step_seconds),
            format!("{:.2}x", psgd.report.step_seconds / cgx.report.step_seconds),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Figure 7: time per iteration, CGX (4-bit) vs PowerSGD (rank 8), FP32, 8x RTX 3090",
            &["model", "CGX", "PowerSGD(r8)", "PowerSGD/CGX"],
            &rows,
        )
    );
    note("paper: QSGD outperforms PowerSGD on both; PowerSGD diverges on TXL entirely.");
}
