//! Kernel fast-path report: generic bit-at-a-time codecs vs the word-wide
//! packing + fused decode-accumulate kernels, at the bit widths the
//! adaptive policies use.
//!
//! Emits `BENCH_kernels.json` with elements/sec for compress, decompress
//! and decode-add at 2/4/8 bits over 1M elements, plus the speedup of the
//! fast path over the generic one. The generic baselines replicate the
//! pre-fast-path kernels arithmetic-for-arithmetic (same stochastic
//! rounding, same wire format), so the payloads are asserted byte-equal
//! before anything is timed.

use cgx_collectives::reduce::{allreduce_scratch, Algorithm, AllreduceStats};
use cgx_collectives::ThreadCluster;
use cgx_compress::{BitReader, BitWriter, Compressor, Encoded, QsgdCompressor, ScratchPool};
use cgx_tensor::{Rng, Tensor};
use std::hint::black_box;
use std::time::Instant;

const N: usize = 1 << 20; // 1M elements
const REPS: usize = 7;

/// The pre-fast-path QSGD encode: identical arithmetic to
/// `QsgdCompressor::compress`, but element-at-a-time `write_bits` instead
/// of staged `write_run`.
fn generic_compress(bits: u32, bucket_size: usize, data: &[f32], rng: &mut Rng) -> Encoded {
    let s = ((1u32 << (bits - 1)) - 1) as f64;
    let offset = (1u32 << (bits - 1)) - 1;
    const SCALE_2_53: f64 = (1u64 << 53) as f64;
    let comp = QsgdCompressor::new(bits, bucket_size);
    let mut w = BitWriter::with_capacity(comp.compressed_bytes(data.len()));
    for bucket in data.chunks(bucket_size) {
        let norm = bucket.iter().fold(0.0f64, |m, x| m.max(x.abs() as f64));
        w.write_f32(norm as f32);
        if norm == 0.0 {
            for _ in bucket {
                w.write_bits(offset, bits);
            }
        } else {
            let scale = s / norm;
            for &v in bucket {
                let scaled = (v.abs() as f64 * scale).min(s);
                let lower = scaled as u32;
                let threshold = ((scaled - lower as f64) * SCALE_2_53) as u64;
                let level = lower + u32::from((rng.next_u64() >> 11) < threshold);
                let signed = if v < 0.0 {
                    offset - level
                } else {
                    offset + level
                };
                w.write_bits(signed, bits);
            }
        }
    }
    Encoded::new(cgx_tensor::Shape::vector(data.len()), w.finish())
}

/// The pre-fast-path QSGD decode: element-at-a-time `read_bits`.
fn generic_decompress(bits: u32, bucket_size: usize, enc: &Encoded, out: &mut [f32]) {
    let s = ((1u32 << (bits - 1)) - 1) as f64;
    let offset = ((1u32 << (bits - 1)) - 1) as i64;
    let mut r = BitReader::new(enc.payload());
    for chunk in out.chunks_mut(bucket_size) {
        let norm = r.read_f32() as f64;
        for o in chunk.iter_mut() {
            let signed = r.read_bits(bits) as i64 - offset;
            *o = (norm * signed as f64 / s) as f32;
        }
    }
}

/// Best-of-`REPS` wall clock of `f`, in elements per second.
fn measure(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    N as f64 / best
}

struct Row {
    kernel: &'static str,
    bits: u32,
    generic_eps: f64,
    fast_eps: f64,
}

fn main() {
    let mut seed_rng = Rng::seed_from_u64(1);
    let grad = Tensor::randn(&mut seed_rng, &[N]);
    let pool = ScratchPool::new();
    let mut rows = Vec::new();

    for (bits, bucket) in [(2u32, 1024usize), (4, 128), (8, 64)] {
        let mut comp = QsgdCompressor::new(bits, bucket);

        // Sanity: identical RNG streams must give byte-identical payloads.
        let mut rng_a = Rng::seed_from_u64(42);
        let mut rng_b = Rng::seed_from_u64(42);
        let enc_generic = generic_compress(bits, bucket, grad.as_slice(), &mut rng_a);
        let enc = comp.compress_slice(grad.as_slice(), &mut rng_b, &pool);
        assert_eq!(
            enc_generic.payload(),
            enc.payload(),
            "fast path diverged from generic at {bits} bits"
        );

        let mut rng = Rng::seed_from_u64(7);
        let generic_c = measure(|| {
            black_box(generic_compress(
                bits,
                bucket,
                black_box(grad.as_slice()),
                &mut rng,
            ));
        });
        let fast_c = measure(|| {
            let e = comp.compress_slice(black_box(grad.as_slice()), &mut rng, &pool);
            pool.recycle(black_box(e));
        });
        rows.push(Row {
            kernel: "compress",
            bits,
            generic_eps: generic_c,
            fast_eps: fast_c,
        });

        let mut out = vec![0.0f32; N];
        let generic_d = measure(|| {
            generic_decompress(bits, bucket, black_box(&enc), &mut out);
            black_box(out[0]);
        });
        let fast_d = measure(|| {
            comp.decompress_into(black_box(&enc), &mut out);
            black_box(out[0]);
        });
        rows.push(Row {
            kernel: "decompress",
            bits,
            generic_eps: generic_d,
            fast_eps: fast_d,
        });

        // Decode-add: the allreduce summation step. Generic = materialize
        // the decode, then a second pass to add (what reduce.rs used to
        // do); fast = the fused decompress_add_into.
        let mut acc = vec![0.0f32; N];
        let generic_a = measure(|| {
            let mut decoded = vec![0.0f32; N];
            generic_decompress(bits, bucket, black_box(&enc), &mut decoded);
            for (a, d) in acc.iter_mut().zip(&decoded) {
                *a += *d;
            }
            black_box(acc[0]);
        });
        let fast_a = measure(|| {
            comp.decompress_add_into(black_box(&enc), &mut acc);
            black_box(acc[0]);
        });
        rows.push(Row {
            kernel: "decode_add",
            bits,
            generic_eps: generic_a,
            fast_eps: fast_a,
        });
    }

    // Where one allreduce actually spends its wall time: the
    // AllreduceStats breakdown (compress / transport wait / decode) for a
    // 4-worker 4-bit SRA over 1M elements. `wait_ms` is the serialized
    // blocking the communication engine exists to overlap.
    let breakdown: AllreduceStats = {
        let pool = ScratchPool::new();
        let stats = ThreadCluster::run(4, |t| {
            let mut rng = Rng::seed_from_u64(10 + t.rank() as u64);
            let grad = Tensor::randn(&mut rng, &[N]);
            let mut comp = QsgdCompressor::new(4, 128);
            let mut best: Option<AllreduceStats> = None;
            for _ in 0..3 {
                let (_, s) = allreduce_scratch(
                    Algorithm::ScatterReduceAllgather,
                    &t,
                    &grad,
                    &mut comp,
                    &mut rng,
                    &pool,
                )
                .expect("allreduce");
                let faster = best
                    .as_ref()
                    .map(|b| s.wait_ns + s.compress_ns + s.decode_ns
                        < b.wait_ns + b.compress_ns + b.decode_ns)
                    .unwrap_or(true);
                if faster {
                    best = Some(s);
                }
            }
            best.expect("three reps ran")
        })
        .expect("cluster");
        stats.into_iter().next().expect("rank 0")
    };

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"elements\": {N},\n"));
    json.push_str(&format!(
        "  \"allreduce_breakdown\": {{\"workers\": 4, \"scheme\": \"qsgd-4b\", \
         \"compress_ms\": {:.3}, \"wait_ms\": {:.3}, \"decode_ms\": {:.3}, \
         \"max_in_flight\": {}}},\n",
        breakdown.compress_ns as f64 / 1e6,
        breakdown.wait_ns as f64 / 1e6,
        breakdown.decode_ns as f64 / 1e6,
        breakdown.max_in_flight,
    ));
    json.push_str("  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"bits\": {}, \"generic_elements_per_sec\": {:.0}, \
             \"fast_elements_per_sec\": {:.0}, \"speedup\": {:.2}}}{sep}\n",
            r.kernel,
            r.bits,
            r.generic_eps,
            r.fast_eps,
            r.fast_eps / r.generic_eps,
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    print!("{json}");
    for r in &rows {
        println!(
            "{:<10} {}b: generic {:>7.1} Melem/s, fast {:>7.1} Melem/s ({:.2}x)",
            r.kernel,
            r.bits,
            r.generic_eps / 1e6,
            r.fast_eps / 1e6,
            r.fast_eps / r.generic_eps,
        );
    }
}
