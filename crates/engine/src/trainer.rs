//! Data-parallel training with per-layer compressed Allreduce.
//!
//! The loop mirrors the CGX pipeline (paper Figure 2): each worker computes
//! gradients on its shard, every layer's gradient is all-reduced through a
//! compression-aware collective, small sensitive layers (norms, biases) are
//! filtered to full precision, gradient clipping — which needs the fully
//! synchronized gradient (Technical Issue 3) — runs after reduction, and
//! the optimizer applies the identical update on every replica.
//!
//! Because the collectives guarantee bit-exact consensus, replicas never
//! diverge; a test asserts this invariant.
//!
//! # Failure model
//!
//! With [`TrainConfig::chaos`] set, every worker's endpoint is wrapped in a
//! [`ChaosTransport`] whose reliability layer masks transient faults
//! (drops, corruption, duplicates, delays) without changing a single
//! delivered byte — chaos runs train bit-identically to fault-free runs.
//! With [`TrainConfig::elastic`] set, an unrecoverable peer loss
//! ([`CommError::PeerLost`] from the engine, or any peer-scoped transport
//! error) triggers shrink-and-continue recovery: survivors agree on a new
//! membership epoch, re-map ranks, re-synchronize parameters over the
//! shrunken world, rescale the averaging denominator, and retry the step.

use crate::nn::ParamSpec;
use crate::optimizer::{clip_global_norm, SgdMomentum};
use cgx_adaptive::{AdaptiveController, AdaptivePlanTrace, AdaptiveTrainConfig, ControlledLayer};
use cgx_collectives::hierarchy::allreduce_hierarchical;
use cgx_collectives::membership::agree;
use cgx_collectives::reduce::{allreduce_scratch, Algorithm};
use cgx_collectives::{
    lane_epoch, ChaosTransport, CommEngine, CommError, EngineOptions, FaultPlan, FaultStats,
    Membership, MembershipView, ReconnectPolicy, ShmTransport, ThreadCluster, Topology, Transport,
};
use cgx_compress::{CompressionScheme, Compressor, NoneCompressor, ScratchPool};
use cgx_obs::{MetricsSnapshot, ObsHandle};
use cgx_tensor::{Rng, Tensor};
use std::time::{Duration, Instant};

/// A model trainable by [`train_data_parallel`].
pub trait TrainableModel: Clone + Send {
    /// One training batch.
    type Batch: Send;

    /// Parameter tensors in forward order.
    fn params(&self) -> &[Tensor];

    /// Mutable parameter tensors.
    fn params_mut(&mut self) -> &mut [Tensor];

    /// Names and kinds aligned with `params()`.
    fn param_specs(&self) -> Vec<ParamSpec>;

    /// Mean loss and per-parameter gradients for a batch.
    fn loss_and_grads(&self, batch: &Self::Batch) -> (f64, Vec<Tensor>);
}

impl TrainableModel for crate::nn::Mlp {
    type Batch = (Tensor, Vec<usize>);

    fn params(&self) -> &[Tensor] {
        crate::nn::Mlp::params(self)
    }

    fn params_mut(&mut self) -> &mut [Tensor] {
        crate::nn::Mlp::params_mut(self)
    }

    fn param_specs(&self) -> Vec<ParamSpec> {
        crate::nn::Mlp::param_specs(self)
    }

    fn loss_and_grads(&self, (x, y): &Self::Batch) -> (f64, Vec<Tensor>) {
        crate::nn::Mlp::loss_and_grads(self, x, y)
    }
}

impl TrainableModel for crate::nn::EmbeddingLm {
    type Batch = (Vec<usize>, Vec<usize>);

    fn params(&self) -> &[Tensor] {
        crate::nn::EmbeddingLm::params(self)
    }

    fn params_mut(&mut self) -> &mut [Tensor] {
        crate::nn::EmbeddingLm::params_mut(self)
    }

    fn param_specs(&self) -> Vec<ParamSpec> {
        crate::nn::EmbeddingLm::param_specs(self)
    }

    fn loss_and_grads(&self, (ctx, tgt): &Self::Batch) -> (f64, Vec<Tensor>) {
        crate::nn::EmbeddingLm::loss_and_grads(self, ctx, tgt)
    }
}

/// A per-layer compression list that does not cover the model: the list
/// holds `got` schemes but the model has `expected` parameters. Raised by
/// [`LayerCompression::validate`] when a [`TrainConfig`] is applied,
/// instead of schemes silently falling back to the default (too short) or
/// being ignored (too long) deep in the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerLayerMismatch {
    /// The model's parameter count.
    pub expected: usize,
    /// The configured list's length.
    pub got: usize,
}

impl std::fmt::Display for PerLayerMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "per-layer compression list has {} schemes but the model has {} parameters",
            self.got, self.expected
        )
    }
}

impl std::error::Error for PerLayerMismatch {}

/// Per-layer compression policy: a default scheme, the CGX small-layer
/// filter, optional name-based overrides, and optional explicit per-layer
/// assignments (the adaptive algorithm's output).
#[derive(Debug, Clone)]
pub struct LayerCompression {
    default: CompressionScheme,
    filter_small_layers: bool,
    overrides: Vec<(String, CompressionScheme)>,
    per_layer: Option<Vec<CompressionScheme>>,
}

impl LayerCompression {
    /// Everything in FP32 — the uncompressed baseline.
    pub fn none() -> Self {
        Self::uniform(CompressionScheme::None)
    }

    /// One scheme for every layer, no filtering (the QNCCL behaviour).
    pub fn uniform(scheme: CompressionScheme) -> Self {
        LayerCompression {
            default: scheme,
            filter_small_layers: false,
            overrides: Vec::new(),
            per_layer: None,
        }
    }

    /// The CGX default: 4-bit QSGD (bucket 128) with norm/bias layers
    /// filtered to full precision.
    pub fn cgx_default() -> Self {
        LayerCompression {
            default: CompressionScheme::cgx_default(),
            filter_small_layers: true,
            overrides: Vec::new(),
            per_layer: None,
        }
    }

    /// A uniform scheme plus the small-layer filter.
    pub fn filtered(scheme: CompressionScheme) -> Self {
        LayerCompression {
            default: scheme,
            filter_small_layers: true,
            overrides: Vec::new(),
            per_layer: None,
        }
    }

    /// Explicit per-layer assignment (indices aligned with the model's
    /// parameter order) — the output format of the adaptive policies.
    pub fn per_layer(schemes: Vec<CompressionScheme>) -> Self {
        LayerCompression {
            default: CompressionScheme::None,
            filter_small_layers: false,
            overrides: Vec::new(),
            per_layer: Some(schemes),
        }
    }

    /// Adds a name-substring override (the `exclude_layer` /
    /// per-layer-parameter API of Listing 1). Later overrides win.
    pub fn with_override(mut self, pattern: impl Into<String>, scheme: CompressionScheme) -> Self {
        self.overrides.push((pattern.into(), scheme));
        self
    }

    /// Resolves the scheme for parameter `index` with the given spec.
    pub fn scheme_for(&self, index: usize, spec: &ParamSpec) -> CompressionScheme {
        if let Some(per) = &self.per_layer {
            if let Some(s) = per.get(index) {
                return *s;
            }
        }
        for (pat, s) in self.overrides.iter().rev() {
            if spec.name.contains(pat.as_str()) {
                return *s;
            }
        }
        if self.filter_small_layers && spec.kind.is_filtered_by_default() {
            return CompressionScheme::None;
        }
        self.default
    }

    /// Checks this policy against a model with `n_params` parameters: an
    /// explicit per-layer list must cover every parameter exactly.
    /// Trainers run this when the config is applied, so a stale
    /// assignment (model edited after the adaptive plan was computed)
    /// fails fast with a typed error instead of compressing the wrong
    /// layers.
    ///
    /// # Errors
    ///
    /// [`PerLayerMismatch`] on a length disagreement.
    pub fn validate(&self, n_params: usize) -> Result<(), PerLayerMismatch> {
        match &self.per_layer {
            Some(list) if list.len() != n_params => Err(PerLayerMismatch {
                expected: n_params,
                got: list.len(),
            }),
            _ => Ok(()),
        }
    }

    /// Builds one compressor per parameter.
    pub fn build_all(&self, specs: &[ParamSpec]) -> Vec<Box<dyn Compressor>> {
        specs
            .iter()
            .enumerate()
            .map(|(i, s)| self.scheme_for(i, s).build())
            .collect()
    }
}

/// Data-parallel training configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of worker threads ("GPUs").
    pub workers: usize,
    /// Optimization steps.
    pub steps: usize,
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
    /// Global-norm gradient clipping threshold, if any.
    pub clip: Option<f64>,
    /// Reduction algorithm.
    pub algorithm: Algorithm,
    /// Per-layer compression policy.
    pub compression: LayerCompression,
    /// Base RNG seed (worker streams are derived from it).
    pub seed: u64,
    /// Gradient-accumulation micro-steps per optimization step (paper
    /// Section 2.2, batch scaling): local gradients of `accumulation`
    /// batches are summed before the single synchronized update. 1 = off.
    pub accumulation: usize,
    /// Reduce all layers of a step through the nonblocking
    /// [`CommEngine`] (submit every layer, then wait in order) instead of
    /// one blocking allreduce per layer. Results are byte-identical; the
    /// engine overlaps the layers' compress/send/decode work.
    pub layer_parallel: bool,
    /// Tuning for the communication engine (segmentation, coalescing).
    pub engine: EngineOptions,
    /// Deterministic fault injection: when set, every worker's endpoint is
    /// wrapped in a [`ChaosTransport`] driven by this plan. Transient
    /// faults are masked by the reliability layer without changing a
    /// single delivered byte; kill/freeze entries take effect at the
    /// scheduled step.
    pub chaos: Option<FaultPlan>,
    /// Shrink-and-continue recovery: when `true`, an unrecoverable peer
    /// loss triggers membership agreement and training continues on the
    /// surviving world instead of failing. Elastic runs always reduce
    /// through the engine (regardless of `layer_parallel`) because
    /// recovery relies on its epoch-scoped message lanes, and require an
    /// SRA or Ring algorithm for the same reason.
    pub elastic: bool,
    /// Override for the transport receive timeout — the budget after
    /// which a silent peer is declared lost. `None` keeps the fabric
    /// default; chaos tests set it low so recovery is prompt.
    pub comm_timeout: Option<Duration>,
    /// Node layout for hierarchical reduction. When set, every step
    /// reduces through [`allreduce_hierarchical`] — raw intra-node
    /// staging around a compressed inter-node leader exchange — instead
    /// of the flat collective, ignoring `algorithm`/`layer_parallel`.
    /// Incompatible with `elastic` (the hierarchy has no membership
    /// path). `None` (the default) keeps the flat collective.
    pub topology: Option<Topology>,
    /// Observability: when enabled, every worker's transport and engine
    /// publish counters into the handle's shared registry (snapshotted
    /// into [`TrainReport::metrics`]) and each worker records span events
    /// into its own forked ring. Disabled (the default) costs one branch
    /// per instrumented site and changes no delivered byte either way.
    pub obs: ObsHandle,
    /// TCP wire-path tuning: per-peer read staging buffer, in bytes.
    /// `None` defers to `CGX_NET_READ_BUF` or the fabric default. Only
    /// consulted by process launchers that build a [`cgx-net`] transport
    /// (the in-process Shm fabric has no wire); the thread-backed trainer
    /// carries it so one `TrainConfig` describes a run on either fabric.
    pub net_read_buf: Option<usize>,
    /// TCP wire-path tuning: outbound coalescing budget, in bytes —
    /// deferred small frames flush once their queue exceeds this. `None`
    /// defers to `CGX_NET_COALESCE` or the fabric default. Same scope as
    /// [`TrainConfig::net_read_buf`].
    pub net_coalesce_budget: Option<usize>,
    /// TCP liveness: `(interval, deadline)` — emit heartbeat frames on
    /// the control lane every `interval` and declare a peer dead after
    /// `deadline` of silence. `None` (the default) disables heartbeats;
    /// a dead peer is then only noticed when the socket reports it. Only
    /// consulted by process launchers building a [`cgx-net`] transport —
    /// same scope as [`TrainConfig::net_read_buf`].
    pub heartbeat: Option<(Duration, Duration)>,
    /// TCP reconnect policy for transient link drops: jittered
    /// exponential backoff between redial attempts. `None` (the default)
    /// treats every socket loss as a process death. Same scope as
    /// [`TrainConfig::net_read_buf`].
    pub reconnect: Option<ReconnectPolicy>,
    /// Live adaptive compression: when set, every rank runs an
    /// [`AdaptiveController`] that accumulates the per-layer norms of the
    /// synchronized mean gradients and every `replan_interval` steps
    /// re-solves the paper's bit-assignment problem, swapping the new
    /// per-layer schemes into the running engine without stopping it.
    /// Because the observed statistics are rank-replicated, all ranks
    /// commit identical plans at identical steps and training stays
    /// byte-identical across ranks and fabrics. The starting (plan-epoch
    /// 0) schemes come from [`TrainConfig::compression`]; layers that
    /// policy leaves uncompressed stay uncompressed forever. `None` (the
    /// default) keeps the static policy for the whole run.
    pub adaptive: Option<AdaptiveTrainConfig>,
}

impl TrainConfig {
    /// A reasonable default configuration for the synthetic tasks.
    pub fn new(workers: usize, steps: usize) -> Self {
        TrainConfig {
            workers,
            steps,
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 0.0,
            clip: None,
            algorithm: Algorithm::ScatterReduceAllgather,
            compression: LayerCompression::none(),
            seed: 1234,
            accumulation: 1,
            layer_parallel: true,
            engine: EngineOptions::default(),
            chaos: None,
            elastic: false,
            comm_timeout: None,
            topology: None,
            obs: ObsHandle::disabled(),
            net_read_buf: None,
            net_coalesce_budget: None,
            heartbeat: None,
            reconnect: None,
            adaptive: None,
        }
    }
}

/// Result of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Rank-0 training loss per step.
    pub losses: Vec<f64>,
    /// Wire bytes transmitted per worker over the whole run.
    pub bytes_sent_per_worker: usize,
    /// Compression-kernel invocations per worker over the whole run.
    pub compress_calls_per_worker: usize,
    /// Fault and recovery counters from the reporting worker's endpoint
    /// (all zeros on a fault-free fabric). `recovery_epochs` counts the
    /// shrink-and-continue recoveries the run survived.
    pub faults: FaultStats,
    /// World size at the end of the run — smaller than `cfg.workers` if
    /// elastic recovery shrank the fleet.
    pub final_world: usize,
    /// Snapshot of the run's metrics registry ([`TrainConfig::obs`]):
    /// engine, transport, pool and fault counters aggregated across all
    /// workers. Empty when observability is disabled.
    pub metrics: MetricsSnapshot,
    /// The live controller's re-plan history ([`TrainConfig::adaptive`]);
    /// `None` on static-compression runs.
    pub adaptive: Option<AdaptivePlanTrace>,
}

/// Wraps a raw fabric endpoint per the run's chaos configuration, timeout
/// override, and observability handle.
pub(crate) fn wrap_endpoint(mut raw: ShmTransport, cfg: &TrainConfig) -> Box<dyn Transport> {
    if let Some(d) = cfg.comm_timeout {
        raw.set_timeout(d);
    }
    if cfg.obs.enabled() {
        raw.set_obs(cfg.obs.registry());
    }
    match &cfg.chaos {
        Some(plan) => Box::new(ChaosTransport::new(raw, plan.clone())),
        None => Box::new(raw),
    }
}

/// Brings every survivor's parameters to the membership-wide mean after a
/// recovery. Runs through the engine so the traffic lives on the new
/// epoch's message lanes — frames abandoned by the failed attempt can
/// never alias with it. Lossless (`NoneCompressor`), so all survivors
/// leave with byte-identical parameters.
pub(crate) fn resync_params(
    t: &dyn Transport,
    membership: &Membership,
    params: &mut [Tensor],
    pool: &ScratchPool,
    base: EngineOptions,
) -> Result<(), CommError> {
    let view = MembershipView::new(t, membership);
    if view.world() <= 1 {
        return Ok(());
    }
    let world = view.world() as f32;
    let opts = EngineOptions {
        epoch: (membership.epoch() & 0xFF) as u8,
        ..base
    };
    let mut eng = CommEngine::new(&view, pool.clone(), opts);
    let mut rng = Rng::seed_from_u64(membership.epoch() as u64);
    let handles: Vec<_> = params
        .iter()
        .map(|p| {
            eng.submit(
                Algorithm::ScatterReduceAllgather,
                p,
                Box::new(NoneCompressor::new()),
                &mut rng,
            )
        })
        .collect();
    for (p, h) in params.iter_mut().zip(handles) {
        let (mut mean, _, _) = eng.wait(h)?;
        mean.scale(1.0 / world);
        *p = mean;
    }
    Ok(())
}

/// Builds the live controller for a model: the plan-epoch-0 schemes are
/// whatever the static policy resolves per layer, and a layer is under
/// adaptive control iff that policy compresses it at all (filtered norm
/// and bias layers stay lossless forever). Exposure decays with forward
/// position — early layers (embeddings) finish their backward pass last,
/// so their transfers sit exposed on the critical path.
pub(crate) fn build_controller(
    acfg: &AdaptiveTrainConfig,
    compression: &LayerCompression,
    specs: &[ParamSpec],
    params: &[Tensor],
) -> AdaptiveController {
    let base: Vec<CompressionScheme> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| compression.scheme_for(i, s))
        .collect();
    let total = specs.len().max(1);
    let layers: Vec<ControlledLayer> = specs
        .iter()
        .zip(params)
        .enumerate()
        .map(|(i, (spec, p))| ControlledLayer {
            name: spec.name.clone(),
            elements: p.len(),
            compressible: base[i] != CompressionScheme::None,
            exposure: 1.0 - i as f64 / total as f64,
        })
        .collect();
    AdaptiveController::new(acfg.clone(), layers, base)
}

/// L2 norm of a tensor, accumulated in `f64` — the controller's
/// observation unit. Fixed accumulation order keeps the value
/// byte-identical wherever the tensor is.
pub(crate) fn tensor_norm(t: &Tensor) -> f64 {
    t.as_slice()
        .iter()
        .map(|&v| {
            let v = v as f64;
            v * v
        })
        .sum::<f64>()
        .sqrt()
}

/// Exports one committed re-plan into the run's metrics registry
/// (`adaptive.*` namespace). Counters count once per rank; the gauges are
/// last-write-wins over values identical on every rank (except the
/// advisory bandwidth, which is per-rank by nature).
pub(crate) fn publish_replan(obs: &ObsHandle, up: &cgx_adaptive::PlanUpdate) {
    if !obs.enabled() {
        return;
    }
    let reg = obs.registry();
    reg.counter(cgx_obs::names::ADAPTIVE_REPLANS).inc();
    reg.gauge(cgx_obs::names::ADAPTIVE_PLAN_EPOCH).set(up.plan_epoch);
    reg.gauge(cgx_obs::names::ADAPTIVE_MILLIBITS_PER_ELEMENT)
        .set((up.record.nominal_bits_per_element * 1000.0) as u64);
    reg.gauge(cgx_obs::names::ADAPTIVE_SIZE_RATIO_PERMILLE)
        .set((up.record.size_ratio_vs_static4 * 1000.0) as u64);
    if let Some(bw) = up.record.measured_bandwidth_bps {
        reg.gauge(cgx_obs::names::ADAPTIVE_BANDWIDTH_BPS).set(bw as u64);
    }
}

/// Validates an elastic configuration (see [`TrainConfig::elastic`]).
pub(crate) fn check_elastic(cfg: &TrainConfig) {
    if cfg.elastic {
        assert!(
            matches!(
                cfg.algorithm,
                Algorithm::ScatterReduceAllgather | Algorithm::Ring
            ),
            "elastic recovery requires an epoch-scoped pipelined algorithm (SRA or Ring)"
        );
        assert!(
            cfg.topology.is_none(),
            "hierarchical reduction has no membership path; disable elastic or topology"
        );
    }
}

/// Per-rank result of a data-parallel run ([`train_rank`] returning
/// `Ok(None)` means the rank was killed by the fault plan; survivors
/// carry their replica).
#[derive(Debug, Clone)]
pub struct RankOutput<M> {
    /// The trained replica (bit-identical across survivors).
    pub model: M,
    /// Training loss per step on this rank's shard.
    pub losses: Vec<f64>,
    /// Wire bytes this rank transmitted over the whole run.
    pub bytes: usize,
    /// Compression-kernel invocations on this rank.
    pub kernel_calls: usize,
    /// Fault and recovery counters from this rank's endpoint.
    pub faults: FaultStats,
    /// World size this rank finished with.
    pub final_world: usize,
    /// The live controller's re-plan history ([`TrainConfig::adaptive`]);
    /// `None` on static-compression runs. Byte-identical across ranks —
    /// the cross-fabric parity tests compare its digest.
    pub adaptive: Option<AdaptivePlanTrace>,
}

/// Picks the authoritative survivor: the one that finished with the
/// largest world (a frozen zombie that partitioned itself away finishes
/// with a smaller one), lowest rank on ties.
fn consensus_output<M>(outputs: Vec<Option<RankOutput<M>>>) -> RankOutput<M> {
    let mut chosen: Option<RankOutput<M>> = None;
    for out in outputs.into_iter().flatten() {
        let replace = match &chosen {
            None => true,
            Some(c) => out.final_world > c.final_world,
        };
        if replace {
            chosen = Some(out);
        }
    }
    chosen.expect("at least one rank survived")
}

/// Runs one rank's share of a data-parallel training run over an
/// already-connected endpoint: the transport-agnostic core of
/// [`train_data_parallel`], equally at home on a [`ShmTransport`] thread
/// or a `cgx-net` TCP endpoint in its own OS process. Every rank in the
/// world must call this with identical `model`, `cfg`, and sampler
/// semantics; determinism comes from the rank-derived RNG streams, so a
/// thread-backed run and a process-backed run with the same seed produce
/// byte-identical replicas.
///
/// Returns `Ok(None)` when the fault plan kills this rank mid-run.
///
/// # Errors
///
/// Propagates collective-communication failures (after exhausting
/// elastic recovery, when enabled).
///
/// # Panics
///
/// Panics if a configured [`TrainConfig::topology`] disagrees with the
/// transport's world size.
pub fn train_rank<M, S>(
    t: &dyn Transport,
    model: &M,
    sampler: &S,
    cfg: &TrainConfig,
    pool: &ScratchPool,
) -> Result<Option<RankOutput<M>>, CommError>
where
    M: TrainableModel,
    S: Fn(&mut Rng) -> M::Batch,
{
    if let Some(topo) = &cfg.topology {
        assert_eq!(
            topo.world(),
            t.world(),
            "topology describes {} ranks but the fabric has {}",
            topo.world(),
            t.world()
        );
    }
    let specs = model.param_specs();
    if let Err(e) = cfg.compression.validate(specs.len()) {
        return Err(CommError::InvalidConfig {
            detail: e.to_string(),
        });
    }
    // Elastic recovery retries steps through the engine's epoch-scoped
    // lanes; plain runs honor the configured path. A topology always
    // takes the blocking hierarchical path.
    let use_engine = (cfg.layer_parallel || cfg.elastic) && cfg.topology.is_none();
    // Shared registry, per-worker event ring (single-writer). The ring
    // spans the whole run; engines created per step share it by clone.
    let obs = cfg.obs.fork_rank(cgx_obs::DEFAULT_RING_CAPACITY);
    let mut local = model.clone();
    let mut data_rng = Rng::seed_from_u64(cfg.seed ^ (0xD00D + t.rank() as u64 * 7919));
    let mut comp_rng = Rng::seed_from_u64(cfg.seed ^ (0xC0FFEE + t.rank() as u64 * 104_729));
    // Option-wrapped so the engine can borrow each compressor for the
    // duration of its collective and hand it back at wait.
    let mut compressors: Vec<Option<Box<dyn Compressor>>> = cfg
        .compression
        .build_all(&specs)
        .into_iter()
        .map(Some)
        .collect();
    let mut opt = SgdMomentum::new(cfg.lr, cfg.momentum, cfg.weight_decay);
    // The live controller, when configured: plan-epoch-0 schemes are the
    // static policy's, so warmup steps are byte-identical to a
    // non-adaptive run.
    let mut controller = cfg
        .adaptive
        .as_ref()
        .map(|acfg| build_controller(acfg, &cfg.compression, &specs, model.params()));
    let mut plan_epoch = 0u64;
    let mut bw_bytes_mark = 0usize;
    let mut bw_instant_mark = Instant::now();
    let mut losses = Vec::with_capacity(cfg.steps);
    let mut bytes = 0usize;
    let mut kernel_calls = 0usize;
    let mut membership = Membership::full(t.world());
    let mut recoveries = 0usize;
    let mut step = 0usize;
    'steps: while step < cfg.steps {
        if t.begin_step(step) {
            // Fail-stop injection: this rank dies here. Dropping the
            // endpoint closes its channels, so survivors observe a
            // `Disconnected` and (if elastic) shrink around it.
            return Ok(None);
        }
        // Gradient accumulation: average over micro-batches locally,
        // synchronize once.
        let batch = sampler(&mut data_rng);
        let (mut loss, mut grads) = local.loss_and_grads(&batch);
        for _ in 1..cfg.accumulation {
            let micro = sampler(&mut data_rng);
            let (l, g) = local.loss_and_grads(&micro);
            loss += l;
            for (a, b) in grads.iter_mut().zip(&g) {
                a.add_assign(b);
            }
        }
        if cfg.accumulation > 1 {
            let inv = 1.0 / cfg.accumulation as f32;
            loss /= cfg.accumulation as f64;
            for g in grads.iter_mut() {
                g.scale(inv);
            }
        }
        let view = MembershipView::new(t, &membership);
        let world = view.world() as f32;
        let sync: Result<(), CommError> = if let Some(topo) = &cfg.topology {
            // Node-aware path: one blocking hierarchical reduction per
            // layer. Membership is always full here (elastic is rejected
            // with a topology), so the view is the identity mapping.
            let mut res = Ok(());
            for (i, g) in grads.iter_mut().enumerate() {
                // Consume `comp_rng` one draw per layer like the other
                // paths so seeds stay comparable across configurations.
                let mut layer_rng = Rng::seed_from_u64(comp_rng.next_u64());
                let comp = compressors[i].as_deref_mut().expect("compressor present");
                match allreduce_hierarchical(&view, topo, g, comp, &mut layer_rng, pool) {
                    Ok((mut summed, stats)) => {
                        summed.scale(1.0 / world);
                        *g = summed;
                        bytes += stats.bytes_sent;
                        kernel_calls += stats.compress_calls;
                    }
                    Err(e) => {
                        res = Err(e);
                        break;
                    }
                }
            }
            res
        } else if use_engine {
            // Layer-parallel path: submit every layer up front, then
            // redeem in order. The engine overlaps all in-flight
            // reductions and coalesces small FP32 layers; results are
            // byte-identical to the sequential loop below.
            let opts = EngineOptions {
                // Adaptive runs stamp the plan epoch into the lane tag
                // alongside the membership epoch: a rank on a diverged
                // plan fails fast with a tag mismatch instead of
                // silently reducing differently-encoded payloads.
                epoch: if controller.is_some() {
                    lane_epoch(membership.epoch() as u64, plan_epoch)
                } else {
                    (membership.epoch() & 0xFF) as u8
                },
                ..cfg.engine
            };
            let mut eng = CommEngine::new(&view, pool.clone(), opts).with_obs(obs.clone());
            let handles: Vec<_> = grads
                .iter()
                .enumerate()
                .map(|(i, g)| {
                    let comp = compressors[i].take().expect("compressor present");
                    eng.submit(cfg.algorithm, g, comp, &mut comp_rng)
                })
                .collect();
            let mut first_err = None;
            for (i, h) in handles.into_iter().enumerate() {
                match eng.wait(h) {
                    Ok((mut summed, stats, comp)) => {
                        compressors[i] = Some(comp);
                        summed.scale(1.0 / world);
                        grads[i] = summed;
                        bytes += stats.bytes_sent;
                        kernel_calls += stats.compress_calls;
                    }
                    // Drain every handle (later waits fail fast on the
                    // poison) so nothing is left in flight; the lent
                    // compressors are rebuilt during recovery.
                    Err(e) => first_err = first_err.or(Some(e)),
                }
            }
            first_err.map_or(Ok(()), Err)
        } else {
            let mut res = Ok(());
            for (i, g) in grads.iter_mut().enumerate() {
                // Consume `comp_rng` exactly as the engine does (one
                // draw per layer) so both paths share the stream.
                let mut layer_rng = Rng::seed_from_u64(comp_rng.next_u64());
                let comp = compressors[i].as_deref_mut().expect("compressor present");
                match allreduce_scratch(cfg.algorithm, &view, g, comp, &mut layer_rng, pool) {
                    Ok((mut summed, stats)) => {
                        summed.scale(1.0 / world);
                        *g = summed;
                        bytes += stats.bytes_sent;
                        kernel_calls += stats.compress_calls;
                    }
                    Err(e) => {
                        res = Err(e);
                        break;
                    }
                }
            }
            res
        };
        if let Err(e) = sync {
            let Some(vpeer) = e.peer().filter(|_| cfg.elastic) else {
                return Err(e);
            };
            // Shrink and continue: condemn the physical rank behind
            // the failed virtual peer, agree on the next membership
            // epoch, rebuild the compressors the poisoned engine kept,
            // re-sync parameters over the survivors, and retry the
            // step (with a fresh batch) on the shrunken world.
            let dead = view.physical(vpeer);
            let (next, resume) = agree(t, &membership, &[dead], step as u64, t.timeout());
            membership = next;
            recoveries += 1;
            // Rebuild the compressors the poisoned engine kept — from
            // the live plan when adaptive, so recovery does not silently
            // revert committed re-plans. The controller itself survives
            // untouched; its next maybe_replan sees the new membership
            // epoch and forces a re-plan (the bandwidth picture changed).
            compressors = match controller.as_ref() {
                Some(ctl) => ctl.current_schemes().iter().map(|s| Some(s.build())).collect(),
                None => cfg
                    .compression
                    .build_all(&specs)
                    .into_iter()
                    .map(Some)
                    .collect(),
            };
            resync_params(t, &membership, local.params_mut(), pool, cfg.engine)?;
            step = step.max(resume as usize);
            continue 'steps;
        }
        if let Some(ctl) = controller.as_mut() {
            // The synchronized mean gradients are byte-identical on every
            // rank, so this observation — and any re-plan it triggers —
            // transitions every rank's controller through identical
            // states with no control traffic. Observed *before* clipping
            // so the statistics match what the wire actually carried.
            let norms: Vec<f64> = grads.iter().map(tensor_norm).collect();
            ctl.observe_norms(&norms);
            // Advisory only: this rank's local byte counter over local
            // wall-clock. Never feeds back into plan bits.
            let now = Instant::now();
            ctl.observe_bandwidth(
                (bytes - bw_bytes_mark) as u64,
                now.duration_since(bw_instant_mark),
            );
            bw_bytes_mark = bytes;
            bw_instant_mark = now;
            if step + 1 < cfg.steps {
                if let Some(up) = ctl.maybe_replan(step + 1, membership.epoch() as u64) {
                    for (i, &changed) in up.changed.iter().enumerate() {
                        if changed {
                            compressors[i] = Some(up.schemes[i].build());
                        }
                    }
                    plan_epoch = up.plan_epoch;
                    publish_replan(&obs, &up);
                }
            }
        }
        losses.push(loss);
        if let Some(max_norm) = cfg.clip {
            clip_global_norm(&mut grads, max_norm);
        }
        opt.step(local.params_mut(), &grads);
        step += 1;
    }
    // Teardown barrier: keep serving retransmissions until every
    // survivor has drained its final-step traffic — only then is it
    // safe to drop this endpoint (lossless fabrics no-op here).
    t.quiesce(&membership.physical_ranks());
    let mut faults = t.fault_stats();
    faults.recovery_epochs += recoveries;
    Ok(Some(RankOutput {
        model: local,
        losses,
        bytes,
        kernel_calls,
        faults,
        final_world: membership.num_alive(),
        adaptive: controller.map(AdaptiveController::into_trace),
    }))
}

/// Trains `model` data-parallel across `cfg.workers` threads; each worker
/// draws batches via `sampler` from its own RNG stream.
///
/// Returns the (consensus) trained model of rank 0 plus a [`TrainReport`].
/// With [`TrainConfig::elastic`] set, a killed rank does not fail the run:
/// survivors agree on a shrunken membership and finish without it, and the
/// returned model is the surviving consensus.
///
/// # Errors
///
/// Propagates collective-communication failures (after exhausting elastic
/// recovery, when enabled).
///
/// # Panics
///
/// Panics if `cfg.workers` or `cfg.steps` is zero, or if an elastic
/// configuration names an algorithm without epoch-scoped lanes.
pub fn train_data_parallel<M, S>(
    model: &M,
    sampler: S,
    cfg: &TrainConfig,
) -> Result<(M, TrainReport), CommError>
where
    M: TrainableModel + Sync,
    S: Fn(&mut Rng) -> M::Batch + Send + Sync,
{
    assert!(cfg.workers > 0, "need at least one worker");
    assert!(cfg.steps > 0, "need at least one step");
    assert!(cfg.accumulation > 0, "accumulation must be at least 1");
    check_elastic(cfg);
    if let Some(topo) = &cfg.topology {
        assert_eq!(
            topo.world(),
            cfg.workers,
            "topology describes {} ranks but cfg.workers is {}",
            topo.world(),
            cfg.workers
        );
    }
    // One pool shared by all workers: encode buffers recycled by whichever
    // rank drops the last reference get reused fleet-wide.
    let pool = ScratchPool::new();
    let outputs = ThreadCluster::try_run(cfg.workers, |raw: ShmTransport| {
        let endpoint = wrap_endpoint(raw, cfg);
        train_rank(endpoint.as_ref(), model, &sampler, cfg, &pool)
    })?;
    let out = consensus_output(outputs);
    if cfg.obs.enabled() {
        pool.publish(cfg.obs.registry());
        out.faults.publish(cfg.obs.registry());
    }
    Ok((
        out.model,
        TrainReport {
            losses: out.losses,
            bytes_sent_per_worker: out.bytes,
            compress_calls_per_worker: out.kernel_calls,
            faults: out.faults,
            final_world: out.final_world,
            metrics: cfg.obs.registry().snapshot(),
            adaptive: out.adaptive,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{GaussianMixture, MarkovChainLm};
    use crate::nn::{EmbeddingLm, Mlp};
    use cgx_models::LayerKind;

    fn mixture_eval(model: &Mlp, task: &GaussianMixture) -> f64 {
        let mut rng = Rng::seed_from_u64(99_999);
        let (x, y) = task.sample_batch(&mut rng, 1024);
        model.accuracy(&x, &y)
    }

    fn train_mixture(compression: LayerCompression, workers: usize) -> f64 {
        let task = GaussianMixture::new(6, 12, 1.2);
        let mut rng = Rng::seed_from_u64(5);
        let model = Mlp::new(&mut rng, &[12, 32, 6]);
        let mut cfg = TrainConfig::new(workers, 250);
        cfg.compression = compression;
        cfg.lr = 0.2;
        let t2 = task.clone();
        let (trained, _) =
            train_data_parallel(&model, move |r| t2.sample_batch(r, 16), &cfg).unwrap();
        mixture_eval(&trained, &task)
    }

    #[test]
    fn fp32_data_parallel_learns_the_task() {
        let acc = train_mixture(LayerCompression::none(), 4);
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn quantized_training_recovers_accuracy() {
        // The Table 3 phenomenon at miniature scale: 4-bit QSGD with the
        // small-layer filter matches the FP32 baseline within 1%.
        let base = train_mixture(LayerCompression::none(), 4);
        let cgx = train_mixture(LayerCompression::cgx_default(), 4);
        assert!(cgx >= base - 0.01, "cgx accuracy {cgx} vs baseline {base}");
    }

    #[test]
    fn hierarchical_topology_trains_with_consensus_replicas() {
        // Node-aware path: 2 nodes x 2 ranks, compressed leader exchange.
        // The hierarchy associates the sum differently than the flat
        // collective, so accuracy (not bytes) is compared to baseline —
        // but replica consensus must still be exact, which
        // train_data_parallel's consensus_output asserts implicitly and
        // the direct train_rank runs below verify explicitly.
        let task = GaussianMixture::new(6, 12, 1.2);
        let mut rng = Rng::seed_from_u64(5);
        let model = Mlp::new(&mut rng, &[12, 32, 6]);
        let mut cfg = TrainConfig::new(4, 250);
        cfg.compression = LayerCompression::cgx_default();
        cfg.topology = Some(Topology::grouped(2, 2));
        cfg.lr = 0.2;
        let t2 = task.clone();
        let (trained, report) =
            train_data_parallel(&model, move |r| t2.sample_batch(r, 16), &cfg).unwrap();
        let acc = mixture_eval(&trained, &task);
        assert!(acc > 0.85, "hierarchical accuracy {acc}");
        assert!(report.bytes_sent_per_worker > 0);
        // All four replicas byte-identical, via the public train_rank entry.
        let pool = ScratchPool::new();
        let task3 = task.clone();
        let replicas = ThreadCluster::try_run(cfg.workers, |raw| {
            let endpoint = wrap_endpoint(raw, &cfg);
            let sampler = |r: &mut Rng| task3.sample_batch(r, 16);
            train_rank(endpoint.as_ref(), &model, &sampler, &cfg, &pool)
        })
        .unwrap();
        let reference = replicas[0].as_ref().expect("rank 0 survived");
        for out in replicas.iter().skip(1) {
            let out = out.as_ref().expect("rank survived");
            for (a, b) in out.model.params().iter().zip(reference.model.params()) {
                assert_eq!(a.as_slice(), b.as_slice(), "hierarchical replicas diverged");
            }
        }
        // Members send raw floats only; leaders carry the compressed
        // exchange on top — strictly more wire traffic.
        assert!(
            reference.bytes > replicas[1].as_ref().unwrap().bytes,
            "leader should out-transmit its member"
        );
    }

    #[test]
    fn obs_enabled_trainer_exports_metrics_without_changing_bytes() {
        // The trainer threads `TrainConfig::obs` through to the engine and
        // returns the registry snapshot; enabling it must not perturb
        // training (same seeds → byte-identical parameters).
        let task = GaussianMixture::new(4, 8, 1.5);
        let mut rng = Rng::seed_from_u64(17);
        let model = Mlp::new(&mut rng, &[8, 16, 4]);
        let run = |obs: ObsHandle| {
            let t2 = task.clone();
            let cfg = TrainConfig {
                compression: LayerCompression::cgx_default(),
                obs,
                ..TrainConfig::new(4, 20)
            };
            train_data_parallel(&model, move |r| t2.sample_batch(r, 8), &cfg).unwrap()
        };
        let (plain, plain_report) = run(ObsHandle::disabled());
        let (traced, report) = run(ObsHandle::new_enabled());
        for (a, b) in traced.params().iter().zip(plain.params()) {
            assert_eq!(a.as_slice(), b.as_slice(), "obs changed trained bytes");
        }
        // Disabled: nothing published. Enabled: engine, transport, and
        // pool families all present and non-trivial.
        assert!(plain_report
            .metrics
            .get("engine.collectives_submitted")
            .is_none());
        let submitted = report
            .metrics
            .get("engine.collectives_submitted")
            .expect("engine metrics published");
        assert!(submitted > 0, "no collectives counted");
        assert!(report.metrics.get("transport.msgs_sent").unwrap_or(0) > 0);
        assert!(report.metrics.get("pool.allocations").is_some());
    }

    #[test]
    fn replicas_never_diverge() {
        let task = GaussianMixture::new(4, 8, 1.5);
        let mut rng = Rng::seed_from_u64(6);
        let model = Mlp::new(&mut rng, &[8, 16, 4]);
        let specs = model.param_specs();
        let cfg = TrainConfig {
            compression: LayerCompression::cgx_default(),
            ..TrainConfig::new(4, 30)
        };
        // Re-run the loop manually to collect every replica.
        let pool = ScratchPool::new();
        let outputs = ThreadCluster::try_run(cfg.workers, |t| {
            let pool = pool.clone();
            let mut local = model.clone();
            let mut data_rng = Rng::seed_from_u64(cfg.seed ^ (0xD00D + t.rank() as u64 * 7919));
            let mut comp_rng =
                Rng::seed_from_u64(cfg.seed ^ (0xC0FFEE + t.rank() as u64 * 104_729));
            let mut comps = cfg.compression.build_all(&specs);
            let mut opt = SgdMomentum::new(cfg.lr, cfg.momentum, cfg.weight_decay);
            for _ in 0..cfg.steps {
                let batch = task.sample_batch(&mut data_rng, 8);
                let (_, mut grads) = local.loss_and_grads(&batch.0, &batch.1);
                for (i, g) in grads.iter_mut().enumerate() {
                    let (mut s, _) = allreduce_scratch(
                        cfg.algorithm,
                        &t,
                        g,
                        comps[i].as_mut(),
                        &mut comp_rng,
                        &pool,
                    )?;
                    s.scale(1.0 / t.world() as f32);
                    *g = s;
                }
                opt.step(local.params_mut(), &grads);
            }
            Ok::<_, CommError>(local)
        })
        .unwrap();
        for replica in &outputs[1..] {
            for (a, b) in replica.params().iter().zip(outputs[0].params()) {
                assert_eq!(a.as_slice(), b.as_slice(), "replicas diverged");
            }
        }
    }

    #[test]
    fn layer_parallel_and_sequential_trainers_agree_bitwise() {
        // The headline consensus claim of the engine: overlapping all
        // layers' collectives (with small-layer coalescing on) changes
        // nothing — the trained replicas are byte-identical to the
        // one-blocking-allreduce-per-layer reference.
        let task = GaussianMixture::new(4, 8, 1.5);
        let mut rng = Rng::seed_from_u64(21);
        let model = Mlp::new(&mut rng, &[8, 16, 4]);
        let run = |layer_parallel: bool| {
            let cfg = TrainConfig {
                layer_parallel,
                compression: LayerCompression::cgx_default(),
                ..TrainConfig::new(4, 25)
            };
            let t = task.clone();
            train_data_parallel(&model, move |r| t.sample_batch(r, 8), &cfg).unwrap()
        };
        let (eng_model, eng_report) = run(true);
        let (seq_model, seq_report) = run(false);
        for (a, b) in eng_model.params().iter().zip(seq_model.params()) {
            assert_eq!(a.as_slice(), b.as_slice(), "paths diverged");
        }
        assert_eq!(eng_report.losses, seq_report.losses);
    }

    #[test]
    fn single_worker_equals_sequential_sgd() {
        let task = GaussianMixture::new(3, 6, 1.5);
        let mut rng = Rng::seed_from_u64(7);
        let model = Mlp::new(&mut rng, &[6, 10, 3]);
        let cfg = TrainConfig::new(1, 40);
        let t2 = task.clone();
        let (par, _) = train_data_parallel(&model, move |r| t2.sample_batch(r, 8), &cfg).unwrap();
        // Sequential reference with the identical RNG stream.
        let mut seq = model.clone();
        let mut data_rng = Rng::seed_from_u64(cfg.seed ^ 0xD00D);
        let mut opt = SgdMomentum::new(cfg.lr, cfg.momentum, cfg.weight_decay);
        for _ in 0..cfg.steps {
            let (x, y) = task.sample_batch(&mut data_rng, 8);
            let (_, grads) = seq.loss_and_grads(&x, &y);
            opt.step(seq.params_mut(), &grads);
        }
        for (a, b) in par.params().iter().zip(seq.params()) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn compression_reduces_traffic() {
        let task = GaussianMixture::new(4, 16, 1.5);
        let mut rng = Rng::seed_from_u64(8);
        let model = Mlp::new(&mut rng, &[16, 64, 4]);
        let run = |compression: LayerCompression| {
            let cfg = TrainConfig {
                compression,
                ..TrainConfig::new(4, 5)
            };
            let t2 = task.clone();
            train_data_parallel(&model, move |r| t2.sample_batch(r, 8), &cfg)
                .unwrap()
                .1
                .bytes_sent_per_worker
        };
        let fp32 = run(LayerCompression::none());
        let q4 = run(LayerCompression::uniform(CompressionScheme::Qsgd {
            bits: 4,
            bucket_size: 64,
        }));
        assert!(
            (fp32 as f64) / (q4 as f64) > 5.0,
            "fp32 {fp32} vs 4-bit {q4}"
        );
    }

    #[test]
    fn layer_filter_keeps_biases_uncompressed() {
        let mut rng = Rng::seed_from_u64(9);
        let model = Mlp::new(&mut rng, &[4, 8, 2]);
        let lc = LayerCompression::cgx_default();
        for (i, spec) in model.param_specs().iter().enumerate() {
            let scheme = lc.scheme_for(i, spec);
            if spec.kind == LayerKind::Bias {
                assert_eq!(scheme, CompressionScheme::None, "{}", spec.name);
            } else {
                assert_eq!(scheme, CompressionScheme::cgx_default());
            }
        }
    }

    #[test]
    fn overrides_take_precedence() {
        let lc = LayerCompression::cgx_default().with_override(
            "word_emb",
            CompressionScheme::Qsgd {
                bits: 2,
                bucket_size: 1024,
            },
        );
        let spec = ParamSpec {
            name: "word_emb.weight".into(),
            kind: LayerKind::Embedding,
        };
        assert_eq!(
            lc.scheme_for(0, &spec),
            CompressionScheme::Qsgd {
                bits: 2,
                bucket_size: 1024
            }
        );
    }

    #[test]
    fn per_layer_assignment_wins_over_everything() {
        let lc = LayerCompression::per_layer(vec![
            CompressionScheme::None,
            CompressionScheme::Qsgd {
                bits: 8,
                bucket_size: 512,
            },
        ]);
        let spec = ParamSpec {
            name: "anything".into(),
            kind: LayerKind::Linear,
        };
        assert_eq!(lc.scheme_for(0, &spec), CompressionScheme::None);
        assert!(matches!(
            lc.scheme_for(1, &spec),
            CompressionScheme::Qsgd { bits: 8, .. }
        ));
    }

    #[test]
    fn accumulation_matches_equivalent_big_batch() {
        // With a lossless codec and one worker, accumulating 4 batches of 8
        // equals a single batch of 32 drawn from the same stream.
        let task = GaussianMixture::new(3, 6, 1.5);
        let mut rng = Rng::seed_from_u64(41);
        let model = Mlp::new(&mut rng, &[6, 10, 3]);
        let accum_cfg = TrainConfig {
            accumulation: 4,
            ..TrainConfig::new(1, 30)
        };
        let t1 = task.clone();
        let (a, _) =
            train_data_parallel(&model, move |r| t1.sample_batch(r, 8), &accum_cfg).unwrap();
        // Reference: same RNG stream consumed in 4 draws of 8, concatenated.
        let big_cfg = TrainConfig::new(1, 30);
        let t2 = task.clone();
        let (b, _) = train_data_parallel(
            &model,
            move |r| {
                let mut xs = Vec::new();
                let mut ys = Vec::new();
                for _ in 0..4 {
                    let (x, y) = t2.sample_batch(r, 8);
                    xs.extend_from_slice(x.as_slice());
                    ys.extend(y);
                }
                (cgx_tensor::Tensor::from_vec(&[32, 6], xs), ys)
            },
            &big_cfg,
        )
        .unwrap();
        for (pa, pb) in a.params().iter().zip(b.params()) {
            assert!(
                pa.l2_distance(pb) < 1e-4,
                "accumulated and big-batch runs should coincide"
            );
        }
    }

    #[test]
    fn accumulation_reduces_traffic_per_sample() {
        let task = GaussianMixture::new(3, 6, 1.5);
        let mut rng = Rng::seed_from_u64(43);
        let model = Mlp::new(&mut rng, &[6, 10, 3]);
        let run = |accumulation: usize, steps: usize| {
            let cfg = TrainConfig {
                accumulation,
                compression: LayerCompression::cgx_default(),
                ..TrainConfig::new(2, steps)
            };
            let t = task.clone();
            train_data_parallel(&model, move |r| t.sample_batch(r, 8), &cfg)
                .unwrap()
                .1
                .bytes_sent_per_worker
        };
        // Same number of samples: 20 steps x accum 1 vs 5 steps x accum 4.
        let no_accum = run(1, 20);
        let accum = run(4, 5);
        assert!(
            no_accum >= 4 * accum - 1,
            "accumulation syncs 4x less: {no_accum} vs {accum}"
        );
    }

    #[test]
    fn lm_trains_under_compression_with_clipping() {
        let chain = MarkovChainLm::new(40, 4.0, 11);
        let mut rng = Rng::seed_from_u64(10);
        let model = EmbeddingLm::new(&mut rng, 40, 12);
        let cfg = TrainConfig {
            lr: 0.5,
            clip: Some(5.0),
            compression: LayerCompression::cgx_default(),
            ..TrainConfig::new(4, 200)
        };
        let c2 = chain.clone();
        let (trained, report) =
            train_data_parallel(&model, move |r| c2.sample_batch(r, 32), &cfg).unwrap();
        let mut eval_rng = Rng::seed_from_u64(123);
        let (ctx, tgt) = chain.sample_batch(&mut eval_rng, 2000);
        let ppl = trained.perplexity(&ctx, &tgt);
        let floor = chain.entropy_rate().exp();
        assert!(
            ppl < 2.0 * floor,
            "perplexity {ppl} vs entropy floor {floor}"
        );
        assert!(report.losses.first().unwrap() > report.losses.last().unwrap());
    }

    #[test]
    fn chaos_training_is_byte_identical_to_fault_free() {
        // The headline robustness claim: a seeded fault plan injecting
        // drops, corruption, and duplicates at >1% per frame changes
        // nothing — the reliability layer masks every fault and the
        // trained replicas match the fault-free run byte for byte.
        let task = GaussianMixture::new(4, 8, 1.5);
        let mut rng = Rng::seed_from_u64(31);
        let model = Mlp::new(&mut rng, &[8, 16, 4]);
        let run = |chaos: Option<cgx_collectives::FaultPlan>| {
            let cfg = TrainConfig {
                chaos,
                compression: LayerCompression::cgx_default(),
                ..TrainConfig::new(4, 12)
            };
            let t = task.clone();
            train_data_parallel(&model, move |r| t.sample_batch(r, 8), &cfg).unwrap()
        };
        let (clean_model, clean_report) = run(None);
        let plan = cgx_collectives::FaultPlan::new(0xC5A0_5EED)
            .with_drop(0.02)
            .with_corrupt(0.02)
            .with_duplicate(0.02);
        let (chaos_model, chaos_report) = run(Some(plan));
        for (a, b) in chaos_model.params().iter().zip(clean_model.params()) {
            assert_eq!(a.as_slice(), b.as_slice(), "chaos changed the bytes");
        }
        assert_eq!(chaos_report.losses, clean_report.losses);
        assert!(
            chaos_report.faults.injected_total() > 0,
            "plan injected nothing: {:?}",
            chaos_report.faults
        );
        assert_eq!(clean_report.faults, Default::default());
    }

    #[test]
    fn killed_rank_shrinks_the_world_and_training_continues() {
        // Fail-stop a rank mid-run: survivors agree on a new membership
        // epoch, re-sync, and finish every remaining step on the
        // three-worker world with a finite, still-improving model.
        let task = GaussianMixture::new(4, 8, 1.5);
        let mut rng = Rng::seed_from_u64(33);
        let model = Mlp::new(&mut rng, &[8, 16, 4]);
        let cfg = TrainConfig {
            lr: 0.2,
            chaos: Some(cgx_collectives::FaultPlan::new(5).with_kill(2, 40)),
            elastic: true,
            comm_timeout: Some(std::time::Duration::from_millis(300)),
            compression: LayerCompression::cgx_default(),
            ..TrainConfig::new(4, 120)
        };
        let t = task.clone();
        let (trained, report) =
            train_data_parallel(&model, move |r| t.sample_batch(r, 16), &cfg).unwrap();
        assert_eq!(report.final_world, 3, "world did not shrink to survivors");
        assert_eq!(report.faults.recovery_epochs, 1);
        assert_eq!(report.losses.len(), cfg.steps);
        for p in trained.params() {
            assert!(p.as_slice().iter().all(|v| v.is_finite()));
        }
        let mut eval_rng = Rng::seed_from_u64(99_999);
        let (x, y) = task.sample_batch(&mut eval_rng, 1024);
        let acc = trained.accuracy(&x, &y);
        assert!(acc > 0.8, "survivors stopped learning: accuracy {acc}");
    }

    #[test]
    fn adaptive_training_replans_and_replicas_stay_identical() {
        // The live controller's determinism contract on a real run: every
        // rank re-plans at least twice mid-training, all replicas remain
        // byte-identical, the plan traces agree digest-for-digest, and
        // every committed plan respects its α·E₄ error budget.
        let task = GaussianMixture::new(6, 12, 1.2);
        let mut rng = Rng::seed_from_u64(51);
        let model = Mlp::new(&mut rng, &[12, 32, 6]);
        let cfg = TrainConfig {
            lr: 0.2,
            compression: LayerCompression::cgx_default(),
            adaptive: Some(AdaptiveTrainConfig::default()),
            ..TrainConfig::new(4, 60)
        };
        let pool = ScratchPool::new();
        let t = task.clone();
        let outputs = ThreadCluster::try_run(cfg.workers, |raw| {
            let endpoint = wrap_endpoint(raw, &cfg);
            let sampler = |r: &mut Rng| t.sample_batch(r, 16);
            train_rank(endpoint.as_ref(), &model, &sampler, &cfg, &pool)
        })
        .unwrap();
        let reference = outputs[0].as_ref().expect("rank 0 survived");
        let trace = reference.adaptive.as_ref().expect("adaptive trace present");
        assert!(
            trace.replans() >= 2,
            "only {} re-plans in {} steps",
            trace.replans(),
            cfg.steps
        );
        let max_bits = *AdaptiveTrainConfig::default().bit_choices.iter().max().unwrap();
        for rec in &trace.records {
            assert!(
                rec.estimated_error <= rec.budget * (1.0 + 1e-9)
                    || rec.bits.iter().all(|&b| b == max_bits),
                "plan epoch {} exceeds budget: {} > {}",
                rec.plan_epoch,
                rec.estimated_error,
                rec.budget
            );
        }
        for out in outputs.iter().skip(1) {
            let out = out.as_ref().expect("rank survived");
            for (a, b) in out.model.params().iter().zip(reference.model.params()) {
                assert_eq!(a.as_slice(), b.as_slice(), "adaptive replicas diverged");
            }
            let other = out.adaptive.as_ref().expect("adaptive trace present");
            assert_eq!(other.digest(), trace.digest(), "plan sequences diverged");
        }
    }

    #[test]
    fn adaptive_training_cuts_wire_bytes_vs_static_4bit() {
        // With the 8-bit escape hatch removed from the choice set, every
        // committed plan is at most 4 bits per element, so the adaptive run
        // can only save wire bytes vs the static 4-bit baseline — and with
        // α = 2 the policy has room to actually demote layers. The obs
        // registry must report the re-plans it performed.
        let task = GaussianMixture::new(4, 16, 1.5);
        let mut rng = Rng::seed_from_u64(53);
        let model = Mlp::new(&mut rng, &[16, 64, 4]);
        let run = |adaptive: Option<AdaptiveTrainConfig>| {
            let cfg = TrainConfig {
                compression: LayerCompression::cgx_default(),
                adaptive,
                obs: ObsHandle::new_enabled(),
                ..TrainConfig::new(4, 60)
            };
            let t = task.clone();
            train_data_parallel(&model, move |r| t.sample_batch(r, 8), &cfg)
                .unwrap()
                .1
        };
        let static4 = run(None);
        let acfg = AdaptiveTrainConfig {
            bit_choices: vec![2, 3, 4],
            ..AdaptiveTrainConfig::default()
        };
        let adaptive = run(Some(acfg));
        let trace = adaptive.adaptive.as_ref().expect("adaptive trace present");
        assert!(trace.replans() >= 2, "no mid-run re-planning happened");
        assert!(
            adaptive.bytes_sent_per_worker < static4.bytes_sent_per_worker,
            "adaptive {} vs static 4-bit {}",
            adaptive.bytes_sent_per_worker,
            static4.bytes_sent_per_worker
        );
        // Every rank runs its own controller against the shared registry,
        // so the counter reads workers x the per-rank re-plan count.
        let replans = adaptive
            .metrics
            .get("adaptive.replans")
            .expect("adaptive metrics published");
        assert_eq!(
            replans as usize,
            4 * trace.replans(),
            "metric disagrees with trace"
        );
        assert!(adaptive.metrics.get("adaptive.plan_epoch").is_some());
        assert!(adaptive.metrics.get("adaptive.millibits_per_element").is_some());
        assert!(static4.metrics.get("adaptive.replans").is_none());
    }

    #[test]
    fn adaptive_run_survives_elastic_shrink_and_forces_replan() {
        // A membership epoch must force a re-plan even when the periodic
        // interval is nowhere near due, and the committed plans must keep
        // flowing on the shrunken world.
        let task = GaussianMixture::new(4, 8, 1.5);
        let mut rng = Rng::seed_from_u64(57);
        let model = Mlp::new(&mut rng, &[8, 16, 4]);
        let cfg = TrainConfig {
            lr: 0.2,
            chaos: Some(cgx_collectives::FaultPlan::new(5).with_kill(2, 40)),
            elastic: true,
            comm_timeout: Some(std::time::Duration::from_millis(300)),
            compression: LayerCompression::cgx_default(),
            adaptive: Some(AdaptiveTrainConfig {
                replan_interval: 10_000,
                ..AdaptiveTrainConfig::default()
            }),
            ..TrainConfig::new(4, 120)
        };
        let t = task.clone();
        let (trained, report) =
            train_data_parallel(&model, move |r| t.sample_batch(r, 16), &cfg).unwrap();
        assert_eq!(report.final_world, 3, "world did not shrink to survivors");
        let trace = report.adaptive.as_ref().expect("adaptive trace present");
        assert!(
            trace.records.iter().any(|r| r.membership_epoch >= 1),
            "membership change did not force a re-plan: {:?}",
            trace.records
        );
        for p in trained.params() {
            assert!(p.as_slice().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn per_layer_length_mismatch_is_rejected_up_front() {
        // Satellite bugfix: a per-layer list whose length disagrees with
        // the model surfaces as a typed InvalidConfig before any
        // collective starts, not as an index panic mid-loop.
        let task = GaussianMixture::new(3, 6, 1.5);
        let mut rng = Rng::seed_from_u64(55);
        let model = Mlp::new(&mut rng, &[6, 10, 3]);
        let cfg = TrainConfig {
            compression: LayerCompression::per_layer(vec![CompressionScheme::None; 2]),
            ..TrainConfig::new(1, 5)
        };
        let t = task.clone();
        let err = train_data_parallel(&model, move |r| t.sample_batch(r, 8), &cfg).unwrap_err();
        match err {
            CommError::InvalidConfig { detail } => {
                assert!(detail.contains("2 schemes"), "detail: {detail}");
                assert!(detail.contains("4 parameters"), "detail: {detail}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn non_elastic_run_surfaces_peer_loss_as_error() {
        let task = GaussianMixture::new(3, 6, 1.5);
        let mut rng = Rng::seed_from_u64(35);
        let model = Mlp::new(&mut rng, &[6, 10, 3]);
        let cfg = TrainConfig {
            chaos: Some(cgx_collectives::FaultPlan::new(9).with_kill(1, 3)),
            comm_timeout: Some(std::time::Duration::from_millis(200)),
            // Two workers so exactly one survivor reports the loss (with
            // more, `try_run` aggregates into `MultipleFailures`).
            ..TrainConfig::new(2, 10)
        };
        let t = task.clone();
        let err = train_data_parallel(&model, move |r| t.sample_batch(r, 8), &cfg).unwrap_err();
        assert!(
            err.peer().is_some(),
            "expected a peer-scoped failure, got {err:?}"
        );
    }
}
