//! Table 3: accuracy recovery — baseline (FP32) vs CGX (4-bit quantization
//! with layer filters) end-to-end training.
//!
//! Substitution (DESIGN.md): ImageNet/WikiText/SQuAD become synthetic
//! Gaussian-mixture classification and Markov-chain language modelling, and
//! the models become MLP classifiers / embedding LMs — but the training is
//! *real*: 4 worker threads exchanging genuinely compressed gradients
//! through the threaded collectives. The Table 3 criterion carries over
//! directly: CGX accuracy within 1% (perplexity within ~2%) of baseline.

use cgx_bench::{note, render_table};
use cgx_engine::data::{GaussianMixture, MarkovChainLm};
use cgx_engine::nn::{EmbeddingLm, Mlp};
use cgx_engine::{train_data_parallel, AttentionLm, LayerCompression, TrainConfig};
use cgx_tensor::Rng;

const WORKERS: usize = 4;

#[allow(clippy::too_many_arguments)]
fn classification_row(
    name: &str,
    dims: &[usize],
    classes: usize,
    feat: usize,
    sep: f64,
    steps: usize,
    lr: f32,
    seed: u64,
) -> Vec<String> {
    let task = GaussianMixture::new(classes, feat, sep);
    let mut rng = Rng::seed_from_u64(seed);
    let model = Mlp::new(&mut rng, dims);
    let run = |compression: LayerCompression, cfg_seed: u64| {
        let cfg = TrainConfig {
            lr,
            compression,
            seed: cfg_seed,
            ..TrainConfig::new(WORKERS, steps)
        };
        let t = task.clone();
        let (trained, _) =
            train_data_parallel(&model, move |r| t.sample_batch(r, 16), &cfg).unwrap();
        let mut eval_rng = Rng::seed_from_u64(777);
        let (x, y) = task.sample_batch(&mut eval_rng, 2048);
        trained.accuracy(&x, &y) * 100.0
    };
    // Three seeds, like the paper's +- reporting.
    let mut base = Vec::new();
    let mut cgx = Vec::new();
    for s in [1234u64, 5678, 9012] {
        base.push(run(LayerCompression::none(), s));
        cgx.push(run(LayerCompression::cgx_default(), s));
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let spread = |v: &[f64]| {
        let m = mean(v);
        v.iter().map(|x| (x - m).abs()).fold(0.0f64, f64::max)
    };
    vec![
        name.to_string(),
        "top-1 %".into(),
        format!("{:.1} ± {:.1}", mean(&base), spread(&base)),
        format!("{:.1} ± {:.1}", mean(&cgx), spread(&cgx)),
        format!("{:+.2}", mean(&cgx) - mean(&base)),
    ]
}

fn lm_row(name: &str, vocab: usize, dim: usize, skew: f64, steps: usize, seed: u64) -> Vec<String> {
    let chain = MarkovChainLm::new(vocab, skew, seed);
    let mut rng = Rng::seed_from_u64(seed + 1);
    let model = EmbeddingLm::new(&mut rng, vocab, dim);
    let run = |compression: LayerCompression, cfg_seed: u64| {
        let cfg = TrainConfig {
            lr: 0.5,
            clip: Some(5.0),
            compression,
            seed: cfg_seed,
            ..TrainConfig::new(WORKERS, steps)
        };
        let c = chain.clone();
        let (trained, _) =
            train_data_parallel(&model, move |r| c.sample_batch(r, 32), &cfg).unwrap();
        let mut eval_rng = Rng::seed_from_u64(777);
        let (ctx, tgt) = chain.sample_batch(&mut eval_rng, 4000);
        trained.perplexity(&ctx, &tgt)
    };
    let mut base = Vec::new();
    let mut cgx = Vec::new();
    for s in [1234u64, 5678, 9012] {
        base.push(run(LayerCompression::none(), s));
        cgx.push(run(LayerCompression::cgx_default(), s));
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let spread = |v: &[f64]| {
        let m = mean(v);
        v.iter().map(|x| (x - m).abs()).fold(0.0f64, f64::max)
    };
    vec![
        name.to_string(),
        "perplexity".into(),
        format!("{:.2} ± {:.2}", mean(&base), spread(&base)),
        format!("{:.2} ± {:.2}", mean(&cgx), spread(&cgx)),
        format!("{:+.2}%", 100.0 * (mean(&cgx) - mean(&base)) / mean(&base)),
    ]
}

/// Transformer stand-in with real self-attention: trained on Markov-chain
/// sequences, reported as perplexity.
fn attention_row(name: &str, vocab: usize, steps: usize, seed: u64) -> Vec<String> {
    let chain = MarkovChainLm::new(vocab, 5.0, seed);
    let mut rng = Rng::seed_from_u64(seed + 1);
    let model = AttentionLm::new(&mut rng, vocab, 12, 8);
    let run = |compression: LayerCompression, cfg_seed: u64| {
        let cfg = TrainConfig {
            lr: 0.4,
            clip: Some(5.0),
            compression,
            seed: cfg_seed,
            ..TrainConfig::new(WORKERS, steps)
        };
        let c = chain.clone();
        let sample = move |r: &mut Rng| {
            let mut seqs = Vec::new();
            let mut tgts = Vec::new();
            for _ in 0..6 {
                let (ctx, tgt) = c.sample_batch(r, 8);
                seqs.push(ctx);
                tgts.push(tgt);
            }
            (seqs, tgts)
        };
        let (trained, _) = train_data_parallel(&model, sample, &cfg).unwrap();
        let mut eval_rng = Rng::seed_from_u64(777);
        let mut seqs = Vec::new();
        let mut tgts = Vec::new();
        for _ in 0..40 {
            let (ctx, tgt) = chain.sample_batch(&mut eval_rng, 8);
            seqs.push(ctx);
            tgts.push(tgt);
        }
        trained.perplexity(&seqs, &tgts)
    };
    let mut base = Vec::new();
    let mut cgx = Vec::new();
    for s in [1234u64, 5678, 9012] {
        base.push(run(LayerCompression::none(), s));
        cgx.push(run(LayerCompression::cgx_default(), s));
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let spread = |v: &[f64]| {
        let m = mean(v);
        v.iter().map(|x| (x - m).abs()).fold(0.0f64, f64::max)
    };
    vec![
        name.to_string(),
        "perplexity".into(),
        format!("{:.2} ± {:.2}", mean(&base), spread(&base)),
        format!("{:.2} ± {:.2}", mean(&cgx), spread(&cgx)),
        format!("{:+.2}%", 100.0 * (mean(&cgx) - mean(&base)) / mean(&base)),
    ]
}

fn main() {
    let rows = vec![
        classification_row(
            "ResNet50 stand-in (MLP/mixture)",
            &[16, 48, 24, 8],
            8,
            16,
            1.1,
            400,
            0.15,
            11,
        ),
        classification_row(
            "VGG16 stand-in (wide MLP/mixture)",
            &[24, 96, 10],
            10,
            24,
            1.0,
            400,
            0.1,
            13,
        ),
        classification_row(
            "ViT stand-in (deep MLP/mixture)",
            &[12, 32, 32, 32, 6],
            6,
            12,
            1.2,
            400,
            0.1,
            17,
        ),
        attention_row("Transformer-XL stand-in (attention LM)", 30, 350, 19),
        lm_row("GPT-2 stand-in (LM/Markov)", 40, 12, 3.0, 400, 23),
        classification_row(
            "BERT-QA stand-in (MLP/mixture)",
            &[20, 64, 4],
            4,
            20,
            1.3,
            400,
            0.1,
            29,
        ),
    ];
    print!(
        "{}",
        render_table(
            "Table 3: accuracy recovery, baseline vs CGX (4-bit, bucket 128, layer filters)",
            &["task", "metric", "baseline", "CGX", "delta"],
            &rows,
        )
    );
    note("acceptance: every delta within the paper's 1% tolerance (perplexity within ~2%).");
    note("real data-parallel training over 4 workers with genuinely compressed collectives.");
}
