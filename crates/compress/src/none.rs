//! Lossless passthrough "compression" — the FP32 baseline.

use crate::{bytes_to_f32s, f32s_to_bytes, Compressor, Encoded};
use cgx_tensor::{Rng, Tensor};

/// Identity codec: ships raw `f32`s. This is the uncompressed NCCL/Horovod
/// baseline in every experiment.
///
/// # Examples
///
/// ```
/// use cgx_compress::{Compressor, NoneCompressor};
/// use cgx_tensor::{Rng, Tensor};
/// let mut rng = Rng::seed_from_u64(0);
/// let g = Tensor::from_slice(&[1.0, -2.0]);
/// let mut c = NoneCompressor::new();
/// let enc = c.compress(&g, &mut rng);
/// assert_eq!(c.decompress(&enc).as_slice(), g.as_slice());
/// assert!(c.is_lossless());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct NoneCompressor;

impl NoneCompressor {
    /// Creates the passthrough codec.
    pub fn new() -> Self {
        NoneCompressor
    }
}

impl Compressor for NoneCompressor {
    fn name(&self) -> String {
        "none(fp32)".to_string()
    }

    fn compress(&mut self, grad: &Tensor, _rng: &mut Rng) -> Encoded {
        Encoded::new(grad.shape().clone(), f32s_to_bytes(grad.as_slice()))
    }

    fn decompress(&self, enc: &Encoded) -> Tensor {
        Tensor::from_vec(enc.shape().dims(), bytes_to_f32s(enc.payload()))
    }

    fn compressed_bytes(&self, n: usize) -> usize {
        n * 4
    }

    fn is_lossless(&self) -> bool {
        true
    }

    fn aggregate_encoded(&self, a: &Encoded, b: &Encoded) -> Option<Encoded> {
        if a.shape() != b.shape() {
            return None;
        }
        let mut fa = bytes_to_f32s(a.payload());
        let fb = bytes_to_f32s(b.payload());
        for (x, y) in fa.iter_mut().zip(&fb) {
            *x += y;
        }
        Some(Encoded::new(a.shape().clone(), f32s_to_bytes(&fa)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::round_trip;

    #[test]
    fn bit_exact_roundtrip() {
        let mut rng = Rng::seed_from_u64(1);
        let g = Tensor::randn(&mut rng, &[257]);
        let mut c = NoneCompressor::new();
        let rt = round_trip(&mut c, &g, &mut rng);
        assert_eq!(rt.as_slice(), g.as_slice());
    }

    #[test]
    fn aggregate_sums_payloads() {
        let mut rng = Rng::seed_from_u64(2);
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[10.0, 20.0]);
        let mut c = NoneCompressor::new();
        let ea = c.compress(&a, &mut rng);
        let eb = c.compress(&b, &mut rng);
        let sum = c.aggregate_encoded(&ea, &eb).expect("associative");
        assert_eq!(c.decompress(&sum).as_slice(), &[11.0, 22.0]);
    }

    #[test]
    fn payload_is_4n_bytes() {
        assert_eq!(NoneCompressor::new().compressed_bytes(100), 400);
    }
}
