//! Figure 4: Transformer-XL-style training — perplexity against (simulated)
//! wall-clock time for the static 4-bit baseline and the adaptive schemes.
//!
//! Functional plane: a real embedding LM is trained with the exact
//! per-layer bit-widths each policy assigns (the embedding is the layer the
//! policies act on). Performance plane: each scheme's step *time* comes
//! from the estimator on the multi-node cluster, so lower transmitted size
//! translates into a faster time axis — exactly how the paper's Figure 4 is
//! constructed.

use cgx_adaptive::{AdaptiveOptions, AdaptivePolicy};
use cgx_bench::{note, render_table};
use cgx_core::adaptive::adaptive_compression_for;
use cgx_core::estimate::{estimate, estimate_with_schemes, SystemSetup};
use cgx_engine::data::MarkovChainLm;
use cgx_engine::nn::EmbeddingLm;
use cgx_engine::{train_data_parallel, LayerCompression, TrainConfig};
use cgx_models::{ModelId, ModelSpec};
use cgx_simnet::MachineSpec;
use cgx_tensor::Rng;

const STEPS: usize = 640;
const CHECK_EVERY: usize = 80;

fn train_ppl_curve(compression: LayerCompression, seed: u64) -> Vec<f64> {
    // Real LM with a vocabulary-heavy profile; per-layer compression as
    // assigned.
    let chain = MarkovChainLm::new(60, 6.0, 5);
    let mut rng = Rng::seed_from_u64(seed);
    let model = EmbeddingLm::new(&mut rng, 60, 16);
    let mut curve = Vec::new();
    let mut current = model;
    for chunk in 0..(STEPS / CHECK_EVERY) {
        // Step-decayed learning rate (the paper trains with the original
        // recipes' schedules); decay also shrinks quantization variance.
        let lr = 0.9 * 0.65f32.powi(chunk as i32);
        let cfg = TrainConfig {
            lr,
            clip: Some(5.0),
            compression: compression.clone(),
            seed: seed + chunk as u64,
            ..TrainConfig::new(4, CHECK_EVERY)
        };
        let c = chain.clone();
        let (trained, _) =
            train_data_parallel(&current, move |r| c.sample_batch(r, 48), &cfg).unwrap();
        current = trained;
        let mut eval_rng = Rng::seed_from_u64(4242);
        let (ctx, tgt) = chain.sample_batch(&mut eval_rng, 3000);
        curve.push(current.perplexity(&ctx, &tgt));
    }
    curve
}

fn lm_compression(bits_emb: u32, _bucket_emb: usize) -> LayerCompression {
    // Bucket scaled to the proxy's embedding row width (16): quantization
    // grids are per-row, as they effectively are on the real 512-wide
    // embedding with bucket 1024.
    LayerCompression::cgx_default().with_override(
        "word_emb",
        cgx_compress::CompressionScheme::Qsgd {
            bits: bits_emb,
            bucket_size: 16,
        },
    )
}

fn main() {
    let cluster = MachineSpec::genesis_cluster();
    let model = ModelSpec::build(ModelId::TransformerXl);
    // Step time per scheme from the performance plane (multi-node TXL).
    let static4 = estimate(&cluster, ModelId::TransformerXl, &SystemSetup::cgx())
        .report
        .step_seconds;
    let schemes: Vec<(&str, AdaptivePolicy)> = vec![
        ("KMEANS", AdaptivePolicy::KMeans),
        ("Linear", AdaptivePolicy::Linear),
        ("Bayes", AdaptivePolicy::BayesOpt { trials: 300 }),
    ];
    // (label, step_seconds, ppl curve)
    let mut results: Vec<(String, f64, Vec<f64>)> = Vec::new();
    results.push((
        "static-4bit".into(),
        static4,
        train_ppl_curve(LayerCompression::cgx_default(), 1000),
    ));
    for (name, policy) in schemes {
        let outcome = adaptive_compression_for(&model, policy, &AdaptiveOptions::default(), 2, 7);
        let step = estimate_with_schemes(&cluster, ModelId::TransformerXl, &outcome.schemes)
            .report
            .step_seconds;
        // Map the policy's embedding assignment onto the real LM.
        let emb_pos = outcome
            .layer_indices
            .iter()
            .position(|&i| model.layers()[i].name().contains("word_emb"))
            .expect("embedding assigned");
        let bits = outcome.assignment.bits[emb_pos];
        let bucket = outcome.assignment.bucket_sizes[emb_pos];
        results.push((
            name.into(),
            step,
            train_ppl_curve(lm_compression(bits, bucket), 1000),
        ));
    }
    let mut rows = Vec::new();
    for (name, step, curve) in &results {
        for (i, ppl) in curve.iter().enumerate() {
            rows.push(vec![
                name.clone(),
                format!("{:.2} s", step * ((i + 1) * CHECK_EVERY) as f64),
                format!("{:.3}", ppl),
            ]);
        }
    }
    print!(
        "{}",
        render_table(
            "Figure 4: perplexity vs simulated wall-clock (TXL proxy, adaptive schemes)",
            &["scheme", "wall-clock", "perplexity"],
            &rows,
        )
    );
    // Final comparison: perplexity reached per unit time.
    let horizon = results
        .iter()
        .map(|(_, step, _)| step * STEPS as f64)
        .fold(f64::INFINITY, f64::min);
    let mut finals = Vec::new();
    for (name, step, curve) in &results {
        let steps_in_horizon = ((horizon / step) as usize / CHECK_EVERY).clamp(1, curve.len());
        finals.push(vec![
            name.clone(),
            format!("{:.1} ms", step * 1000.0),
            format!("{:.3}", curve[steps_in_horizon - 1]),
            format!("{:.3}", curve[curve.len() - 1]),
        ]);
    }
    print!(
        "{}",
        render_table(
            "perplexity at the shared time horizon (faster schemes fit more steps)",
            &["scheme", "step time", "ppl @ horizon", "ppl @ end"],
            &finals,
        )
    );
    note("paper shape: adaptive schemes reach a given perplexity sooner; all converge to the same level.");
}
