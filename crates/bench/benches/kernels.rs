//! Criterion micro-benchmarks for the compression kernels (paper
//! Appendix A: compression must run "at line rate").
//!
//! Measures element throughput of quantization encode/decode at the bit
//! widths the adaptive policies use, TopK selection, PowerSGD
//! factorization, and the raw bit-packer.

use bytes::BytesMut;
use cgx_compress::{
    pack_fixed, unpack_fixed_with, BitReader, BitWriter, Compressor, PowerSgdCompressor,
    QsgdCompressor, ScratchPool, TopKCompressor,
};
use cgx_tensor::{Rng, Tensor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

const N: usize = 1 << 20; // 1M elements = 4 MB fp32

fn bench_qsgd(c: &mut Criterion) {
    let mut rng = Rng::seed_from_u64(1);
    let grad = Tensor::randn(&mut rng, &[N]);
    let mut group = c.benchmark_group("qsgd");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(N as u64));
    for (bits, bucket) in [(2u32, 1024usize), (4, 128), (8, 64)] {
        let mut comp = QsgdCompressor::new(bits, bucket);
        group.bench_with_input(
            BenchmarkId::new("compress", format!("{bits}b-{bucket}")),
            &grad,
            |b, g| {
                b.iter(|| black_box(comp.compress(black_box(g), &mut rng)));
            },
        );
        let enc = comp.compress(&grad, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("decompress", format!("{bits}b-{bucket}")),
            &enc,
            |b, e| {
                b.iter(|| black_box(comp.decompress(black_box(e))));
            },
        );
    }
    group.finish();
}

fn bench_topk(c: &mut Criterion) {
    let mut rng = Rng::seed_from_u64(2);
    let grad = Tensor::randn(&mut rng, &[N]);
    let mut group = c.benchmark_group("topk");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(N as u64));
    for ratio in [0.01, 0.1] {
        let mut comp = TopKCompressor::new(ratio);
        group.bench_with_input(
            BenchmarkId::new("compress", format!("{}%", ratio * 100.0)),
            &grad,
            |b, g| {
                b.iter(|| black_box(comp.compress(black_box(g), &mut rng)));
            },
        );
    }
    group.finish();
}

fn bench_powersgd(c: &mut Criterion) {
    let mut rng = Rng::seed_from_u64(3);
    let grad = Tensor::randn(&mut rng, &[1024, 1024]);
    let mut group = c.benchmark_group("powersgd");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements((1024 * 1024) as u64));
    for rank in [1usize, 4] {
        let mut comp = PowerSgdCompressor::new(rank);
        group.bench_with_input(BenchmarkId::new("factorize", rank), &grad, |b, g| {
            b.iter(|| black_box(comp.compress(black_box(g), &mut rng)));
        });
    }
    group.finish();
}

fn bench_bitpack(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitpack");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("write-4bit", |b| {
        b.iter(|| {
            let mut w = BitWriter::with_capacity(N / 2);
            for i in 0..N {
                w.write_bits((i % 16) as u32, 4);
            }
            black_box(w.finish())
        });
    });
    let bytes = {
        let mut w = BitWriter::with_capacity(N / 2);
        for i in 0..N {
            w.write_bits((i % 16) as u32, 4);
        }
        w.finish()
    };
    group.bench_function("read-4bit", |b| {
        b.iter(|| {
            let mut r = BitReader::new(&bytes);
            let mut acc = 0u64;
            for _ in 0..N {
                acc += r.read_bits(4) as u64;
            }
            black_box(acc)
        });
    });
    // The word-wide fast path: same stream, whole u64s at a time.
    let codes: Vec<u32> = (0..N).map(|i| (i % 16) as u32).collect();
    group.bench_function("pack-fixed-4bit", |b| {
        b.iter(|| {
            let mut out = BytesMut::with_capacity(N / 2);
            pack_fixed(black_box(&codes), 4, &mut out);
            black_box(out)
        });
    });
    group.bench_function("unpack-fixed-4bit", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            unpack_fixed_with(black_box(&bytes), 4, N, |v| acc += v as u64);
            black_box(acc)
        });
    });
    group.finish();
}

fn bench_fused_decode(c: &mut Criterion) {
    // Fused decode-accumulate vs decompress-then-add: the allreduce
    // summation hot path before and after this PR.
    let mut rng = Rng::seed_from_u64(4);
    let grad = Tensor::randn(&mut rng, &[N]);
    let mut group = c.benchmark_group("decode-add");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(N as u64));
    for (bits, bucket) in [(2u32, 1024usize), (4, 128), (8, 64)] {
        let mut comp = QsgdCompressor::new(bits, bucket);
        let enc = comp.compress(&grad, &mut rng);
        let mut acc = vec![0.0f32; N];
        group.bench_with_input(
            BenchmarkId::new("materialize-then-add", format!("{bits}b-{bucket}")),
            &enc,
            |b, e| {
                b.iter(|| {
                    let decoded = comp.decompress(black_box(e));
                    for (a, d) in acc.iter_mut().zip(decoded.as_slice()) {
                        *a += *d;
                    }
                    black_box(acc[0])
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fused", format!("{bits}b-{bucket}")),
            &enc,
            |b, e| {
                b.iter(|| {
                    comp.decompress_add_into(black_box(e), &mut acc);
                    black_box(acc[0])
                });
            },
        );
    }
    group.finish();
}

fn bench_pooled_compress(c: &mut Criterion) {
    // Steady-state encode with scratch reuse vs allocating per call.
    let mut rng = Rng::seed_from_u64(5);
    let grad = Tensor::randn(&mut rng, &[N]);
    let pool = ScratchPool::new();
    let mut group = c.benchmark_group("pooled-compress");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(N as u64));
    let mut comp = QsgdCompressor::new(4, 128);
    group.bench_function("alloc-4b-128", |b| {
        b.iter(|| black_box(comp.compress(black_box(&grad), &mut rng)));
    });
    group.bench_function("pooled-4b-128", |b| {
        b.iter(|| {
            let enc = comp.compress_pooled(black_box(&grad), &mut rng, &pool);
            pool.recycle(black_box(enc));
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_qsgd,
    bench_topk,
    bench_powersgd,
    bench_bitpack,
    bench_fused_decode,
    bench_pooled_compress
);
criterion_main!(benches);
