#![warn(missing_docs)]
//! Threaded shared-memory collective communication with compressed,
//! non-associative reductions.
//!
//! This is the *functional plane* of the CGX reproduction: where
//! `cgx_simnet` models how long communication takes, this crate actually
//! performs it. N worker threads stand in for N GPUs and exchange real
//! compressed payloads through an in-process shared-memory fabric — the
//! same mechanism as the paper's SHM backend (UNIX shared memory between
//! processes), collapsed into one address space.
//!
//! It provides:
//!
//! * [`ShmFabric`] / [`ShmTransport`] — the rendezvous transport,
//! * [`ThreadCluster`] — spawn-and-join harness with panic containment,
//! * [`reduce`] — Scatter-Reduce-Allgather, Ring, Tree and
//!   Allgather-broadcast reductions parameterized by any
//!   [`cgx_compress::Compressor`], faithfully reproducing where each scheme
//!   re-quantizes (the compression-error differences of paper Figure 10),
//! * [`engine`] — the layer-parallel communication engine: nonblocking
//!   submit/wait over tag-multiplexed channels, chunk-pipelined SRA, and
//!   small-layer coalescing (paper Section 4),
//! * [`powersgd`] — the factored PowerSGD Allreduce (associative path),
//! * [`primitives`] — broadcast / reduce / gather / scatter / barrier,
//! * [`fault`] — seeded deterministic fault injection
//!   ([`fault::ChaosTransport`]) plus the checksummed-retransmission
//!   reliability layer that masks what it injects,
//! * [`membership`] — membership-epoch agreement and the shrunken-world
//!   [`membership::MembershipView`] behind elastic recovery,
//! * [`framing`] — the seq+FNV checksummed frame format shared by the
//!   chaos reliability layer and the `cgx-net` TCP wire protocol,
//! * [`hierarchy`] — node-aware hierarchical allreduce: raw intra-node
//!   staging around a compressed inter-node leader exchange,
//! * [`conformance`] — the executable [`Transport`] contract, run against
//!   every transport implementation.
//!
//! # Examples
//!
//! ```
//! use cgx_collectives::{reduce, ThreadCluster};
//! use cgx_compress::NoneCompressor;
//! use cgx_tensor::{Rng, Tensor};
//!
//! let results = ThreadCluster::run(4, |t| {
//!     let mut rng = Rng::seed_from_u64(t.rank() as u64);
//!     let grad = Tensor::full(&[32], t.rank() as f32);
//!     let mut c = NoneCompressor::new();
//!     reduce::allreduce_sra(&t, &grad, &mut c, &mut rng).unwrap().0
//! })
//! .unwrap();
//! // 0 + 1 + 2 + 3 = 6 everywhere.
//! for r in &results {
//!     assert_eq!(r.as_slice()[0], 6.0);
//! }
//! ```

pub mod cluster;
pub mod conformance;
pub mod engine;
pub mod error;
pub mod fault;
pub mod framing;
pub mod hierarchy;
pub mod membership;
pub mod powersgd;
pub mod primitives;
pub mod reduce;
pub mod transport;

pub use cluster::ThreadCluster;
pub use engine::{lane_epoch, CommEngine, EngineOptions, Handle};
pub use error::CommError;
pub use fault::{ChaosTransport, FaultKind, FaultPlan, FaultStats, ReconnectPolicy};
pub use hierarchy::{allreduce_hierarchical, Topology};
pub use membership::{agree, Membership, MembershipView};
pub use primitives::{barrier, broadcast, gather, reduce_to_root, scatter};
pub use reduce::{allreduce, allreduce_scratch, AllreduceStats};
pub use transport::{
    namespace_tag, split_tag, tag_namespace, ShmFabric, ShmTransport, Transport,
    MAX_NAMESPACED_OP, MAX_TENANT_NS, NATIVE_JOB, SERVE_CTRL_NS,
};
