//! Seq + FNV-checksummed payload framing, shared by the chaos/reliability
//! layer ([`crate::fault::ChaosTransport`]) and the TCP wire format
//! (`cgx-net`).
//!
//! A frame wraps one [`Encoded`] payload with a magic sentinel, a
//! per-`(peer, tag)` sequence number, and an FNV-style multiply-xor
//! checksum over `(tag, seq, payload)`. The checksum binds the payload to its lane:
//! a frame replayed under a different tag or sequence number fails
//! verification, so frames can never alias across collectives, and any
//! single-bit corruption of the body is caught. Both consumers use the
//! identical header layout, which is the point — the reliability protocol
//! debugged under deterministic chaos injection is byte-for-byte the
//! protocol that runs on real sockets.

use crate::transport::Tag;
use bytes::{BufMut, Bytes, BytesMut};
use cgx_compress::Encoded;

/// Frame header: `[magic:u16][seq:u32][checksum:u32]`, little-endian.
pub const HEADER_LEN: usize = 10;

/// Sentinel distinguishing framed traffic from raw payloads.
pub const FRAME_MAGIC: u16 = 0xC6FA;

/// FNV-style multiply-xor chain over the tag, the sequence number, the
/// payload length, and the payload in 64-bit lanes (zero-padded tail),
/// folded to 32 bits. One multiply per 8 payload bytes instead of per
/// byte — this runs over every wire byte twice (send and receive), so on
/// the hot path its throughput matters; any single-bit flip still
/// changes the lane it lands in and therefore the chain. Cheap and
/// dependency-free.
pub fn checksum(tag: Tag, seq: u32, payload: &[u8]) -> u32 {
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x1_0000_0001_B3;
    let mut h = (OFFSET ^ tag).wrapping_mul(PRIME);
    h = (h ^ seq as u64).wrapping_mul(PRIME);
    h = (h ^ payload.len() as u64).wrapping_mul(PRIME);
    let mut lanes = payload.chunks_exact(8);
    for lane in &mut lanes {
        let w = u64::from_le_bytes(lane.try_into().expect("8 bytes"));
        h = (h ^ w).wrapping_mul(PRIME);
    }
    let tail = lanes.remainder();
    if !tail.is_empty() {
        let mut w = [0u8; 8];
        w[..tail.len()].copy_from_slice(tail);
        h = (h ^ u64::from_le_bytes(w)).wrapping_mul(PRIME);
    }
    (h ^ (h >> 32)) as u32
}

/// Wraps `payload` in a checksummed frame carrying `seq`, preserving the
/// payload's shape.
pub fn frame(tag: Tag, seq: u32, payload: &Encoded) -> Encoded {
    let body = payload.payload();
    Encoded::new(
        payload.shape().clone(),
        frame_bytes(tag, seq, body),
    )
}

/// The raw framed bytes for `body`: header plus payload, ready for a wire.
pub fn frame_bytes(tag: Tag, seq: u32, body: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(HEADER_LEN + body.len());
    buf.put_u16_le(FRAME_MAGIC);
    buf.put_u32_le(seq);
    buf.put_u32_le(checksum(tag, seq, body));
    buf.extend_from_slice(body);
    buf.freeze()
}

/// Appends only the [`HEADER_LEN`]-byte framing header for `body` to
/// `dst`, without copying the body. The zero-copy wire path hands
/// `(header, body)` to a vectored write instead of materializing the
/// concatenation [`frame_bytes`] builds.
pub fn append_header(dst: &mut Vec<u8>, tag: Tag, seq: u32, body: &[u8]) {
    dst.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    dst.extend_from_slice(&seq.to_le_bytes());
    dst.extend_from_slice(&checksum(tag, seq, body).to_le_bytes());
}

/// Splits a framed buffer into `(seq, stated checksum, body)`.
///
/// The caller re-checks the checksum via [`checksum`] so corruption is
/// *observed* (and can be counted / NACKed / rejected), not silently
/// masked at parse time. Returns `None` for buffers too short to hold a
/// header or not bearing the [`FRAME_MAGIC`] sentinel.
pub fn parse(bytes: &Bytes) -> Option<(u32, u32, Bytes)> {
    if bytes.len() < HEADER_LEN {
        return None;
    }
    let magic = u16::from_le_bytes([bytes[0], bytes[1]]);
    if magic != FRAME_MAGIC {
        return None;
    }
    let seq = u32::from_le_bytes([bytes[2], bytes[3], bytes[4], bytes[5]]);
    let sum = u32::from_le_bytes([bytes[6], bytes[7], bytes[8], bytes[9]]);
    Some((seq, sum, bytes.slice(HEADER_LEN..)))
}

/// Parses and verifies in one step: `Some(body)` only when the stated
/// checksum matches the recomputed one under `(tag, seq)`. The strict
/// entry point for wire formats that treat corruption as fatal (TCP
/// already guarantees transport integrity, so a mismatch there means a
/// protocol bug, not line noise).
pub fn parse_verified(tag: Tag, bytes: &Bytes) -> Option<(u32, Bytes)> {
    let (seq, stated, body) = parse(bytes)?;
    if checksum(tag, seq, &body) != stated {
        return None;
    }
    Some((seq, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgx_tensor::Shape;

    fn enc(bytes: &[u8]) -> Encoded {
        Encoded::new(Shape::vector(bytes.len().max(1)), Bytes::copy_from_slice(bytes))
    }

    #[test]
    fn frame_parse_roundtrip_preserves_everything() {
        let original = enc(&[9, 8, 7, 6]);
        let framed = frame(0xAB, 3, &original);
        assert_eq!(framed.shape(), original.shape());
        let (seq, stated, body) = parse(framed.payload()).expect("parses");
        assert_eq!(seq, 3);
        assert_eq!(body.as_ref(), &[9, 8, 7, 6]);
        assert_eq!(checksum(0xAB, 3, &body), stated);
    }

    #[test]
    fn checksum_binds_tag_seq_and_body() {
        let body = [1u8, 2, 3];
        let sum = checksum(7, 1, &body);
        assert_ne!(checksum(8, 1, &body), sum, "tag not bound");
        assert_ne!(checksum(7, 2, &body), sum, "seq not bound");
        assert_ne!(checksum(7, 1, &[1, 2, 4]), sum, "body not bound");
    }

    #[test]
    fn append_header_matches_frame_bytes_prefix() {
        let body = [4u8, 5, 6, 7, 8];
        let framed = frame_bytes(0xBEEF, 12, &body);
        let mut hdr = Vec::new();
        append_header(&mut hdr, 0xBEEF, 12, &body);
        assert_eq!(hdr.len(), HEADER_LEN);
        assert_eq!(&framed[..HEADER_LEN], hdr.as_slice());
    }

    #[test]
    fn parse_rejects_short_and_unmagical_buffers() {
        assert!(parse(&Bytes::from_static(&[1, 2, 3])).is_none());
        let mut raw = frame_bytes(1, 0, &[5]).to_vec();
        raw[0] ^= 0xFF; // break the magic
        assert!(parse(&Bytes::from(raw)).is_none());
    }

    #[test]
    fn parse_verified_is_strict() {
        let framed = frame_bytes(42, 7, &[10, 20, 30]);
        let (seq, body) = parse_verified(42, &framed).expect("verifies");
        assert_eq!((seq, body.as_ref()), (7, &[10u8, 20, 30][..]));
        // Wrong lane: same bytes fail under another tag.
        assert!(parse_verified(43, &framed).is_none());
        // A flipped body bit fails too.
        let mut raw = framed.to_vec();
        let last = raw.len() - 1;
        raw[last] ^= 1;
        assert!(parse_verified(42, &Bytes::from(raw)).is_none());
    }
}
