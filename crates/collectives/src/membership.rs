//! Membership epochs and elastic shrink-and-continue.
//!
//! When a peer is unrecoverably lost mid-collective the engine surfaces
//! [`CommError::PeerLost`](crate::error::CommError::PeerLost) instead of a
//! terminal poison. Survivors then run [`agree`] — a fixed-round
//! all-to-all gossip over the surviving fabric — to converge on a new
//! [`Membership`]: a monotonically-growing dead set (a union is
//! order-free, so any gossip schedule reaches the same fixpoint), a bumped
//! epoch number, and the maximum step any survivor had reached (so nobody
//! replays steps a faster rank already applied).
//!
//! [`MembershipView`] then re-maps the surviving physical ranks onto a
//! dense `0..alive` virtual rank space over the *same* fabric — no new
//! channels, no re-wiring — so the collectives and the engine run
//! unchanged on the shrunken world. The averaging denominator shrinks with
//! the world (the trainers divide by `view.world()`), which is the elastic
//! semantics: losing a rank loses its share of the global batch.
//!
//! Agreement is best-effort by design: a rank that cannot be reached
//! within the round deadline is treated as dead. Two survivors whose
//! suspect sets differ converge because each round re-broadcasts the
//! running union; a rank falsely condemned by a pathologically slow link
//! is equivalent to a real death (it will observe `PeerLost` itself and
//! shrink symmetrically, or time out and exit). If concurrent deaths
//! leave two survivors with different epochs, the next collective between
//! them fails and triggers another recovery epoch — the protocol is
//! self-healing rather than atomic.

use crate::error::CommError;
use crate::transport::{membership_tag, Tag, Transport};
use bytes::{BufMut, Bytes, BytesMut};
use cgx_compress::Encoded;
use cgx_tensor::Shape;
use std::time::Duration;

/// Gossip rounds per agreement. Two rounds propagate any suspicion to
/// every survivor (suspect -> all, then re-broadcast of the union); the
/// third absorbs stragglers that entered the epoch late.
const ROUNDS: u16 = 3;

/// The ranks that ranks agree are still alive, under an epoch number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Membership {
    epoch: u32,
    alive: Vec<bool>,
}

impl Membership {
    /// Epoch 0: everybody alive.
    pub fn full(world: usize) -> Self {
        Membership {
            epoch: 0,
            alive: vec![true; world],
        }
    }

    /// A membership naming an explicit subset of `world` as alive, under
    /// epoch 0. This is the subgroup constructor used by the hierarchical
    /// allreduce to carve the per-node leader set out of the full fabric
    /// (a [`MembershipView`] over it densely renumbers the leaders).
    ///
    /// # Panics
    ///
    /// Panics if `ranks` is empty, unsorted/duplicated, or names a rank
    /// outside `0..world`.
    pub fn of_ranks(world: usize, ranks: &[usize]) -> Self {
        assert!(!ranks.is_empty(), "subgroup needs at least one rank");
        assert!(
            ranks.windows(2).all(|w| w[0] < w[1]),
            "subgroup ranks must be strictly ascending"
        );
        assert!(*ranks.last().expect("non-empty") < world, "rank out of range");
        let mut alive = vec![false; world];
        for &r in ranks {
            alive[r] = true;
        }
        Membership { epoch: 0, alive }
    }

    /// The agreement epoch (0 = initial, bumped once per recovery).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The original (physical) world size.
    pub fn world(&self) -> usize {
        self.alive.len()
    }

    /// Surviving rank count.
    pub fn num_alive(&self) -> usize {
        self.alive.iter().filter(|a| **a).count()
    }

    /// Whether physical rank `rank` is still a member.
    pub fn is_alive(&self, rank: usize) -> bool {
        self.alive[rank]
    }

    /// Surviving physical ranks in ascending order — the virtual->physical
    /// rank map.
    pub fn physical_ranks(&self) -> Vec<usize> {
        (0..self.alive.len()).filter(|&r| self.alive[r]).collect()
    }

    /// The dense virtual rank of physical rank `rank`, if alive.
    pub fn virtual_rank(&self, rank: usize) -> Option<usize> {
        if !self.alive[rank] {
            return None;
        }
        Some(self.alive[..rank].iter().filter(|a| **a).count())
    }

    fn dead_mask(&self) -> u64 {
        let mut mask = 0u64;
        for (r, alive) in self.alive.iter().enumerate() {
            if !alive {
                mask |= 1 << r;
            }
        }
        mask
    }

    fn from_mask(epoch: u32, world: usize, mask: u64) -> Self {
        Membership {
            epoch,
            alive: (0..world).map(|r| mask & (1 << r) == 0).collect(),
        }
    }
}

fn encode_round(mask: u64, step: u64) -> Encoded {
    let mut buf = BytesMut::with_capacity(16);
    buf.put_u64_le(mask);
    buf.put_u64_le(step);
    Encoded::new(Shape::vector(1), buf.freeze())
}

fn decode_round(e: &Encoded) -> Option<(u64, u64)> {
    let b: &Bytes = e.payload();
    if b.len() != 16 {
        return None;
    }
    Some((
        u64::from_le_bytes(b[..8].try_into().ok()?),
        u64::from_le_bytes(b[8..16].try_into().ok()?),
    ))
}

/// Runs one membership-agreement epoch over the *physical* fabric.
///
/// Every survivor calls this with its previous consensus membership, the
/// physical ranks it suspects dead, and the next step it intends to run.
/// Returns the new membership (epoch bumped by one, dead set unioned over
/// every reachable survivor) and the agreed resume step (the max of every
/// survivor's — ranks that were mid-step further along win, so parameter
/// state re-synced after agreement is never rewound).
///
/// `round_timeout` must cover a peer's worst-case lag in *noticing* the
/// failure (typically the transport timeout plus one step of compute);
/// a peer that stays silent longer is condemned as dead.
pub fn agree(
    t: &dyn Transport,
    prev: &Membership,
    suspects: &[usize],
    next_step: u64,
    round_timeout: Duration,
) -> (Membership, u64) {
    let me = t.rank();
    let world = t.world();
    assert!(world <= 64, "membership masks support at most 64 ranks");
    assert_eq!(world, prev.world(), "membership/world mismatch");
    let epoch = prev.epoch + 1;
    let mut mask = prev.dead_mask();
    for &s in suspects {
        if s != me {
            mask |= 1 << s;
        }
    }
    let mut step = next_step;
    for round in 0..ROUNDS {
        let tag: Tag = membership_tag(epoch, round);
        let msg = encode_round(mask, step);
        for p in 0..world {
            if p == me || mask & (1 << p) != 0 {
                continue;
            }
            if t.send_tagged(p, tag, msg.clone()).is_err() {
                mask |= 1 << p;
            }
        }
        for p in 0..world {
            if p == me || mask & (1 << p) != 0 {
                continue;
            }
            match t.recv_tagged_deadline(p, tag, round_timeout) {
                Ok(enc) => {
                    if let Some((m, s)) = decode_round(&enc) {
                        mask |= m;
                        step = step.max(s);
                    } else {
                        mask |= 1 << p;
                    }
                }
                Err(_) => {
                    mask |= 1 << p;
                }
            }
        }
        // Self-suspicion can arrive via a peer's union; never adopt it.
        mask &= !(1u64 << me);
    }
    (Membership::from_mask(epoch, world, mask), step)
}

/// A dense virtual-rank window onto the surviving subset of a fabric.
///
/// Implements [`Transport`] by translating virtual peer ranks to physical
/// ones, so the engine and the blocking collectives run on the shrunken
/// world without knowing a recovery happened. The identity view (full
/// membership) is byte-transparent.
pub struct MembershipView<'a> {
    inner: &'a dyn Transport,
    phys: Vec<usize>,
    vrank: usize,
}

impl<'a> MembershipView<'a> {
    /// Builds the view for this endpoint's rank.
    ///
    /// # Panics
    ///
    /// Panics if this rank is not alive in `membership`, or if the
    /// membership's world differs from the fabric's.
    pub fn new(inner: &'a dyn Transport, membership: &Membership) -> Self {
        assert_eq!(
            membership.world(),
            inner.world(),
            "membership/world mismatch"
        );
        let vrank = membership
            .virtual_rank(inner.rank())
            .expect("this rank is not a member");
        MembershipView {
            inner,
            phys: membership.physical_ranks(),
            vrank,
        }
    }

    /// The physical rank behind virtual rank `v`.
    pub fn physical(&self, v: usize) -> usize {
        self.phys[v]
    }
}

impl Transport for MembershipView<'_> {
    fn rank(&self) -> usize {
        self.vrank
    }

    fn world(&self) -> usize {
        self.phys.len()
    }

    fn timeout(&self) -> Duration {
        self.inner.timeout()
    }

    fn send_tagged(&self, peer: usize, tag: Tag, payload: Encoded) -> Result<(), CommError> {
        self.inner.send_tagged(self.phys[peer], tag, payload)
    }

    fn try_send_tagged(
        &self,
        peer: usize,
        tag: Tag,
        payload: Encoded,
    ) -> Result<Option<Encoded>, CommError> {
        self.inner.try_send_tagged(self.phys[peer], tag, payload)
    }

    fn recv_tagged_deadline(
        &self,
        peer: usize,
        tag: Tag,
        timeout: Duration,
    ) -> Result<Encoded, CommError> {
        self.inner
            .recv_tagged_deadline(self.phys[peer], tag, timeout)
    }

    fn try_recv_tagged(&self, peer: usize, tag: Tag) -> Result<Option<Encoded>, CommError> {
        self.inner.try_recv_tagged(self.phys[peer], tag)
    }

    fn drain_inbound(&self) -> usize {
        self.inner.drain_inbound()
    }

    fn flush_outbound(&self) -> Result<(), CommError> {
        self.inner.flush_outbound()
    }

    fn wait_inbound(&self, peer: usize, tag: Tag, timeout: Duration) -> Result<bool, CommError> {
        self.inner.wait_inbound(self.phys[peer], tag, timeout)
    }

    fn wait_any_inbound(&self, timeout: Duration) -> bool {
        self.inner.wait_any_inbound(timeout)
    }

    fn fault_stats(&self) -> crate::fault::FaultStats {
        self.inner.fault_stats()
    }

    fn begin_step(&self, step: usize) -> bool {
        self.inner.begin_step(step)
    }

    fn quiesce(&self, peers: &[usize]) {
        let phys: Vec<usize> = peers.iter().map(|&v| self.phys[v]).collect();
        self.inner.quiesce(&phys);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{ShmFabric, LEGACY_TAG};
    use bytes::Bytes;

    #[test]
    fn membership_rank_maps_are_consistent() {
        let m = Membership::from_mask(2, 5, 0b01010); // ranks 1 and 3 dead
        assert_eq!(m.epoch(), 2);
        assert_eq!(m.num_alive(), 3);
        assert_eq!(m.physical_ranks(), vec![0, 2, 4]);
        assert_eq!(m.virtual_rank(0), Some(0));
        assert_eq!(m.virtual_rank(1), None);
        assert_eq!(m.virtual_rank(2), Some(1));
        assert_eq!(m.virtual_rank(4), Some(2));
        assert_eq!(m.dead_mask(), 0b01010);
    }

    #[test]
    fn identity_view_is_transparent() {
        let mut eps = ShmFabric::build(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let m = Membership::full(2);
        let va = MembershipView::new(&a, &m);
        let vb = MembershipView::new(&b, &m);
        assert_eq!(va.rank(), 0);
        assert_eq!(vb.world(), 2);
        va.send(1, Encoded::new(Shape::vector(1), Bytes::copy_from_slice(&[7])))
            .unwrap();
        assert_eq!(vb.recv(0).unwrap().payload().as_ref(), &[7]);
    }

    #[test]
    fn shrunken_view_remaps_peers_onto_the_same_fabric() {
        let mut eps = ShmFabric::build(3);
        let c = eps.pop().unwrap();
        let _b = eps.pop().unwrap(); // rank 1 "died"
        let a = eps.pop().unwrap();
        let m = Membership::from_mask(1, 3, 0b010);
        let va = MembershipView::new(&a, &m);
        let vc = MembershipView::new(&c, &m);
        assert_eq!((va.rank(), va.world()), (0, 2));
        assert_eq!((vc.rank(), vc.world()), (1, 2));
        assert_eq!(vc.physical(0), 0);
        // Virtual peer 1 on the view is physical rank 2.
        va.send(1, Encoded::new(Shape::vector(1), Bytes::copy_from_slice(&[9])))
            .unwrap();
        assert_eq!(vc.recv(0).unwrap().payload().as_ref(), &[9]);
    }

    #[test]
    fn survivors_agree_on_union_and_max_step() {
        // 4 ranks; rank 3 is dead. Ranks 0 and 2 each suspect it (rank 1
        // suspects nothing and learns via gossip); steps differ.
        let eps = ShmFabric::build(4);
        let prev = Membership::full(4);
        let handles: Vec<_> = eps
            .into_iter()
            .enumerate()
            .map(|(rank, t)| {
                let prev = prev.clone();
                std::thread::spawn(move || {
                    if rank == 3 {
                        drop(t); // dead before the epoch starts
                        return None;
                    }
                    let suspects: &[usize] = if rank == 1 { &[] } else { &[3] };
                    let step = [5u64, 7, 6, 0][rank];
                    Some(agree(
                        &t,
                        &prev,
                        suspects,
                        step,
                        Duration::from_millis(500),
                    ))
                })
            })
            .collect();
        let results: Vec<_> = handles
            .into_iter()
            .filter_map(|h| h.join().unwrap())
            .collect();
        assert_eq!(results.len(), 3);
        for (m, step) in &results {
            assert_eq!(m.epoch(), 1);
            assert_eq!(m.physical_ranks(), vec![0, 1, 2], "union must converge");
            assert_eq!(*step, 7, "max step wins");
        }
    }

    #[test]
    fn sequential_epochs_compose() {
        let m = Membership::full(4);
        let m1 = Membership::from_mask(m.epoch() + 1, 4, 0b1000);
        let m2 = Membership::from_mask(m1.epoch() + 1, 4, m1.dead_mask() | 0b0010);
        assert_eq!(m2.epoch(), 2);
        assert_eq!(m2.physical_ranks(), vec![0, 2]);
        assert_eq!(m2.virtual_rank(2), Some(1));
        // Legacy-tag traffic and membership tags never collide.
        assert_ne!(membership_tag(1, 0), LEGACY_TAG);
    }
}
