//! A single-head causal self-attention language model with exact manual
//! backpropagation.
//!
//! The paper's headline workloads are Transformers; this model brings the
//! defining computation — scaled dot-product attention with a causal mask,
//! residual connection, learned positional embeddings — into the functional
//! plane, so compressed data-parallel training is exercised on attention
//! gradients (Q/K/V projections behave like the paper's `qkv_net` layers,
//! the embedding like `word_emb`).
//!
//! Architecture per sequence of length `L` over vocabulary `V`, width `d`:
//!
//! ```text
//! X = E[tokens] + P[positions]                  (L x d)
//! Q = X Wq,  K = X Wk,  V' = X Wv               (L x d each)
//! S = mask(Q Kᵀ / sqrt(d)),  A = softmax(S)     (L x L, causal)
//! Z = X + A V'                                  (residual)
//! logits = Z Eoᵀ + b                            (L x V)
//! ```
//!
//! Parameters: `[E (VxD, Embedding), P (LxD, Other), Wq, Wk, Wv (DxD,
//! Linear), Eo (VxD, Linear), b (V, Bias)]`.

use crate::nn::{softmax_cross_entropy, ParamSpec};
use cgx_models::LayerKind;
use cgx_tensor::{matmul, matmul_nt, matmul_tn, Rng, Tensor};

/// Single-head causal attention language model.
#[derive(Debug, Clone, PartialEq)]
pub struct AttentionLm {
    vocab: usize,
    dim: usize,
    max_len: usize,
    /// `[emb, pos, wq, wk, wv, out_w, out_b]`.
    params: Vec<Tensor>,
}

impl AttentionLm {
    /// Creates a model over `vocab` tokens, width `dim`, sequences up to
    /// `max_len`.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions.
    pub fn new(rng: &mut Rng, vocab: usize, dim: usize, max_len: usize) -> Self {
        assert!(vocab > 0 && dim > 0 && max_len > 0, "zero dimension");
        let scale = (1.0 / dim as f64).sqrt() as f32;
        let mk = |rng: &mut Rng, r: usize, c: usize, s: f32| {
            let mut t = Tensor::randn(rng, &[r, c]);
            t.scale(s);
            t
        };
        let params = vec![
            mk(rng, vocab, dim, scale),   // emb
            mk(rng, max_len, dim, scale), // pos
            mk(rng, dim, dim, scale),     // wq
            mk(rng, dim, dim, scale),     // wk
            mk(rng, dim, dim, scale),     // wv
            mk(rng, vocab, dim, scale),   // out_w
            Tensor::zeros(&[vocab]),      // out_b
        ];
        AttentionLm {
            vocab,
            dim,
            max_len,
            params,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Maximum sequence length.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Parameter tensors.
    pub fn params(&self) -> &[Tensor] {
        &self.params
    }

    /// Mutable parameter tensors.
    pub fn params_mut(&mut self) -> &mut [Tensor] {
        &mut self.params
    }

    /// Names and kinds aligned with [`AttentionLm::params`].
    pub fn param_specs(&self) -> Vec<ParamSpec> {
        let spec = |name: &str, kind: LayerKind| ParamSpec {
            name: name.into(),
            kind,
        };
        vec![
            spec("word_emb.weight", LayerKind::Embedding),
            spec("pos_emb.weight", LayerKind::Other),
            spec("attn.q_net.weight", LayerKind::Linear),
            spec("attn.k_net.weight", LayerKind::Linear),
            spec("attn.v_net.weight", LayerKind::Linear),
            spec("out.weight", LayerKind::Linear),
            spec("out.bias", LayerKind::Bias),
        ]
    }

    /// Embeds one token sequence (adds positional rows).
    ///
    /// # Panics
    ///
    /// Panics if the sequence exceeds `max_len` or a token is out of range.
    fn embed(&self, tokens: &[usize]) -> Tensor {
        let l = tokens.len();
        assert!(l <= self.max_len, "sequence longer than max_len");
        let d = self.dim;
        let emb = &self.params[0];
        let pos = &self.params[1];
        let mut x = Tensor::zeros(&[l, d]);
        for (i, &t) in tokens.iter().enumerate() {
            assert!(t < self.vocab, "token {t} out of range");
            for k in 0..d {
                x[i * d + k] = emb[t * d + k] + pos[i * d + k];
            }
        }
        x
    }

    /// Forward pass for one sequence: returns `(logits, cache)` where the
    /// cache holds every intermediate needed for backward.
    fn forward_seq(&self, tokens: &[usize]) -> (Tensor, SeqCache) {
        let l = tokens.len();
        let d = self.dim;
        let x = self.embed(tokens);
        let q = matmul(&x, &self.params[2]);
        let k = matmul(&x, &self.params[3]);
        let v = matmul(&x, &self.params[4]);
        // Causal scaled scores + row softmax.
        let inv_sqrt_d = 1.0 / (d as f32).sqrt();
        let mut a = Tensor::zeros(&[l, l]);
        for i in 0..l {
            let mut row = vec![f32::NEG_INFINITY; l];
            let mut max = f32::NEG_INFINITY;
            for (j, r) in row.iter_mut().enumerate().take(i + 1) {
                let mut s = 0.0f32;
                for t in 0..d {
                    s += q[i * d + t] * k[j * d + t];
                }
                *r = s * inv_sqrt_d;
                max = max.max(*r);
            }
            let mut z = 0.0f32;
            for r in row.iter().take(i + 1) {
                z += (r - max).exp();
            }
            for (j, r) in row.iter().enumerate().take(i + 1) {
                a[i * l + j] = (r - max).exp() / z;
            }
        }
        let h = matmul(&a, &v);
        let mut zres = x.clone();
        zres.add_assign(&h);
        // logits = Z Eoᵀ + b.
        let mut logits = matmul_nt(&zres, &self.params[5]);
        for i in 0..l {
            for c in 0..self.vocab {
                logits[i * self.vocab + c] += self.params[6][c];
            }
        }
        (
            logits,
            SeqCache {
                x,
                q,
                k,
                v,
                a,
                zres,
            },
        )
    }

    /// Mean next-token loss and per-parameter gradients over a batch of
    /// sequences. For sequence `s`, position `i` predicts `targets[s][i]`.
    ///
    /// # Panics
    ///
    /// Panics on empty batches, length mismatches, or out-of-range tokens.
    pub fn loss_and_grads(
        &self,
        sequences: &[Vec<usize>],
        targets: &[Vec<usize>],
    ) -> (f64, Vec<Tensor>) {
        assert!(!sequences.is_empty(), "empty batch");
        assert_eq!(sequences.len(), targets.len(), "batch mismatch");
        let d = self.dim;
        let inv_sqrt_d = 1.0 / (d as f32).sqrt();
        let mut grads: Vec<Tensor> = self
            .params
            .iter()
            .map(|p| Tensor::zeros(p.shape().dims()))
            .collect();
        let mut total_loss = 0.0f64;
        let batch = sequences.len() as f64;
        for (tokens, tgt) in sequences.iter().zip(targets) {
            assert_eq!(tokens.len(), tgt.len(), "target length mismatch");
            let l = tokens.len();
            let (logits, cache) = self.forward_seq(tokens);
            let (loss, mut dlogits) = softmax_cross_entropy(&logits, tgt);
            total_loss += loss;
            // softmax_cross_entropy averages over positions; keep that and
            // average over the batch too.
            dlogits.scale(1.0 / batch as f32);
            // Output projection.
            // dEo += dlogitsᵀ Z ; db += column sums ; dZ = dlogits Eo.
            grads[5].add_assign(&matmul_tn(&dlogits, &cache.zres));
            for i in 0..l {
                for c in 0..self.vocab {
                    grads[6][c] += dlogits[i * self.vocab + c];
                }
            }
            let dz = matmul(&dlogits, &self.params[5]);
            // Residual: dX accumulates dz directly; attention path gets dz.
            let mut dx = dz.clone();
            // H = A V: dA = dH Vᵀ ; dV = Aᵀ dH.
            let da = matmul_nt(&dz, &cache.v);
            let dv = matmul_tn(&cache.a, &dz);
            // Softmax backward per row (masked entries have A=0 already).
            let mut ds = Tensor::zeros(&[l, l]);
            for i in 0..l {
                let mut dot = 0.0f32;
                for j in 0..=i {
                    dot += da[i * l + j] * cache.a[i * l + j];
                }
                for j in 0..=i {
                    ds[i * l + j] = cache.a[i * l + j] * (da[i * l + j] - dot) * inv_sqrt_d;
                }
            }
            // S = Q Kᵀ: dQ = dS K ; dK = dSᵀ Q.
            let dq = matmul(&ds, &cache.k);
            let dk = matmul_tn(&ds, &cache.q);
            // Projections: Q = X Wq etc.
            grads[2].add_assign(&matmul_tn(&cache.x, &dq));
            grads[3].add_assign(&matmul_tn(&cache.x, &dk));
            grads[4].add_assign(&matmul_tn(&cache.x, &dv));
            dx.add_assign(&matmul_nt(&dq, &self.params[2]));
            dx.add_assign(&matmul_nt(&dk, &self.params[3]));
            dx.add_assign(&matmul_nt(&dv, &self.params[4]));
            // Embeddings: scatter dX into token rows and positional rows.
            for (i, &t) in tokens.iter().enumerate() {
                for kk in 0..d {
                    grads[0][t * d + kk] += dx[i * d + kk];
                    grads[1][i * d + kk] += dx[i * d + kk];
                }
            }
        }
        (total_loss / batch, grads)
    }

    /// Perplexity over a batch of (sequence, target) pairs.
    pub fn perplexity(&self, sequences: &[Vec<usize>], targets: &[Vec<usize>]) -> f64 {
        let mut total = 0.0f64;
        for (tokens, tgt) in sequences.iter().zip(targets) {
            let (logits, _) = self.forward_seq(tokens);
            let (loss, _) = softmax_cross_entropy(&logits, tgt);
            total += loss;
        }
        (total / sequences.len() as f64).exp()
    }
}

#[derive(Debug)]
struct SeqCache {
    x: Tensor,
    q: Tensor,
    k: Tensor,
    v: Tensor,
    a: Tensor,
    zres: Tensor,
}

impl crate::trainer::TrainableModel for AttentionLm {
    type Batch = (Vec<Vec<usize>>, Vec<Vec<usize>>);

    fn params(&self) -> &[Tensor] {
        AttentionLm::params(self)
    }

    fn params_mut(&mut self) -> &mut [Tensor] {
        AttentionLm::params_mut(self)
    }

    fn param_specs(&self) -> Vec<ParamSpec> {
        AttentionLm::param_specs(self)
    }

    fn loss_and_grads(&self, (seqs, tgts): &Self::Batch) -> (f64, Vec<Tensor>) {
        AttentionLm::loss_and_grads(self, seqs, tgts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::MarkovChainLm;
    use crate::trainer::{train_data_parallel, LayerCompression, TrainConfig};

    fn toy_batch() -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
        (
            vec![vec![0, 3, 1, 4], vec![2, 2, 0, 1]],
            vec![vec![3, 1, 4, 0], vec![2, 0, 1, 3]],
        )
    }

    #[test]
    fn attention_rows_are_causal_distributions() {
        let mut rng = Rng::seed_from_u64(1);
        let m = AttentionLm::new(&mut rng, 5, 8, 6);
        let (_, cache) = m.forward_seq(&[0, 1, 2, 3]);
        let l = 4;
        for i in 0..l {
            let mut z = 0.0f32;
            for j in 0..l {
                let a = cache.a[i * l + j];
                if j > i {
                    assert_eq!(a, 0.0, "future position attended");
                } else {
                    assert!(a >= 0.0);
                    z += a;
                }
            }
            assert!((z - 1.0).abs() < 1e-5, "row {i} sums to {z}");
        }
    }

    #[test]
    fn gradients_pass_numeric_check() {
        let mut rng = Rng::seed_from_u64(2);
        let model = AttentionLm::new(&mut rng, 5, 6, 6);
        let (seqs, tgts) = toy_batch();
        let (_, grads) = model.loss_and_grads(&seqs, &tgts);
        let eps = 1e-3f32;
        let mut check_rng = Rng::seed_from_u64(7);
        for p in 0..model.params().len() {
            for _ in 0..4 {
                let i = check_rng.index(model.params()[p].len());
                let mut mp = model.clone();
                mp.params_mut()[p][i] += eps;
                let (lp, _) = mp.loss_and_grads(&seqs, &tgts);
                let mut mm = model.clone();
                mm.params_mut()[p][i] -= eps;
                let (lm, _) = mm.loss_and_grads(&seqs, &tgts);
                let numeric = (lp - lm) / (2.0 * eps as f64);
                let analytic = grads[p][i] as f64;
                assert!(
                    (numeric - analytic).abs() < 2e-2 * (1.0 + analytic.abs()),
                    "param {p} idx {i}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn learns_a_deterministic_successor_pattern() {
        // Token t is always followed by (t + 1) % V: attention to the
        // previous token plus the output head can represent this exactly.
        let v = 6;
        let mut rng = Rng::seed_from_u64(3);
        let mut model = AttentionLm::new(&mut rng, v, 12, 8);
        let make_batch = |rng: &mut Rng| {
            let mut seqs = Vec::new();
            let mut tgts = Vec::new();
            for _ in 0..8 {
                let start = rng.index(v);
                let seq: Vec<usize> = (0..8).map(|i| (start + i) % v).collect();
                let tgt: Vec<usize> = (0..8).map(|i| (start + i + 1) % v).collect();
                seqs.push(seq);
                tgts.push(tgt);
            }
            (seqs, tgts)
        };
        let mut opt = crate::optimizer::SgdMomentum::new(0.5, 0.9, 0.0);
        for _ in 0..200 {
            let (seqs, tgts) = make_batch(&mut rng);
            let (_, grads) = model.loss_and_grads(&seqs, &tgts);
            opt.step(model.params_mut(), &grads);
        }
        let (seqs, tgts) = make_batch(&mut rng);
        let ppl = model.perplexity(&seqs, &tgts);
        assert!(ppl < 1.3, "perplexity {ppl}");
    }

    #[test]
    fn trains_under_compressed_data_parallel_sgd() {
        // Markov-chain sequences, 2 workers, CGX 4-bit with filters: the
        // attention LM must beat the uniform-perplexity baseline clearly.
        let chain = MarkovChainLm::new(20, 5.0, 9);
        let mut rng = Rng::seed_from_u64(4);
        let model = AttentionLm::new(&mut rng, 20, 12, 8);
        let sample = move |r: &mut Rng| {
            let mut seqs = Vec::new();
            let mut tgts = Vec::new();
            for _ in 0..6 {
                let (ctx, tgt) = chain.sample_batch(r, 8);
                seqs.push(ctx);
                tgts.push(tgt);
            }
            (seqs, tgts)
        };
        let cfg = TrainConfig {
            lr: 0.4,
            clip: Some(5.0),
            compression: LayerCompression::cgx_default(),
            ..TrainConfig::new(2, 150)
        };
        let (trained, _) = train_data_parallel(&model, sample, &cfg).unwrap();
        let eval_chain = MarkovChainLm::new(20, 5.0, 9);
        let mut eval_rng = Rng::seed_from_u64(55);
        let mut seqs = Vec::new();
        let mut tgts = Vec::new();
        for _ in 0..20 {
            let (c, t) = eval_chain.sample_batch(&mut eval_rng, 8);
            seqs.push(c);
            tgts.push(t);
        }
        let ppl = trained.perplexity(&seqs, &tgts);
        assert!(ppl < 14.0, "perplexity {ppl} vs uniform 20");
    }

    #[test]
    fn embedding_param_is_classified_for_adaptive_compression() {
        let mut rng = Rng::seed_from_u64(5);
        let m = AttentionLm::new(&mut rng, 10, 4, 4);
        let specs = m.param_specs();
        assert_eq!(specs[0].kind, LayerKind::Embedding);
        assert_eq!(specs.len(), m.params().len());
    }

    #[test]
    #[should_panic(expected = "sequence longer than max_len")]
    fn overlong_sequence_rejected() {
        let mut rng = Rng::seed_from_u64(6);
        let m = AttentionLm::new(&mut rng, 5, 4, 3);
        let _ = m.forward_seq(&[0, 1, 2, 3]);
    }
}
