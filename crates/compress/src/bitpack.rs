//! Bit-level packing for quantized payloads.
//!
//! QSGD with `b` bits per component must ship exactly `b` bits per component
//! (plus per-bucket norms) — shipping whole bytes would forfeit most of the
//! compression for `b < 8`. [`BitWriter`] and [`BitReader`] provide an
//! LSB-first bit stream over a byte buffer.

use bytes::{BufMut, Bytes, BytesMut};

/// Appends values of arbitrary bit width (1..=32) to a byte buffer.
///
/// # Examples
///
/// ```
/// use cgx_compress::{BitReader, BitWriter};
/// let mut w = BitWriter::new();
/// w.write_bits(5, 3);
/// w.write_bits(1, 1);
/// w.write_f32(2.5);
/// let bytes = w.finish();
/// let mut r = BitReader::new(&bytes);
/// assert_eq!(r.read_bits(3), 5);
/// assert_eq!(r.read_bits(1), 1);
/// assert_eq!(r.read_f32(), 2.5);
/// ```
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: BytesMut,
    /// Bits accumulated but not yet flushed to `buf`.
    acc: u64,
    /// Number of valid bits in `acc`.
    acc_bits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with an initial capacity hint (bytes).
    pub fn with_capacity(bytes: usize) -> Self {
        BitWriter {
            buf: BytesMut::with_capacity(bytes),
            acc: 0,
            acc_bits: 0,
        }
    }

    /// Appends the low `width` bits of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 32, or if `value` has bits set above
    /// `width`.
    pub fn write_bits(&mut self, value: u32, width: u32) {
        assert!((1..=32).contains(&width), "invalid width {width}");
        assert!(
            width == 32 || value < (1u32 << width),
            "value {value} does not fit in {width} bits"
        );
        self.acc |= (value as u64) << self.acc_bits;
        self.acc_bits += width;
        while self.acc_bits >= 8 {
            self.buf.put_u8((self.acc & 0xFF) as u8);
            self.acc >>= 8;
            self.acc_bits -= 8;
        }
    }

    /// Appends a full `f32` (bit pattern, byte-aligned within the stream's
    /// bit order).
    pub fn write_f32(&mut self, value: f32) {
        self.write_bits(value.to_bits(), 32);
    }

    /// Appends a `u32`.
    pub fn write_u32(&mut self, value: u32) {
        self.write_bits(value, 32);
    }

    /// Number of complete bytes the stream would occupy if finished now.
    pub fn byte_len(&self) -> usize {
        self.buf.len() + self.acc_bits.div_ceil(8) as usize
    }

    /// Flushes any partial byte (zero-padded) and returns the payload.
    pub fn finish(mut self) -> Bytes {
        if self.acc_bits > 0 {
            self.buf.put_u8((self.acc & 0xFF) as u8);
        }
        self.buf.freeze()
    }
}

/// Reads values of arbitrary bit width from a payload written by
/// [`BitWriter`].
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    acc: u64,
    acc_bits: u32,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over a payload.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader {
            bytes,
            pos: 0,
            acc: 0,
            acc_bits: 0,
        }
    }

    /// Reads `width` bits (1..=32).
    ///
    /// # Panics
    ///
    /// Panics if the payload is exhausted or `width` is invalid.
    pub fn read_bits(&mut self, width: u32) -> u32 {
        assert!((1..=32).contains(&width), "invalid width {width}");
        while self.acc_bits < width {
            assert!(self.pos < self.bytes.len(), "bit stream exhausted");
            self.acc |= (self.bytes[self.pos] as u64) << self.acc_bits;
            self.pos += 1;
            self.acc_bits += 8;
        }
        let mask = if width == 32 {
            u32::MAX as u64
        } else {
            (1u64 << width) - 1
        };
        let value = (self.acc & mask) as u32;
        self.acc >>= width;
        self.acc_bits -= width;
        value
    }

    /// Reads an `f32` bit pattern.
    pub fn read_f32(&mut self) -> f32 {
        f32::from_bits(self.read_bits(32))
    }

    /// Reads a `u32`.
    pub fn read_u32(&mut self) -> u32 {
        self.read_bits(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgx_tensor::Rng;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0b1, 1);
        w.write_bits(0xABCD, 16);
        w.write_bits(7, 5);
        let b = w.finish();
        let mut r = BitReader::new(&b);
        assert_eq!(r.read_bits(3), 0b101);
        assert_eq!(r.read_bits(1), 0b1);
        assert_eq!(r.read_bits(16), 0xABCD);
        assert_eq!(r.read_bits(5), 7);
    }

    #[test]
    fn byte_len_counts_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.byte_len(), 0);
        w.write_bits(1, 1);
        assert_eq!(w.byte_len(), 1);
        w.write_bits(0x7F, 7);
        assert_eq!(w.byte_len(), 1);
        w.write_bits(1, 1);
        assert_eq!(w.byte_len(), 2);
    }

    #[test]
    fn f32_special_values_roundtrip() {
        let vals = [0.0f32, -0.0, 1.5, f32::INFINITY, f32::MIN_POSITIVE];
        let mut w = BitWriter::new();
        // Offset by 3 bits so floats straddle byte boundaries.
        w.write_bits(5, 3);
        for v in vals {
            w.write_f32(v);
        }
        let b = w.finish();
        let mut r = BitReader::new(&b);
        assert_eq!(r.read_bits(3), 5);
        for v in vals {
            assert_eq!(r.read_f32().to_bits(), v.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_panics() {
        BitWriter::new().write_bits(8, 3);
    }

    #[test]
    #[should_panic(expected = "bit stream exhausted")]
    fn reading_past_end_panics() {
        let b = BitWriter::new().finish();
        BitReader::new(&b).read_bits(1);
    }

    #[test]
    fn random_sequences_roundtrip() {
        let mut rng = Rng::seed_from_u64(99);
        for _ in 0..50 {
            let items: Vec<(u32, u32)> = (0..200)
                .map(|_| {
                    let width = 1 + rng.index(32) as u32;
                    let value = if width == 32 {
                        rng.next_u32()
                    } else {
                        rng.next_u32() & ((1 << width) - 1)
                    };
                    (value, width)
                })
                .collect();
            let mut w = BitWriter::new();
            for (v, wd) in &items {
                w.write_bits(*v, *wd);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for (v, wd) in &items {
                assert_eq!(r.read_bits(*wd), *v);
            }
        }
    }
}
