//! Minimal neural networks with exact manual backpropagation.
//!
//! Two model families cover the paper's task spectrum:
//!
//! * [`Mlp`] — ReLU multilayer perceptron with softmax cross-entropy, the
//!   stand-in for the classification workloads (ResNet50/VGG/ViT on
//!   ImageNet);
//! * [`EmbeddingLm`] — embedding + output-projection language model over a
//!   discrete vocabulary, the stand-in for the language-modelling workloads
//!   (Transformer-XL/GPT-2 perplexity); its large embedding table exercises
//!   the sparse-gradient, adaptive-compression-friendly layer profile.

use cgx_models::LayerKind;
use cgx_tensor::{matmul, matmul_nt, matmul_tn, Rng, Tensor};

/// Softmax cross-entropy over a batch of logits.
///
/// Returns the mean loss and the gradient w.r.t. the logits (already
/// divided by the batch size).
///
/// # Panics
///
/// Panics if `logits` is not `batch x classes` or a label is out of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f64, Tensor) {
    let (b, c) = logits.shape().as_matrix();
    assert_eq!(b, labels.len(), "batch size mismatch");
    let mut dlogits = Tensor::zeros(&[b, c]);
    let mut loss = 0.0f64;
    for (i, &y) in labels.iter().enumerate() {
        assert!(y < c, "label {y} out of range for {c} classes");
        let row = &logits.as_slice()[i * c..(i + 1) * c];
        let max = row.iter().fold(f32::NEG_INFINITY, |m, x| m.max(*x));
        let exp: Vec<f64> = row.iter().map(|x| ((x - max) as f64).exp()).collect();
        let z: f64 = exp.iter().sum();
        loss += -(exp[y] / z).ln();
        for j in 0..c {
            let p = exp[j] / z;
            dlogits[i * c + j] = ((p - f64::from(u8::from(j == y))) / b as f64) as f32;
        }
    }
    (loss / b as f64, dlogits)
}

/// A named parameter with its CGX layer classification.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpec {
    /// Parameter name (e.g. `"fc1.weight"`).
    pub name: String,
    /// Layer role, used by CGX's filters.
    pub kind: LayerKind,
}

/// ReLU multilayer perceptron classifier.
///
/// Parameters are stored as interleaved (weight, bias) pairs per layer, in
/// forward order — the same convention the CGX registration API expects.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    dims: Vec<usize>,
    /// `[w0, b0, w1, b1, ...]`; `wi` is `out x in`.
    params: Vec<Tensor>,
}

impl Mlp {
    /// Creates an MLP with the given layer dimensions
    /// (`[input, hidden..., classes]`), He-initialized.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dimensions are given.
    pub fn new(rng: &mut Rng, dims: &[usize]) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let mut params = Vec::new();
        for w in dims.windows(2) {
            let (fan_in, fan_out) = (w[0], w[1]);
            let scale = (2.0 / fan_in as f64).sqrt() as f32;
            let mut weight = Tensor::randn(rng, &[fan_out, fan_in]);
            weight.scale(scale);
            params.push(weight);
            params.push(Tensor::zeros(&[fan_out]));
        }
        Mlp {
            dims: dims.to_vec(),
            params,
        }
    }

    /// Layer dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Parameter tensors in forward order.
    pub fn params(&self) -> &[Tensor] {
        &self.params
    }

    /// Mutable parameter tensors.
    pub fn params_mut(&mut self) -> &mut [Tensor] {
        &mut self.params
    }

    /// Names and kinds of the parameters, aligned with [`Mlp::params`].
    pub fn param_specs(&self) -> Vec<ParamSpec> {
        (0..self.dims.len() - 1)
            .flat_map(|i| {
                [
                    ParamSpec {
                        name: format!("fc{i}.weight"),
                        kind: LayerKind::Linear,
                    },
                    ParamSpec {
                        name: format!("fc{i}.bias"),
                        kind: LayerKind::Bias,
                    },
                ]
            })
            .collect()
    }

    /// Forward pass returning logits for a `batch x input` tensor.
    ///
    /// # Panics
    ///
    /// Panics if `x` does not have `input` columns.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let mut h = x.clone();
        let layers = self.dims.len() - 1;
        for l in 0..layers {
            h = self.affine(l, &h);
            if l + 1 < layers {
                relu_inplace(&mut h);
            }
        }
        h
    }

    fn affine(&self, l: usize, h: &Tensor) -> Tensor {
        let w = &self.params[2 * l];
        let b = &self.params[2 * l + 1];
        let mut out = matmul_nt(h, w);
        let (rows, cols) = out.shape().as_matrix();
        for i in 0..rows {
            for j in 0..cols {
                out[i * cols + j] += b[j];
            }
        }
        out
    }

    /// Mean loss and per-parameter gradients for a labelled batch.
    ///
    /// # Panics
    ///
    /// Panics on shape/label mismatches.
    pub fn loss_and_grads(&self, x: &Tensor, labels: &[usize]) -> (f64, Vec<Tensor>) {
        let layers = self.dims.len() - 1;
        // Forward, caching post-activation values.
        let mut acts: Vec<Tensor> = Vec::with_capacity(layers + 1);
        acts.push(x.clone());
        for l in 0..layers {
            let mut h = self.affine(l, acts.last().expect("non-empty"));
            if l + 1 < layers {
                relu_inplace(&mut h);
            }
            acts.push(h);
        }
        let (loss, mut delta) = softmax_cross_entropy(acts.last().expect("logits"), labels);
        // Backward.
        let mut grads: Vec<Tensor> = vec![Tensor::zeros(&[1]); self.params.len()];
        for l in (0..layers).rev() {
            let input = &acts[l];
            // dW = deltaᵀ · input, db = column sums of delta.
            grads[2 * l] = matmul_tn(&delta, input);
            let (b_rows, cols) = delta.shape().as_matrix();
            let mut db = Tensor::zeros(&[cols]);
            for i in 0..b_rows {
                for j in 0..cols {
                    db[j] += delta[i * cols + j];
                }
            }
            grads[2 * l + 1] = db;
            if l > 0 {
                // dx = delta · W, masked by the ReLU derivative.
                let mut dx = matmul(&delta, &self.params[2 * l]);
                for (g, a) in dx.as_mut_slice().iter_mut().zip(acts[l].as_slice()) {
                    if *a <= 0.0 {
                        *g = 0.0;
                    }
                }
                delta = dx;
            }
        }
        (loss, grads)
    }

    /// Classification accuracy on a labelled batch.
    pub fn accuracy(&self, x: &Tensor, labels: &[usize]) -> f64 {
        let logits = self.forward(x);
        let (b, c) = logits.shape().as_matrix();
        let correct = labels
            .iter()
            .enumerate()
            .filter(|(i, &y)| {
                let row = &logits.as_slice()[i * c..(i + 1) * c];
                let pred = row
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                    .map(|(j, _)| j)
                    .expect("non-empty row");
                pred == y
            })
            .count();
        correct as f64 / b as f64
    }
}

fn relu_inplace(t: &mut Tensor) {
    for v in t.as_mut_slice() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// Embedding language model: `logits = E[x] · Wᵀ`, trained with softmax
/// cross-entropy on next-token prediction.
///
/// Deliberately shaped like the paper's Transformer workloads in the one
/// respect that matters to CGX: a vocabulary-sized embedding table that
/// dwarfs the rest of the model and receives sparse gradients.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingLm {
    vocab: usize,
    dim: usize,
    /// `[embedding (V x d), output weight (V x d), output bias (V)]`.
    params: Vec<Tensor>,
}

impl EmbeddingLm {
    /// Creates a model over `vocab` tokens with embedding width `dim`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rng: &mut Rng, vocab: usize, dim: usize) -> Self {
        assert!(vocab > 0 && dim > 0, "empty model");
        let scale = (1.0 / dim as f64).sqrt() as f32;
        let mut emb = Tensor::randn(rng, &[vocab, dim]);
        emb.scale(scale);
        let mut out_w = Tensor::randn(rng, &[vocab, dim]);
        out_w.scale(scale);
        EmbeddingLm {
            vocab,
            dim,
            params: vec![emb, out_w, Tensor::zeros(&[vocab])],
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Parameter tensors: embedding, output weight, output bias.
    pub fn params(&self) -> &[Tensor] {
        &self.params
    }

    /// Mutable parameter tensors.
    pub fn params_mut(&mut self) -> &mut [Tensor] {
        &mut self.params
    }

    /// Names and kinds aligned with [`EmbeddingLm::params`].
    pub fn param_specs(&self) -> Vec<ParamSpec> {
        vec![
            ParamSpec {
                name: "word_emb.weight".into(),
                kind: LayerKind::Embedding,
            },
            ParamSpec {
                name: "out.weight".into(),
                kind: LayerKind::Linear,
            },
            ParamSpec {
                name: "out.bias".into(),
                kind: LayerKind::Bias,
            },
        ]
    }

    /// Mean next-token loss and gradients for (context, target) pairs.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or a token is out of range.
    pub fn loss_and_grads(&self, context: &[usize], target: &[usize]) -> (f64, Vec<Tensor>) {
        assert_eq!(context.len(), target.len(), "context/target mismatch");
        let b = context.len();
        let d = self.dim;
        let emb = &self.params[0];
        let out_w = &self.params[1];
        let out_b = &self.params[2];
        // Gather embeddings.
        let mut h = Tensor::zeros(&[b, d]);
        for (i, &tok) in context.iter().enumerate() {
            assert!(tok < self.vocab, "token {tok} out of range");
            h.as_mut_slice()[i * d..(i + 1) * d]
                .copy_from_slice(&emb.as_slice()[tok * d..(tok + 1) * d]);
        }
        // Logits = h Wᵀ + b.
        let mut logits = matmul_nt(&h, out_w);
        for i in 0..b {
            for j in 0..self.vocab {
                logits[i * self.vocab + j] += out_b[j];
            }
        }
        let (loss, delta) = softmax_cross_entropy(&logits, target);
        // Gradients.
        let d_w = matmul_tn(&delta, &h); // V x d
        let mut d_b = Tensor::zeros(&[self.vocab]);
        for i in 0..b {
            for j in 0..self.vocab {
                d_b[j] += delta[i * self.vocab + j];
            }
        }
        let dh = matmul(&delta, out_w); // b x d
        let mut d_emb = Tensor::zeros(&[self.vocab, d]);
        for (i, &tok) in context.iter().enumerate() {
            for k in 0..d {
                d_emb[tok * d + k] += dh[i * d + k];
            }
        }
        (loss, vec![d_emb, d_w, d_b])
    }

    /// Perplexity on (context, target) pairs.
    pub fn perplexity(&self, context: &[usize], target: &[usize]) -> f64 {
        let (loss, _) = self.loss_and_grads(context, target);
        loss.exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_ce_matches_hand_computation() {
        let logits = Tensor::from_vec(&[1, 2], vec![0.0, 0.0]);
        let (loss, d) = softmax_cross_entropy(&logits, &[0]);
        assert!((loss - (2.0f64).ln()).abs() < 1e-6);
        assert!((d[0] - (-0.5)).abs() < 1e-6);
        assert!((d[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn softmax_ce_is_stable_for_large_logits() {
        let logits = Tensor::from_vec(&[1, 3], vec![1000.0, 0.0, -1000.0]);
        let (loss, d) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss.is_finite() && loss < 1e-6);
        assert!(d.as_slice().iter().all(|x| x.is_finite()));
    }

    fn numeric_grad_check<F>(params_len: usize, mut f: F)
    where
        F: FnMut(Option<(usize, usize, f32)>) -> (f64, Vec<Tensor>),
    {
        let (base_loss, grads) = f(None);
        assert!(base_loss.is_finite());
        let eps = 1e-3f32;
        let mut rng = Rng::seed_from_u64(77);
        for (p, grad) in grads.iter().enumerate().take(params_len) {
            let len = grad.len();
            // Probe a few random coordinates.
            for _ in 0..3.min(len) {
                let i = rng.index(len);
                let (lp, _) = f(Some((p, i, eps)));
                let (lm, _) = f(Some((p, i, -eps)));
                let numeric = (lp - lm) / (2.0 * eps as f64);
                let analytic = grad[i] as f64;
                assert!(
                    (numeric - analytic).abs() < 1e-2 * (1.0 + analytic.abs()),
                    "param {p} idx {i}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn mlp_gradients_pass_numeric_check() {
        let mut rng = Rng::seed_from_u64(1);
        let model = Mlp::new(&mut rng, &[4, 6, 3]);
        let x = Tensor::randn(&mut rng, &[5, 4]);
        let y = vec![0usize, 1, 2, 1, 0];
        let n_params = model.params().len();
        numeric_grad_check(n_params, |perturb| {
            let mut m = model.clone();
            if let Some((p, i, eps)) = perturb {
                m.params_mut()[p][i] += eps;
            }
            m.loss_and_grads(&x, &y)
        });
    }

    #[test]
    fn embedding_lm_gradients_pass_numeric_check() {
        let mut rng = Rng::seed_from_u64(2);
        let model = EmbeddingLm::new(&mut rng, 7, 5);
        let ctx = vec![0usize, 3, 6, 3];
        let tgt = vec![1usize, 2, 0, 4];
        numeric_grad_check(3, |perturb| {
            let mut m = model.clone();
            if let Some((p, i, eps)) = perturb {
                m.params_mut()[p][i] += eps;
            }
            m.loss_and_grads(&ctx, &tgt)
        });
    }

    #[test]
    fn embedding_gradient_is_row_sparse() {
        let mut rng = Rng::seed_from_u64(3);
        let model = EmbeddingLm::new(&mut rng, 50, 4);
        let (_, grads) = model.loss_and_grads(&[3, 3, 9], &[1, 2, 3]);
        let demb = &grads[0];
        for row in 0..50 {
            let touched = row == 3 || row == 9;
            let nonzero = (0..4).any(|k| demb[row * 4 + k] != 0.0);
            assert_eq!(nonzero, touched, "row {row}");
        }
    }

    #[test]
    fn sgd_on_mlp_learns_a_separable_task() {
        let mut rng = Rng::seed_from_u64(4);
        let mut model = Mlp::new(&mut rng, &[2, 16, 2]);
        // Class = sign of x0.
        for _ in 0..300 {
            let x = Tensor::randn(&mut rng, &[32, 2]);
            let y: Vec<usize> = (0..32).map(|i| usize::from(x[i * 2] > 0.0)).collect();
            let (_, grads) = model.loss_and_grads(&x, &y);
            for (p, g) in model.params_mut().iter_mut().zip(&grads) {
                p.axpy(-0.5, g);
            }
        }
        let x = Tensor::randn(&mut rng, &[256, 2]);
        let y: Vec<usize> = (0..256).map(|i| usize::from(x[i * 2] > 0.0)).collect();
        assert!(model.accuracy(&x, &y) > 0.95);
    }

    #[test]
    fn lm_learns_a_deterministic_bigram() {
        let mut rng = Rng::seed_from_u64(5);
        let mut model = EmbeddingLm::new(&mut rng, 6, 8);
        // Deterministic successor: t -> (t + 1) % 6.
        let ctx: Vec<usize> = (0..60).map(|i| i % 6).collect();
        let tgt: Vec<usize> = ctx.iter().map(|t| (t + 1) % 6).collect();
        let ppl_before = model.perplexity(&ctx, &tgt);
        for _ in 0..400 {
            let (_, grads) = model.loss_and_grads(&ctx, &tgt);
            for (p, g) in model.params_mut().iter_mut().zip(&grads) {
                p.axpy(-1.0, g);
            }
        }
        let ppl_after = model.perplexity(&ctx, &tgt);
        assert!(
            ppl_after < 1.2 && ppl_before > 3.0,
            "{ppl_before} -> {ppl_after}"
        );
    }

    #[test]
    fn param_specs_align_with_params() {
        let mut rng = Rng::seed_from_u64(6);
        let mlp = Mlp::new(&mut rng, &[3, 4, 2]);
        assert_eq!(mlp.param_specs().len(), mlp.params().len());
        let lm = EmbeddingLm::new(&mut rng, 10, 3);
        assert_eq!(lm.param_specs().len(), lm.params().len());
        assert_eq!(lm.param_specs()[0].kind, LayerKind::Embedding);
    }
}
