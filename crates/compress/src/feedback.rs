//! Error feedback (EF-SGD) wrapper.
//!
//! Error feedback accumulates the part of the gradient a lossy compressor
//! dropped and re-injects it into the next step's gradient. Karimireddy et
//! al. (2019) show this "fixes" biased compressors (signSGD, TopK); the CGX
//! paper applies it to TopK on embedding layers. The wrapper composes with
//! any inner [`Compressor`].

use crate::{Compressor, Encoded, ScratchPool};
use cgx_tensor::{Rng, Tensor};

/// Wraps a compressor with an error-feedback residual buffer.
///
/// On each call the residual from the previous step is added to the incoming
/// gradient before compression, and the new residual (input minus what the
/// wire format can represent) is retained.
///
/// # Examples
///
/// ```
/// use cgx_compress::{Compressor, ErrorFeedback, TopKCompressor};
/// use cgx_tensor::{Rng, Tensor};
/// let mut rng = Rng::seed_from_u64(0);
/// let mut ef = ErrorFeedback::new(Box::new(TopKCompressor::new(0.5)));
/// let g = Tensor::from_slice(&[1.0, 0.1]);
/// let _ = ef.compress(&g, &mut rng);
/// // The dropped 0.1 is remembered:
/// assert!(ef.residual().unwrap().as_slice()[1] > 0.0);
/// ```
pub struct ErrorFeedback {
    inner: Box<dyn Compressor>,
    residual: Option<Tensor>,
}

impl std::fmt::Debug for ErrorFeedback {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ErrorFeedback")
            .field("inner", &self.inner.name())
            .field("has_residual", &self.residual.is_some())
            .finish()
    }
}

impl ErrorFeedback {
    /// Wraps `inner` with a fresh (zero) residual.
    pub fn new(inner: Box<dyn Compressor>) -> Self {
        ErrorFeedback {
            inner,
            residual: None,
        }
    }

    /// The residual accumulated so far, if any step has run.
    pub fn residual(&self) -> Option<&Tensor> {
        self.residual.as_ref()
    }

    /// Clears the residual (e.g. at epoch boundaries, if desired).
    pub fn reset(&mut self) {
        self.residual = None;
    }

    /// The stored residual, but only if it matches the incoming gradient's
    /// element count. Chunked allreduce schemes feed one compressor slices
    /// of varying length (near-equal chunks differ by one element, and the
    /// aggregate chunk differs from the scatter chunks), so a stale
    /// residual of another length is dropped rather than zip-panicking —
    /// deterministically, hence identically on every rank and in both the
    /// sequential and engine paths.
    fn residual_for(&self, len: usize) -> Option<&Tensor> {
        self.residual.as_ref().filter(|r| r.len() == len)
    }
}

impl Compressor for ErrorFeedback {
    fn name(&self) -> String {
        format!("ef[{}]", self.inner.name())
    }

    fn compress(&mut self, grad: &Tensor, rng: &mut Rng) -> Encoded {
        let mut corrected = grad.clone();
        if let Some(res) = self.residual_for(grad.len()) {
            corrected.add_assign(res);
        }
        let enc = self.inner.compress(&corrected, rng);
        let mut new_residual = corrected;
        let reconstructed = self.inner.decompress(&enc);
        new_residual.sub_assign(&reconstructed);
        self.residual = Some(new_residual);
        enc
    }

    fn compress_pooled(&mut self, grad: &Tensor, rng: &mut Rng, pool: &ScratchPool) -> Encoded {
        let mut corrected = grad.clone();
        if let Some(res) = self.residual_for(grad.len()) {
            corrected.add_assign(res);
        }
        let enc = self.inner.compress_pooled(&corrected, rng, pool);
        // Subtract the reconstruction through pooled scratch instead of
        // materializing a tensor; arithmetic matches `sub_assign`.
        let mut recon = pool.take_f32(grad.len());
        self.inner.decompress_into(&enc, &mut recon);
        let mut new_residual = corrected;
        for (r, v) in new_residual.as_mut_slice().iter_mut().zip(&recon) {
            *r -= *v;
        }
        pool.put_f32(recon);
        self.residual = Some(new_residual);
        enc
    }

    fn decompress(&self, enc: &Encoded) -> Tensor {
        self.inner.decompress(enc)
    }

    fn decompress_into(&self, enc: &Encoded, out: &mut [f32]) {
        self.inner.decompress_into(enc, out);
    }

    fn decompress_add_into(&self, enc: &Encoded, out: &mut [f32]) {
        self.inner.decompress_add_into(enc, out);
    }

    fn compressed_bytes(&self, n: usize) -> usize {
        self.inner.compressed_bytes(n)
    }

    fn is_lossless(&self) -> bool {
        self.inner.is_lossless()
    }

    fn kernel_cost_per_element(&self) -> f64 {
        // The residual add and subtract are two extra streaming passes.
        self.inner.kernel_cost_per_element() + 1.0e-11
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TopKCompressor;

    #[test]
    fn residual_feeds_back_dropped_mass() {
        let mut rng = Rng::seed_from_u64(1);
        // Component 1 is always dropped by top-1 at first, but error feedback
        // accumulates it until it wins.
        let g = Tensor::from_slice(&[1.0, 0.4]);
        let mut ef = ErrorFeedback::new(Box::new(TopKCompressor::new(0.5)));
        let enc1 = ef.compress(&g, &mut rng);
        let first = ef.decompress(&enc1);
        assert_eq!(first.as_slice(), &[1.0, 0.0]);
        // After two more identical steps the residual at index 1 is 1.2 > 1.0
        // so index 1 finally transmits (with the accumulated value).
        let _ = ef.compress(&g, &mut rng);
        let enc3 = ef.compress(&g, &mut rng);
        let third = ef.decompress(&enc3);
        assert_eq!(third.as_slice()[0], 0.0);
        assert!((third.as_slice()[1] - 1.2).abs() < 1e-6);
    }

    #[test]
    fn long_run_transmits_all_mass() {
        // Over many steps EF-TopK must transmit (almost) the full gradient
        // sum: residual stays bounded.
        let mut rng = Rng::seed_from_u64(2);
        let g = Tensor::from_slice(&[0.9, 0.5, 0.3, 0.1]);
        let mut ef = ErrorFeedback::new(Box::new(TopKCompressor::new(0.25)));
        let mut transmitted = Tensor::zeros(&[4]);
        let steps = 400;
        for _ in 0..steps {
            let enc = ef.compress(&g, &mut rng);
            transmitted.add_assign(&ef.decompress(&enc));
        }
        for i in 0..4 {
            let expect = g[i] * steps as f32;
            let got = transmitted[i];
            assert!(
                (got - expect).abs() / expect < 0.05,
                "component {i}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn reset_clears_residual() {
        let mut rng = Rng::seed_from_u64(3);
        let g = Tensor::from_slice(&[1.0, 0.4]);
        let mut ef = ErrorFeedback::new(Box::new(TopKCompressor::new(0.5)));
        let _ = ef.compress(&g, &mut rng);
        assert!(ef.residual().is_some());
        ef.reset();
        assert!(ef.residual().is_none());
    }

    #[test]
    fn name_wraps_inner() {
        let ef = ErrorFeedback::new(Box::new(TopKCompressor::new(0.01)));
        assert_eq!(ef.name(), "ef[topk(1%)]");
    }

    #[test]
    fn mismatched_length_drops_residual_instead_of_panicking() {
        // Chunked allreduce feeds one compressor slices of different
        // lengths (e.g. 257-element then 256-element chunks). The stale
        // residual must be ignored, not zipped against the wrong length.
        let mut rng = Rng::seed_from_u64(4);
        let mut ef = ErrorFeedback::new(Box::new(TopKCompressor::new(0.5)));
        let _ = ef.compress(&Tensor::from_slice(&[1.0, 0.4, 0.2]), &mut rng);
        let enc = ef.compress(&Tensor::from_slice(&[1.0, 0.4]), &mut rng);
        // Fresh-start behavior: identical to a wrapper with no residual.
        let mut fresh = ErrorFeedback::new(Box::new(TopKCompressor::new(0.5)));
        let fresh_enc = fresh.compress(&Tensor::from_slice(&[1.0, 0.4]), &mut rng);
        assert_eq!(enc.payload(), fresh_enc.payload());
        // And the new residual has the new length.
        assert_eq!(ef.residual().unwrap().len(), 2);
    }
}
