//! Compressed Allreduce algorithms (paper Section 3, "Reduction Schemes").
//!
//! All schemes are generic over the [`Compressor`], and each performs the
//! decompress-sum-recompress dance exactly where a real implementation
//! must, so the *number of lossy re-quantizations* per scheme is faithful:
//!
//! | scheme | quantizations on the critical path | consensus |
//! |---|---|---|
//! | SRA | 2 (once before aggregation, once after) | bit-exact |
//! | Ring | N-1 during reduce-scatter + 1 relay | bit-exact |
//! | Tree | up to log2(N)+1 up the tree | bit-exact |
//! | Allgather | 1 | bit-exact |
//!
//! "Consensus" means every rank reconstructs the identical result tensor,
//! because final values always travel as (relayed) encoded chunks that all
//! ranks decode identically. Error magnitude differs by scheme — the basis
//! of Figure 10's finding that SRA is preferable.
//!
//! # Fused fast path
//!
//! Peer payloads are summed straight into one accumulator slice via
//! [`Compressor::decompress_add_into`] — no intermediate `Tensor` per
//! payload — and every encode buffer and `f32` accumulator is drawn from a
//! [`ScratchPool`], so steady-state rounds allocate nothing in the
//! compression path. Decode order is unchanged from the scalar path (global
//! rank/range order, one `+=` per element in index order), which keeps
//! `f32` sums — and therefore cross-rank consensus — bit-identical to the
//! unfused implementation. The `*_scratch` entry points accept a shared
//! pool; the plain entry points create a transient one per call.

use crate::error::CommError;
use crate::fault::FaultStats;
use crate::transport::Transport;
use cgx_compress::{Compressor, Encoded, ScratchPool};
use cgx_tensor::{Rng, Tensor};
use std::ops::Range;

/// Per-rank traffic accounting for one Allreduce.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllreduceStats {
    /// Payload bytes this rank transmitted.
    pub bytes_sent: usize,
    /// Number of compression-kernel invocations on this rank.
    pub compress_calls: usize,
    /// Number of decompression-kernel invocations on this rank.
    pub decompress_calls: usize,
    /// Wall time spent inside compression kernels, nanoseconds.
    pub compress_ns: u64,
    /// Wall time spent blocked on the transport (waiting for peer
    /// payloads), nanoseconds. Under the communication engine this is idle
    /// time attributed to the collective being waited on — the quantity
    /// layer-parallelism exists to hide.
    pub wait_ns: u64,
    /// Wall time spent inside decode / decode-accumulate kernels,
    /// nanoseconds.
    pub decode_ns: u64,
    /// Maximum number of collectives simultaneously in flight on this rank
    /// while this one ran. Always 1 for the sequential entry points; > 1
    /// indicates the communication engine actually overlapped layers.
    pub max_in_flight: usize,
    /// Transport-level fault activity attributed to this collective:
    /// injected faults observed, corruptions caught by checksums, and
    /// retransmissions that masked them. All zeros on a fault-free
    /// transport; populated by [`crate::engine::CommEngine::wait`] and the
    /// elastic trainers when running over a [`crate::fault::ChaosTransport`].
    pub faults: FaultStats,
}

impl AllreduceStats {
    /// Folds another collective's stats into this one (used when a step
    /// aggregates per-layer stats). `max_in_flight` takes the maximum;
    /// everything else sums. Timing fields saturate instead of wrapping:
    /// long-run aggregations (a whole training job's layer × step matrix)
    /// must degrade to "pinned at max" rather than silently overflow into
    /// a small number.
    pub fn merge(&mut self, other: &AllreduceStats) {
        self.bytes_sent = self.bytes_sent.saturating_add(other.bytes_sent);
        self.compress_calls = self.compress_calls.saturating_add(other.compress_calls);
        self.decompress_calls = self.decompress_calls.saturating_add(other.decompress_calls);
        self.compress_ns = self.compress_ns.saturating_add(other.compress_ns);
        self.wait_ns = self.wait_ns.saturating_add(other.wait_ns);
        self.decode_ns = self.decode_ns.saturating_add(other.decode_ns);
        self.max_in_flight = self.max_in_flight.max(other.max_in_flight);
        self.faults.merge(&other.faults);
    }
}

/// Runs `f`, adding its wall time in nanoseconds to `slot`.
#[inline]
fn timed<T>(slot: &mut u64, f: impl FnOnce() -> T) -> T {
    let t0 = std::time::Instant::now();
    let out = f();
    *slot += t0.elapsed().as_nanos() as u64;
    out
}

/// The reduction algorithm to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Algorithm {
    /// Scatter-Reduce-Allgather (CGX's choice).
    #[default]
    ScatterReduceAllgather,
    /// Chunked ring.
    Ring,
    /// Binomial tree (hierarchical parameter server).
    Tree,
    /// Broadcast-everything allgather (the GRACE strategy).
    AllgatherBroadcast,
}

impl Algorithm {
    /// All algorithms in Figure 10 order.
    pub fn all() -> [Algorithm; 4] {
        [
            Algorithm::ScatterReduceAllgather,
            Algorithm::Ring,
            Algorithm::Tree,
            Algorithm::AllgatherBroadcast,
        ]
    }
}

/// Splits `len` elements into `n` near-equal contiguous ranges (first
/// `len % n` ranges get the extra element; ranges may be empty for tiny
/// inputs).
pub fn chunk_ranges(len: usize, n: usize) -> Vec<Range<usize>> {
    assert!(n > 0, "need at least one chunk");
    let base = len / n;
    let rem = len % n;
    let mut out = Vec::with_capacity(n);
    let mut start = 0;
    for i in 0..n {
        let sz = base + usize::from(i < rem);
        out.push(start..start + sz);
        start += sz;
    }
    out
}

/// Dispatches to the requested algorithm.
///
/// # Errors
///
/// Propagates transport failures ([`CommError`]).
pub fn allreduce(
    alg: Algorithm,
    t: &dyn Transport,
    grad: &Tensor,
    comp: &mut dyn Compressor,
    rng: &mut Rng,
) -> Result<(Tensor, AllreduceStats), CommError> {
    allreduce_scratch(alg, t, grad, comp, rng, &ScratchPool::new())
}

/// Dispatches to the requested algorithm, drawing all encode buffers and
/// accumulator scratch from `pool`. Chunk ranges are computed once here and
/// shared by the chunked schemes rather than recomputed per scheme.
///
/// # Errors
///
/// Propagates transport failures ([`CommError`]).
pub fn allreduce_scratch(
    alg: Algorithm,
    t: &dyn Transport,
    grad: &Tensor,
    comp: &mut dyn Compressor,
    rng: &mut Rng,
    pool: &ScratchPool,
) -> Result<(Tensor, AllreduceStats), CommError> {
    let ranges = chunk_ranges(grad.len(), t.world());
    match alg {
        Algorithm::ScatterReduceAllgather => sra_with_ranges(t, grad, comp, rng, pool, &ranges),
        Algorithm::Ring => ring_with_ranges(t, grad, comp, rng, pool, &ranges),
        Algorithm::Tree => allreduce_tree_scratch(t, grad, comp, rng, pool),
        Algorithm::AllgatherBroadcast => allreduce_gather_scratch(t, grad, comp, rng, pool),
    }
}

/// Scatter-Reduce-Allgather: two rounds, one aggregation point per chunk.
///
/// # Errors
///
/// Propagates transport failures.
pub fn allreduce_sra(
    t: &dyn Transport,
    grad: &Tensor,
    comp: &mut dyn Compressor,
    rng: &mut Rng,
) -> Result<(Tensor, AllreduceStats), CommError> {
    allreduce_sra_scratch(t, grad, comp, rng, &ScratchPool::new())
}

/// [`allreduce_sra`] with explicit scratch: encode buffers and the chunk
/// accumulator come from (and return to) `pool`.
///
/// # Errors
///
/// Propagates transport failures.
pub fn allreduce_sra_scratch(
    t: &dyn Transport,
    grad: &Tensor,
    comp: &mut dyn Compressor,
    rng: &mut Rng,
    pool: &ScratchPool,
) -> Result<(Tensor, AllreduceStats), CommError> {
    let ranges = chunk_ranges(grad.len(), t.world());
    sra_with_ranges(t, grad, comp, rng, pool, &ranges)
}

fn sra_with_ranges(
    t: &dyn Transport,
    grad: &Tensor,
    comp: &mut dyn Compressor,
    rng: &mut Rng,
    pool: &ScratchPool,
    ranges: &[Range<usize>],
) -> Result<(Tensor, AllreduceStats), CommError> {
    let n = t.world();
    let me = t.rank();
    let mut stats = AllreduceStats::default();
    if n == 1 {
        return Ok((grad.clone(), stats));
    }
    stats.max_in_flight = 1;
    let gslice = grad.as_slice();
    // Phase 1: send each peer its chunk of my gradient.
    for (j, range) in ranges.iter().enumerate() {
        if j == me || range.is_empty() {
            continue;
        }
        let enc = timed(&mut stats.compress_ns, || {
            comp.compress_slice_at(range.start, &gslice[range.clone()], rng, pool)
        });
        stats.compress_calls += 1;
        stats.bytes_sent += enc.payload_bytes();
        t.send(j, enc)?;
    }
    // Aggregate my chunk: peers' payloads decode-accumulate straight into
    // pooled scratch, in strict global rank order *including my own
    // contribution* (float addition is not associative — the fixed order
    // keeps every rank's sums bit-equal). Because the order is purely
    // rank-indexed and never depends on which rank owns the chunk, the
    // per-element sum is invariant under re-chunking — the property that
    // lets the communication engine coalesce small layers and segment
    // large ones without perturbing lossless results.
    // The ranges partition the gradient and every non-empty range is
    // overwritten by a decompress below, so `out` needs no copy of the
    // input — zeros (one memset) instead of a clone (read + write).
    let mut out = Tensor::zeros(grad.shape().dims());
    if !ranges[me].is_empty() {
        let mut mine = pool.take_f32(ranges[me].len());
        for j in 0..n {
            if j == me {
                let own = &gslice[ranges[me].clone()];
                if j == 0 {
                    mine.copy_from_slice(own);
                } else {
                    for (m, g) in mine.iter_mut().zip(own) {
                        *m += *g;
                    }
                }
                continue;
            }
            let enc = timed(&mut stats.wait_ns, || t.recv(j))?;
            timed(&mut stats.decode_ns, || {
                if j == 0 {
                    comp.decompress_into(&enc, &mut mine);
                } else {
                    comp.decompress_add_into(&enc, &mut mine);
                }
            });
            stats.decompress_calls += 1;
            pool.recycle(enc);
        }
        // Phase 2: broadcast the aggregate; decode my own encoding so
        // every rank holds bit-identical values (consensus).
        let enc = timed(&mut stats.compress_ns, || {
            comp.compress_slice_at(ranges[me].start, &mine, rng, pool)
        });
        stats.compress_calls += 1;
        stats.bytes_sent += enc.payload_bytes() * (n - 1);
        t.broadcast(&enc)?;
        timed(&mut stats.decode_ns, || {
            comp.decompress_into(&enc, &mut out.as_mut_slice()[ranges[me].clone()])
        });
        stats.decompress_calls += 1;
        pool.recycle(enc);
        pool.put_f32(mine);
    }
    for (j, range) in ranges.iter().enumerate() {
        if j == me || range.is_empty() {
            continue;
        }
        let enc = timed(&mut stats.wait_ns, || t.recv(j))?;
        if enc.shape().len() != range.len() {
            return Err(CommError::ShapeMismatch {
                detail: format!(
                    "chunk {j}: expected {} elements, got {}",
                    range.len(),
                    enc.shape().len()
                ),
            });
        }
        timed(&mut stats.decode_ns, || {
            comp.decompress_into(&enc, &mut out.as_mut_slice()[range.clone()])
        });
        stats.decompress_calls += 1;
        pool.recycle(enc);
    }
    Ok((out, stats))
}

/// Chunked Ring-Allreduce: the reduce-scatter phase re-quantizes at every
/// hop; the allgather phase relays immutable encoded chunks.
///
/// # Errors
///
/// Propagates transport failures.
pub fn allreduce_ring(
    t: &dyn Transport,
    grad: &Tensor,
    comp: &mut dyn Compressor,
    rng: &mut Rng,
) -> Result<(Tensor, AllreduceStats), CommError> {
    allreduce_ring_scratch(t, grad, comp, rng, &ScratchPool::new())
}

/// [`allreduce_ring`] with explicit scratch.
///
/// # Errors
///
/// Propagates transport failures.
pub fn allreduce_ring_scratch(
    t: &dyn Transport,
    grad: &Tensor,
    comp: &mut dyn Compressor,
    rng: &mut Rng,
    pool: &ScratchPool,
) -> Result<(Tensor, AllreduceStats), CommError> {
    let ranges = chunk_ranges(grad.len(), t.world());
    ring_with_ranges(t, grad, comp, rng, pool, &ranges)
}

fn ring_with_ranges(
    t: &dyn Transport,
    grad: &Tensor,
    comp: &mut dyn Compressor,
    rng: &mut Rng,
    pool: &ScratchPool,
    ranges: &[Range<usize>],
) -> Result<(Tensor, AllreduceStats), CommError> {
    let n = t.world();
    let me = t.rank();
    let mut stats = AllreduceStats::default();
    if n == 1 {
        return Ok((grad.clone(), stats));
    }
    stats.max_in_flight = 1;
    let right = (me + 1) % n;
    let left = (me + n - 1) % n;
    let gslice = grad.as_slice();
    let mut chunks: Vec<Option<Vec<f32>>> = ranges
        .iter()
        .map(|r| {
            (!r.is_empty()).then(|| {
                let mut v = pool.take_f32(r.len());
                v.copy_from_slice(&gslice[r.clone()]);
                v
            })
        })
        .collect();
    // Reduce-scatter: after step s, chunk (me - s) has absorbed s+1 inputs.
    for s in 0..n - 1 {
        let send_idx = (me + n - s) % n;
        let recv_idx = (me + n - s - 1) % n;
        if let Some(c) = &chunks[send_idx] {
            let enc = timed(&mut stats.compress_ns, || {
                comp.compress_slice_at(ranges[send_idx].start, c, rng, pool)
            });
            stats.compress_calls += 1;
            stats.bytes_sent += enc.payload_bytes();
            t.send(right, enc)?;
        }
        if let Some(c) = chunks[recv_idx].as_mut() {
            let enc = timed(&mut stats.wait_ns, || t.recv(left))?;
            timed(&mut stats.decode_ns, || comp.decompress_add_into(&enc, c));
            stats.decompress_calls += 1;
            pool.recycle(enc);
        }
    }
    // I now own the fully-reduced chunk (me + 1) % n. Compress it once and
    // relay: every rank decodes identical bytes per chunk.
    let owned_idx = (me + 1) % n;
    let mut encs: Vec<Option<Encoded>> = vec![None; n];
    if let Some(c) = &chunks[owned_idx] {
        let enc = timed(&mut stats.compress_ns, || {
            comp.compress_slice_at(ranges[owned_idx].start, c, rng, pool)
        });
        stats.compress_calls += 1;
        encs[owned_idx] = Some(enc);
    }
    for s in 0..n - 1 {
        let send_idx = (me + 1 + n - s) % n;
        let recv_idx = (me + n - s) % n;
        if let Some(enc) = &encs[send_idx] {
            stats.bytes_sent += enc.payload_bytes();
            t.send(right, enc.clone())?;
        } else if !ranges[send_idx].is_empty() {
            unreachable!("chunk {send_idx} should have an encoding by step {s}");
        }
        if !ranges[recv_idx].is_empty() {
            let enc = timed(&mut stats.wait_ns, || t.recv(left))?;
            encs[recv_idx] = Some(enc);
        }
    }
    let mut out = grad.clone();
    for (i, r) in ranges.iter().enumerate() {
        if r.is_empty() {
            continue;
        }
        let enc = encs[i].as_ref().expect("all chunks gathered");
        timed(&mut stats.decode_ns, || {
            comp.decompress_into(enc, &mut out.as_mut_slice()[r.clone()])
        });
        stats.decompress_calls += 1;
    }
    for enc in encs.into_iter().flatten() {
        pool.recycle(enc);
    }
    for c in chunks.into_iter().flatten() {
        pool.put_f32(c);
    }
    Ok((out, stats))
}

/// Binomial-tree Allreduce (hierarchical parameter server): reduce to rank
/// 0 with a re-quantization per level, then relay rank 0's encoding down.
///
/// # Errors
///
/// Propagates transport failures.
pub fn allreduce_tree(
    t: &dyn Transport,
    grad: &Tensor,
    comp: &mut dyn Compressor,
    rng: &mut Rng,
) -> Result<(Tensor, AllreduceStats), CommError> {
    allreduce_tree_scratch(t, grad, comp, rng, &ScratchPool::new())
}

/// [`allreduce_tree`] with explicit scratch.
///
/// # Errors
///
/// Propagates transport failures.
pub fn allreduce_tree_scratch(
    t: &dyn Transport,
    grad: &Tensor,
    comp: &mut dyn Compressor,
    rng: &mut Rng,
    pool: &ScratchPool,
) -> Result<(Tensor, AllreduceStats), CommError> {
    let n = t.world();
    let me = t.rank();
    let mut stats = AllreduceStats::default();
    if n == 1 {
        return Ok((grad.clone(), stats));
    }
    stats.max_in_flight = 1;
    // Full-shape compression (compress_pooled, not compress_slice) so
    // shape-sensitive codecs see the original tensor geometry.
    let mut acc = grad.clone();
    // Reduce up the tree.
    let mut span = 1;
    while span < n {
        if me % (2 * span) == span {
            let enc = timed(&mut stats.compress_ns, || {
                comp.compress_pooled(&acc, rng, pool)
            });
            stats.compress_calls += 1;
            stats.bytes_sent += enc.payload_bytes();
            t.send(me - span, enc)?;
            break;
        }
        if me.is_multiple_of(2 * span) && me + span < n {
            let enc = timed(&mut stats.wait_ns, || t.recv(me + span))?;
            timed(&mut stats.decode_ns, || {
                comp.decompress_add_into(&enc, acc.as_mut_slice())
            });
            stats.decompress_calls += 1;
            pool.recycle(enc);
        }
        span *= 2;
    }
    // Broadcast the root's single encoding down the same tree.
    let mut top = 1usize;
    while top < n {
        top *= 2;
    }
    let root_enc: Encoded = if me == 0 {
        let enc = timed(&mut stats.compress_ns, || {
            comp.compress_pooled(&acc, rng, pool)
        });
        stats.compress_calls += 1;
        enc
    } else {
        // Find the span at which I will receive: the lowest set bit of me.
        let recv_span = me & me.wrapping_neg();
        let mut enc = None;
        let mut s = top / 2;
        while s >= 1 {
            if s == recv_span {
                enc = Some(timed(&mut stats.wait_ns, || t.recv(me - s))?);
                break;
            }
            s /= 2;
        }
        enc.expect("every non-root rank has a parent")
    };
    // Relay downward.
    let mut s = if me == 0 {
        top / 2
    } else {
        (me & me.wrapping_neg()) / 2
    };
    while s >= 1 {
        if me + s < n {
            stats.bytes_sent += root_enc.payload_bytes();
            t.send(me + s, root_enc.clone())?;
        }
        s /= 2;
    }
    let out = timed(&mut stats.decode_ns, || comp.decompress(&root_enc));
    stats.decompress_calls += 1;
    pool.recycle(root_enc);
    Ok((out, stats))
}

/// Allgather-broadcast (the GRACE implementation strategy): every rank
/// broadcasts its compressed gradient; everyone decodes and sums all `n`.
///
/// # Errors
///
/// Propagates transport failures.
pub fn allreduce_gather(
    t: &dyn Transport,
    grad: &Tensor,
    comp: &mut dyn Compressor,
    rng: &mut Rng,
) -> Result<(Tensor, AllreduceStats), CommError> {
    allreduce_gather_scratch(t, grad, comp, rng, &ScratchPool::new())
}

/// [`allreduce_gather`] with explicit scratch.
///
/// # Errors
///
/// Propagates transport failures.
pub fn allreduce_gather_scratch(
    t: &dyn Transport,
    grad: &Tensor,
    comp: &mut dyn Compressor,
    rng: &mut Rng,
    pool: &ScratchPool,
) -> Result<(Tensor, AllreduceStats), CommError> {
    let n = t.world();
    let me = t.rank();
    let mut stats = AllreduceStats::default();
    if n == 1 {
        return Ok((grad.clone(), stats));
    }
    stats.max_in_flight = 1;
    let enc = timed(&mut stats.compress_ns, || {
        comp.compress_pooled(grad, rng, pool)
    });
    stats.compress_calls += 1;
    stats.bytes_sent += enc.payload_bytes() * (n - 1);
    t.broadcast(&enc)?;
    // Decode all n encodings (own included, for consensus) and sum them in
    // global rank order — float addition is not associative, so a fixed
    // order is required for bit-identical results across ranks.
    let mut encs: Vec<Option<Encoded>> = vec![None; n];
    encs[me] = Some(enc);
    for (j, slot) in encs.iter_mut().enumerate() {
        if j != me {
            *slot = Some(timed(&mut stats.wait_ns, || t.recv(j))?);
        }
    }
    let mut out = Tensor::zeros(grad.shape().dims());
    for e in encs.iter().flatten() {
        timed(&mut stats.decode_ns, || {
            comp.decompress_add_into(e, out.as_mut_slice())
        });
        stats.decompress_calls += 1;
    }
    for e in encs.into_iter().flatten() {
        pool.recycle(e);
    }
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ThreadCluster;
    use cgx_compress::{NoneCompressor, QsgdCompressor};

    fn run_exact(alg: Algorithm, n: usize, len: usize) {
        let results = ThreadCluster::run(n, |t| {
            let mut rng = Rng::seed_from_u64(100 + t.rank() as u64);
            let grad = Tensor::from_vec(&[len], (0..len).map(|i| (t.rank() + i) as f32).collect());
            let mut c = NoneCompressor::new();
            allreduce(alg, &t, &grad, &mut c, &mut rng).unwrap().0
        })
        .unwrap();
        let expected: Vec<f32> = (0..len)
            .map(|i| (0..n).map(|r| (r + i) as f32).sum())
            .collect();
        for (rank, r) in results.iter().enumerate() {
            assert_eq!(r.as_slice(), expected.as_slice(), "{alg:?} rank {rank}");
        }
    }

    #[test]
    fn sra_exact_with_lossless_codec() {
        run_exact(Algorithm::ScatterReduceAllgather, 4, 37);
    }

    #[test]
    fn ring_exact_with_lossless_codec() {
        run_exact(Algorithm::Ring, 4, 37);
        run_exact(Algorithm::Ring, 5, 101);
    }

    #[test]
    fn tree_exact_with_lossless_codec() {
        run_exact(Algorithm::Tree, 4, 37);
        run_exact(Algorithm::Tree, 8, 64);
        // Non-power-of-two world sizes.
        run_exact(Algorithm::Tree, 5, 23);
        run_exact(Algorithm::Tree, 7, 40);
        run_exact(Algorithm::Tree, 3, 8);
    }

    #[test]
    fn gather_exact_with_lossless_codec() {
        run_exact(Algorithm::AllgatherBroadcast, 6, 50);
    }

    #[test]
    fn tiny_tensors_with_more_ranks_than_elements() {
        for alg in Algorithm::all() {
            run_exact(alg, 6, 3);
        }
    }

    #[test]
    fn two_rank_world() {
        for alg in Algorithm::all() {
            run_exact(alg, 2, 16);
        }
    }

    fn consensus_and_error(alg: Algorithm, n: usize) -> (bool, f64) {
        let len = 2048usize;
        let results = ThreadCluster::run(n, |t| {
            let mut rng = Rng::seed_from_u64(500 + t.rank() as u64);
            let grad = Tensor::randn(&mut rng, &[len]);
            let mut c = QsgdCompressor::new(4, 128);
            let (out, _) = allreduce(alg, &t, &grad, &mut c, &mut rng).unwrap();
            (grad, out)
        })
        .unwrap();
        let mut true_sum = Tensor::zeros(&[len]);
        for (g, _) in &results {
            true_sum.add_assign(g);
        }
        let consensus = results
            .iter()
            .all(|(_, out)| out.as_slice() == results[0].1.as_slice());
        let err = results[0].1.l2_distance(&true_sum) / true_sum.norm2();
        (consensus, err)
    }

    #[test]
    fn quantized_reductions_reach_consensus() {
        for alg in Algorithm::all() {
            let (consensus, err) = consensus_and_error(alg, 4);
            assert!(consensus, "{alg:?} ranks disagree");
            assert!(err < 0.5, "{alg:?} relative error {err}");
        }
    }

    #[test]
    fn ring_requantization_hurts_more_than_sra() {
        // Average over a few worlds: the ring's per-hop re-quantization
        // must produce at least as much error as SRA's single aggregation.
        let mut ring_err = 0.0;
        let mut sra_err = 0.0;
        for _ in 0..3 {
            ring_err += consensus_and_error(Algorithm::Ring, 8).1;
            sra_err += consensus_and_error(Algorithm::ScatterReduceAllgather, 8).1;
        }
        assert!(
            ring_err > sra_err,
            "ring {ring_err} should exceed sra {sra_err}"
        );
    }

    #[test]
    fn gather_bandwidth_cost_scales_with_world() {
        let n = 6;
        let stats = ThreadCluster::run(n, |t| {
            let mut rng = Rng::seed_from_u64(t.rank() as u64);
            let grad = Tensor::randn(&mut rng, &[1200]);
            let mut c = NoneCompressor::new();
            allreduce_gather(&t, &grad, &mut c, &mut rng).unwrap().1
        })
        .unwrap();
        for s in &stats {
            assert_eq!(s.bytes_sent, 1200 * 4 * (n - 1));
            assert_eq!(s.compress_calls, 1);
        }
    }

    #[test]
    fn sra_bandwidth_cost_is_two_passes_over_the_data() {
        let n = 4;
        let len = 4096;
        let stats = ThreadCluster::run(n, |t| {
            let mut rng = Rng::seed_from_u64(t.rank() as u64);
            let grad = Tensor::randn(&mut rng, &[len]);
            let mut c = NoneCompressor::new();
            allreduce_sra(&t, &grad, &mut c, &mut rng).unwrap().1
        })
        .unwrap();
        for s in &stats {
            // (n-1) chunks out + (n-1) copies of my aggregated chunk.
            assert_eq!(s.bytes_sent, 2 * (n - 1) * (len / n) * 4);
        }
    }

    #[test]
    fn kernel_call_counts_are_analytic() {
        // The fused path must invoke compress/decompress exactly as often
        // as the unfused implementation did.
        let n = 4usize;
        let len = 4096usize;
        for (alg, compress, decompress) in [
            // SRA: (n-1) chunk sends + 1 aggregate; (n-1) peer chunks +
            // 1 own consensus decode + (n-1) gathered chunks.
            (Algorithm::ScatterReduceAllgather, n, 2 * n - 1),
            // Ring: (n-1) reduce-scatter hops + 1 relay encode; (n-1)
            // reduce-scatter decodes + n final chunk decodes.
            (Algorithm::Ring, n, 2 * n - 1),
            // Gather: 1 broadcast; all n encodings decoded.
            (Algorithm::AllgatherBroadcast, 1, n),
        ] {
            let stats = ThreadCluster::run(n, |t| {
                let mut rng = Rng::seed_from_u64(40 + t.rank() as u64);
                let grad = Tensor::randn(&mut rng, &[len]);
                let mut c = QsgdCompressor::new(4, 128);
                allreduce(alg, &t, &grad, &mut c, &mut rng).unwrap().1
            })
            .unwrap();
            for s in &stats {
                assert_eq!(s.compress_calls, compress, "{alg:?}");
                assert_eq!(s.decompress_calls, decompress, "{alg:?}");
            }
        }
    }

    #[test]
    fn steady_state_sra_is_allocation_free() {
        // With a sufficiently prewarmed shared pool, multiple allreduce
        // steps across 4 ranks must never allocate an encode buffer or f32
        // accumulator: the allocation counter stays at zero.
        let n = 4usize;
        let len = 1024usize;
        let pool = ScratchPool::new();
        let cap = QsgdCompressor::new(4, 128).compressed_bytes(len);
        // Generous margin over the worst-case number of simultaneously
        // outstanding buffers (ranks overlap by at most ~2 steps).
        pool.prewarm(128, cap);
        pool.prewarm_f32(16, len / n);
        let shared = pool.clone();
        ThreadCluster::run(n, move |t| {
            let pool = shared.clone();
            let mut rng = Rng::seed_from_u64(700 + t.rank() as u64);
            let grad = Tensor::randn(&mut rng, &[len]);
            let mut c = QsgdCompressor::new(4, 128);
            for _ in 0..5 {
                allreduce_scratch(
                    Algorithm::ScatterReduceAllgather,
                    &t,
                    &grad,
                    &mut c,
                    &mut rng,
                    &pool,
                )
                .unwrap();
            }
        })
        .unwrap();
        assert_eq!(
            pool.allocations(),
            0,
            "steady-state allreduce allocated in the compression path"
        );
        assert!(pool.reuses() > 0, "pool was never used");
    }

    #[test]
    fn pooled_and_unpooled_allreduce_agree_bitwise() {
        // Same seeds, same gradients: the fused/pooled path must decode to
        // exactly the bytes the per-call-pool path does.
        for alg in Algorithm::all() {
            let shared = ScratchPool::new();
            let pooled = ThreadCluster::run(4, move |t| {
                let pool = shared.clone();
                let mut rng = Rng::seed_from_u64(60 + t.rank() as u64);
                let grad = Tensor::randn(&mut rng, &[513]);
                let mut c = QsgdCompressor::new(4, 128);
                allreduce_scratch(alg, &t, &grad, &mut c, &mut rng, &pool)
                    .unwrap()
                    .0
            })
            .unwrap();
            let plain = ThreadCluster::run(4, move |t| {
                let mut rng = Rng::seed_from_u64(60 + t.rank() as u64);
                let grad = Tensor::randn(&mut rng, &[513]);
                let mut c = QsgdCompressor::new(4, 128);
                allreduce(alg, &t, &grad, &mut c, &mut rng).unwrap().0
            })
            .unwrap();
            for (a, b) in pooled.iter().zip(&plain) {
                assert_eq!(a.as_slice(), b.as_slice(), "{alg:?}");
            }
        }
    }

    #[test]
    fn chunk_ranges_partition_exactly() {
        for (len, n) in [(10usize, 3usize), (3, 5), (0, 4), (100, 1), (7, 7)] {
            let rs = chunk_ranges(len, n);
            assert_eq!(rs.len(), n);
            let mut covered = 0;
            let mut next = 0;
            for r in &rs {
                assert_eq!(r.start, next);
                next = r.end;
                covered += r.len();
            }
            assert_eq!(covered, len, "len={len} n={n}");
        }
    }

    #[test]
    fn chunk_sizes_differ_by_at_most_one() {
        let rs = chunk_ranges(10, 3);
        let sizes: Vec<usize> = rs.iter().map(|r| r.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn chunk_ranges_len_below_n_yields_singletons_then_empties() {
        // Exhaustive over the len < n edge: the first `len` ranges are
        // singletons i..i+1 and the remaining n-len ranges are empty,
        // pinned at `len` so starts stay monotone.
        for n in 1usize..12 {
            for len in 0..n {
                let rs = chunk_ranges(len, n);
                assert_eq!(rs.len(), n);
                for (i, r) in rs.iter().enumerate() {
                    if i < len {
                        assert_eq!(r.clone(), i..i + 1, "len={len} n={n} i={i}");
                    } else {
                        assert!(r.is_empty(), "len={len} n={n} i={i}");
                        assert_eq!(r.start, len, "len={len} n={n} i={i}");
                    }
                }
            }
        }
    }
}
