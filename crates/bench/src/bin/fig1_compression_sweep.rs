//! Figure 1: compression ratio vs average step time on the 8x RTX 3090
//! machine, with the per-model ideal (linear-scaling) step time as the
//! reference line.
//!
//! Paper shape: for all models, step time approaches ideal as γ grows;
//! ResNet50 saturates around one order of magnitude of compression while
//! Transformer-class models keep benefiting up to two orders.

use cgx_bench::{fmt_ms, note, render_table};
use cgx_core::estimate::{estimate, SystemSetup};
use cgx_models::ModelId;
use cgx_simnet::MachineSpec;

fn main() {
    let machine = MachineSpec::rtx3090();
    let gammas: [f64; 9] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0];
    let models = [
        ModelId::ResNet50,
        ModelId::Vgg16,
        ModelId::VitBase,
        ModelId::TransformerXl,
        ModelId::BertBase,
        ModelId::Gpt2,
    ];
    let mut headers: Vec<String> = vec!["model".into(), "ideal".into()];
    headers.extend(gammas.iter().map(|g| format!("x{g}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for model in models {
        let ideal = estimate(&machine, model, &SystemSetup::Ideal);
        let mut row = vec![model.to_string(), fmt_ms(ideal.report.step_seconds)];
        for gamma in gammas {
            let e = estimate(&machine, model, &SystemSetup::Fake { gamma });
            row.push(fmt_ms(e.report.step_seconds));
        }
        rows.push(row);
    }
    print!(
        "{}",
        render_table(
            "Figure 1: step time vs synthetic compression ratio (8x RTX 3090)",
            &header_refs,
            &rows,
        )
    );
    note("dotted-line equivalent: the 'ideal' column (single-GPU time).");
    note("bandwidth is the bottleneck: time falls toward ideal as gamma grows.");

    // Where does each model saturate: within 5% of the bandwidth-free
    // ceiling (the Table 8 limit), i.e. where more compression stops
    // paying.
    let mut sat_rows = Vec::new();
    for model in models {
        let ceiling = estimate(&machine, model, &SystemSetup::Fake { gamma: 1_000_000.0 })
            .report
            .step_seconds;
        let sat = gammas.iter().find(|&&g| {
            estimate(&machine, model, &SystemSetup::Fake { gamma: g })
                .report
                .step_seconds
                < ceiling * 1.05
        });
        sat_rows.push(vec![
            model.to_string(),
            sat.map(|g| format!("x{g}")).unwrap_or("> x256".into()),
        ]);
    }
    print!(
        "{}",
        render_table(
            "compression needed to exhaust the bandwidth savings (within 5% of ceiling)",
            &["model", "gamma"],
            &sat_rows,
        )
    );
}
