//! The deterministic training workload behind `cgx-launch`.
//!
//! One fixed task (Gaussian-mixture classification with a small MLP,
//! 4-bit CGX compression) that any rank can run over any
//! [`Transport`] via [`cgx_engine::train_rank`]. Because the trainer's
//! RNG streams are derived from `(seed, rank)` alone, a thread-backed
//! [`ShmTransport`](cgx_collectives::ShmTransport) run and a
//! process-backed TCP run of the same [`Workload`] produce
//! byte-identical parameters — which is exactly what the launch parity
//! test asserts.

use cgx_collectives::{CommError, ShmTransport, ThreadCluster, Topology, Transport};
use cgx_compress::ScratchPool;
use cgx_tensor::Rng;
use cgx_engine::data::GaussianMixture;
use cgx_engine::nn::Mlp;
use cgx_engine::{train_rank, AdaptiveTrainConfig, LayerCompression, TrainConfig};
use std::time::Duration;

/// Environment variable: when truthy, workers train elastically — an
/// unrecoverable peer loss shrinks the world and training continues on
/// the survivors instead of failing the run.
pub const ENV_ELASTIC: &str = "CGX_ELASTIC";
/// Environment variable overriding the transport receive timeout, in
/// milliseconds — the budget after which a silent peer is declared lost.
pub const ENV_COMM_TIMEOUT_MS: &str = "CGX_COMM_TIMEOUT_MS";
/// Environment variable switching on the live adaptive-compression
/// controller. Truthy values enable the default policy; a policy name
/// (`kmeans`, `linear`, `timeaware`, `bayesopt`, `bayesopt:N`) selects
/// one explicitly.
pub const ENV_ADAPTIVE: &str = "CGX_ADAPTIVE";
/// Environment variable overriding the adaptive error-budget multiplier
/// α (error allowed relative to uniform 4-bit).
pub const ENV_ADAPTIVE_ALPHA: &str = "CGX_ADAPTIVE_ALPHA";
/// Environment variable overriding how many observed steps sit between
/// re-plans.
pub const ENV_ADAPTIVE_INTERVAL: &str = "CGX_ADAPTIVE_INTERVAL";
/// Environment variable overriding the warm-up steps before the first
/// re-plan may commit.
pub const ENV_ADAPTIVE_WARMUP: &str = "CGX_ADAPTIVE_WARMUP";

/// The adaptive-controller configuration described by the `CGX_ADAPTIVE*`
/// keys, read through `get` so the parse is pure and testable. `None`
/// means the switch is absent or falsy and the run stays on its static
/// plan.
///
/// # Panics
///
/// Panics when the switch names an unknown policy or a numeric override
/// fails to parse — a misconfigured launch must fail loudly, not train
/// silently without adaptation.
pub fn adaptive_options_from(
    get: impl Fn(&str) -> Option<String>,
) -> Option<AdaptiveTrainConfig> {
    let switch = get(ENV_ADAPTIVE)?;
    if matches!(switch.as_str(), "" | "0" | "false" | "no") {
        return None;
    }
    let mut cfg = AdaptiveTrainConfig::default();
    if !matches!(switch.as_str(), "1" | "true" | "yes" | "on") {
        cfg.policy = AdaptiveTrainConfig::parse_policy(&switch)
            .unwrap_or_else(|| panic!("{ENV_ADAPTIVE} names unknown policy {switch:?}"));
    }
    if let Some(v) = get(ENV_ADAPTIVE_ALPHA) {
        cfg.alpha = v
            .parse()
            .unwrap_or_else(|_| panic!("{ENV_ADAPTIVE_ALPHA} must be a float, got {v:?}"));
    }
    if let Some(v) = get(ENV_ADAPTIVE_INTERVAL) {
        cfg.replan_interval = v
            .parse()
            .unwrap_or_else(|_| panic!("{ENV_ADAPTIVE_INTERVAL} must be a step count, got {v:?}"));
    }
    if let Some(v) = get(ENV_ADAPTIVE_WARMUP) {
        cfg.warmup = v
            .parse()
            .unwrap_or_else(|_| panic!("{ENV_ADAPTIVE_WARMUP} must be a step count, got {v:?}"));
    }
    cfg.validate();
    Some(cfg)
}

/// [`adaptive_options_from`] over the real process environment — what
/// spawned workers call, mirroring [`ElasticOptions::from_env`].
pub fn adaptive_from_env() -> Option<AdaptiveTrainConfig> {
    adaptive_options_from(|k| std::env::var(k).ok())
}

/// Fault-tolerance knobs for a launch, read from the `CGX_*` environment
/// in spawned workers so the coordinator's chaos schedule reaches every
/// rank without explicit plumbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ElasticOptions {
    /// Shrink-and-continue on unrecoverable peer loss.
    pub elastic: bool,
    /// Receive-timeout override (`None` keeps the fabric default).
    pub comm_timeout: Option<Duration>,
}

impl ElasticOptions {
    /// The options described by `CGX_ELASTIC` / `CGX_COMM_TIMEOUT_MS`.
    pub fn from_env() -> Self {
        let elastic = std::env::var(ENV_ELASTIC)
            .map(|v| !matches!(v.as_str(), "" | "0" | "false" | "no"))
            .unwrap_or(false);
        let comm_timeout = std::env::var(ENV_COMM_TIMEOUT_MS)
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .map(Duration::from_millis);
        ElasticOptions {
            elastic,
            comm_timeout,
        }
    }
}

/// What one rank's run produced, fault-tolerant form: a rank scheduled
/// to die reports `params: None`; survivors report their final replica
/// plus how much world they finished with and how many recovery epochs
/// it took to get there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankRun {
    /// Final parameters as little-endian `f32` bytes, or `None` when
    /// this rank died per its fault plan.
    pub params: Option<Vec<u8>>,
    /// World size this rank finished with (0 for a dead rank).
    pub final_world: usize,
    /// Membership epochs completed after unrecoverable peer losses.
    pub recovery_epochs: usize,
    /// Digest of the adaptive plan trace when the live controller ran —
    /// identical on every rank of a correct run, whatever the fabric.
    pub plan_digest: Option<u64>,
}

/// A fully-specified training run: every rank constructs the same model,
/// task, and config from this value, so the only cross-rank channel is
/// the transport itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workload {
    /// World size.
    pub workers: usize,
    /// Optimization steps.
    pub steps: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Workload {
    /// The standard launch workload: small enough that a 4-process
    /// loopback run finishes in seconds, long enough that divergence
    /// between fabrics could not hide.
    pub fn standard(workers: usize) -> Self {
        Workload {
            workers,
            steps: 40,
            seed: 4242,
        }
    }

    fn task(&self) -> GaussianMixture {
        GaussianMixture::new(4, 8, 1.5)
    }

    fn model(&self) -> Mlp {
        let mut rng = Rng::seed_from_u64(self.seed ^ 0xB00);
        Mlp::new(&mut rng, &[8, 16, 4])
    }

    fn config(&self, topology: Option<Topology>) -> TrainConfig {
        let mut cfg = TrainConfig::new(self.workers, self.steps);
        cfg.seed = self.seed;
        cfg.compression = LayerCompression::cgx_default();
        cfg.lr = 0.2;
        cfg.topology = topology;
        cfg
    }

    /// Wire-path tuning for a TCP run of this workload: the config's
    /// explicit `net_*` fields layered over the `CGX_NET_*` environment
    /// (and fabric defaults below that). Launchers call this *before*
    /// rendezvous — the knobs are topology-independent — and pass the
    /// result to [`rendezvous_with_options`](crate::rendezvous_with_options),
    /// so a `TrainConfig` field and an env var steer the same socket
    /// options.
    pub fn net_options(&self) -> crate::NetOptions {
        let cfg = self.config(None);
        let mut opts = crate::NetOptions::from_env();
        if let Some(bytes) = cfg.net_read_buf {
            opts = opts.with_read_buf(bytes);
        }
        if let Some(bytes) = cfg.net_coalesce_budget {
            opts = opts.with_coalesce_budget(bytes);
        }
        if let Some((interval, deadline)) = cfg.heartbeat {
            opts = opts.with_heartbeat(interval, deadline);
        }
        if let Some(policy) = cfg.reconnect {
            opts = opts.with_reconnect(policy);
        }
        opts
    }

    /// Runs this rank's share over an already-connected endpoint and
    /// returns the final parameters as little-endian `f32` bytes.
    ///
    /// # Errors
    ///
    /// Propagates collective-communication failures.
    ///
    /// # Panics
    ///
    /// Panics if `topology` disagrees with the endpoint's world size.
    pub fn run_rank(
        &self,
        t: &dyn Transport,
        topology: Option<Topology>,
    ) -> Result<Vec<u8>, CommError> {
        let run = self.run_rank_elastic(t, topology, &ElasticOptions::default())?;
        Ok(run
            .params
            .expect("no fault plan, every rank survives"))
    }

    /// Runs this rank's share tolerating scheduled deaths: a rank whose
    /// fault plan kills it mid-run returns `params: None` instead of
    /// panicking, and with `opts.elastic` the survivors shrink the world
    /// and finish. The transport's fault plan (if any) must have been
    /// installed before this call — see
    /// [`TcpTransport::set_fault`](crate::TcpTransport::set_fault).
    ///
    /// # Errors
    ///
    /// Propagates collective-communication failures that recovery could
    /// not mask.
    ///
    /// # Panics
    ///
    /// Panics if `topology` disagrees with the endpoint's world size.
    pub fn run_rank_elastic(
        &self,
        t: &dyn Transport,
        topology: Option<Topology>,
        opts: &ElasticOptions,
    ) -> Result<RankRun, CommError> {
        self.run_rank_adaptive(t, topology, opts, None)
    }

    /// [`Self::run_rank_elastic`] with the live adaptive-compression
    /// controller optionally enabled: per-layer bit-widths re-plan
    /// mid-run from observed gradient norms, byte-identically on every
    /// rank (the returned [`RankRun::plan_digest`] is the proof).
    ///
    /// # Errors
    ///
    /// Propagates collective-communication failures that recovery could
    /// not mask.
    ///
    /// # Panics
    ///
    /// Panics if `topology` disagrees with the endpoint's world size.
    pub fn run_rank_adaptive(
        &self,
        t: &dyn Transport,
        topology: Option<Topology>,
        opts: &ElasticOptions,
        adaptive: Option<AdaptiveTrainConfig>,
    ) -> Result<RankRun, CommError> {
        assert_eq!(t.world(), self.workers, "endpoint world mismatch");
        let model = self.model();
        let task = self.task();
        let mut cfg = self.config(topology);
        cfg.elastic = opts.elastic;
        if opts.comm_timeout.is_some() {
            cfg.comm_timeout = opts.comm_timeout;
        }
        cfg.adaptive = adaptive;
        let pool = ScratchPool::new();
        let sampler = |r: &mut Rng| task.sample_batch(r, 16);
        Ok(match train_rank(t, &model, &sampler, &cfg, &pool)? {
            Some(out) => RankRun {
                final_world: out.final_world,
                recovery_epochs: out.faults.recovery_epochs,
                plan_digest: out.adaptive.as_ref().map(|t| t.digest()),
                params: Some(params_bytes(&out.model)),
            },
            None => RankRun {
                params: None,
                final_world: 0,
                recovery_epochs: 0,
                plan_digest: None,
            },
        })
    }

    /// Runs the same workload on the in-process shared-memory fabric and
    /// returns rank 0's final parameters — the reference the TCP run must
    /// match byte for byte.
    ///
    /// # Errors
    ///
    /// Propagates collective-communication failures.
    ///
    /// # Panics
    ///
    /// Panics if `topology` disagrees with `self.workers`.
    pub fn run_reference_shm(&self, topology: Option<Topology>) -> Result<Vec<u8>, CommError> {
        let outputs = ThreadCluster::try_run(self.workers, |raw: ShmTransport| {
            self.run_rank(&raw, topology.clone())
        })?;
        let mut it = outputs.into_iter();
        let first = it.next().expect("at least one rank");
        for (i, other) in it.enumerate() {
            assert_eq!(first, other, "rank {} diverged from rank 0", i + 1);
        }
        Ok(first)
    }

    /// The shared-memory reference run with the adaptive controller on:
    /// returns rank 0's `(params, plan digest)` after asserting every
    /// rank produced byte-identical parameters *and* the same plan
    /// sequence — the consensus a TCP run of the same workload must hit.
    ///
    /// # Errors
    ///
    /// Propagates collective-communication failures.
    ///
    /// # Panics
    ///
    /// Panics if `topology` disagrees with `self.workers` or any rank
    /// diverges.
    pub fn run_reference_shm_adaptive(
        &self,
        topology: Option<Topology>,
        adaptive: &AdaptiveTrainConfig,
    ) -> Result<(Vec<u8>, u64), CommError> {
        let outputs = ThreadCluster::try_run(self.workers, |raw: ShmTransport| {
            let run = self.run_rank_adaptive(
                &raw,
                topology.clone(),
                &ElasticOptions::default(),
                Some(adaptive.clone()),
            )?;
            Ok::<_, CommError>((
                run.params.expect("no fault plan, every rank survives"),
                run.plan_digest.expect("controller was enabled"),
            ))
        })?;
        let mut it = outputs.into_iter();
        let first = it.next().expect("at least one rank");
        for (i, other) in it.enumerate() {
            assert_eq!(
                first.0,
                other.0,
                "rank {} params diverged from rank 0",
                i + 1
            );
            assert_eq!(
                first.1,
                other.1,
                "rank {} plan sequence diverged from rank 0",
                i + 1
            );
        }
        Ok(first)
    }
}

/// Serializes a model's parameters as little-endian `f32` bytes, in
/// forward order — the byte-comparable fingerprint of a replica.
pub fn params_bytes(model: &Mlp) -> Vec<u8> {
    let mut buf = Vec::new();
    for p in model.params() {
        for v in p.as_slice() {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shm_reference_is_deterministic_across_invocations() {
        let w = Workload::standard(2);
        let a = w.run_reference_shm(None).expect("run");
        let b = w.run_reference_shm(None).expect("run");
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn adaptive_env_parser_handles_switch_policy_and_overrides() {
        let get = |map: &'static [(&str, &str)]| {
            move |k: &str| {
                map.iter()
                    .find(|(key, _)| *key == k)
                    .map(|(_, v)| v.to_string())
            }
        };
        // Absent or falsy switch: no controller.
        assert!(adaptive_options_from(get(&[])).is_none());
        assert!(adaptive_options_from(get(&[("CGX_ADAPTIVE", "0")])).is_none());
        assert!(adaptive_options_from(get(&[("CGX_ADAPTIVE", "no")])).is_none());
        // Truthy switch: defaults.
        let dflt = AdaptiveTrainConfig::default();
        let cfg = adaptive_options_from(get(&[("CGX_ADAPTIVE", "1")])).expect("enabled");
        assert_eq!(cfg.policy, dflt.policy);
        assert_eq!(cfg.replan_interval, dflt.replan_interval);
        // Policy name plus numeric overrides.
        let cfg = adaptive_options_from(get(&[
            ("CGX_ADAPTIVE", "linear"),
            ("CGX_ADAPTIVE_ALPHA", "3.5"),
            ("CGX_ADAPTIVE_INTERVAL", "16"),
            ("CGX_ADAPTIVE_WARMUP", "2"),
        ]))
        .expect("enabled");
        assert_eq!(
            cfg.policy,
            AdaptiveTrainConfig::parse_policy("linear").unwrap()
        );
        assert_eq!(cfg.alpha, 3.5);
        assert_eq!(cfg.replan_interval, 16);
        assert_eq!(cfg.warmup, 2);
    }

    #[test]
    #[should_panic(expected = "unknown policy")]
    fn adaptive_env_parser_rejects_unknown_policy() {
        adaptive_options_from(|k| {
            (k == ENV_ADAPTIVE).then(|| "quantum-annealing".to_string())
        });
    }

    #[test]
    fn topology_changes_the_reduction_but_keeps_consensus() {
        let w = Workload::standard(4);
        let flat = w.run_reference_shm(None).expect("flat");
        let hier = w
            .run_reference_shm(Some(Topology::grouped(2, 2)))
            .expect("hierarchical");
        // Consensus inside each run is asserted by run_reference_shm;
        // across association orders the floats legitimately differ.
        assert_eq!(flat.len(), hier.len());
    }
}
