//! GPU catalog: the paper's Table 1, plus single-GPU throughput envelopes.
//!
//! Throughputs for ResNet50 and Transformer-XL come directly from Table 1
//! (measured with the NVIDIA Deep Learning Examples benchmark); the other
//! four workloads are extrapolated from those anchors using each
//! architecture family's compute profile, and documented as substitutions in
//! `DESIGN.md`.

use cgx_models::ModelId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// GPU products used in the paper's evaluation (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuModel {
    /// NVIDIA V100 (Volta, cloud-grade; DGX-1 and AWS p3 instances).
    V100,
    /// NVIDIA RTX A6000 (Ampere, cloud-grade).
    A6000,
    /// NVIDIA GeForce RTX 3090 (Ampere, consumer-grade).
    Rtx3090,
    /// NVIDIA GeForce RTX 2080 Ti (Turing, consumer-grade).
    Rtx2080Ti,
}

/// Static spec sheet for a GPU (paper Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Product name.
    pub name: &'static str,
    /// Microarchitecture.
    pub arch: &'static str,
    /// Streaming multiprocessor count.
    pub sm_count: u32,
    /// Tensor core count.
    pub tensor_cores: u32,
    /// Whether GPUDirect peer-to-peer is supported (the cloud/consumer
    /// divide the paper is about).
    pub gpu_direct: bool,
    /// On-board memory in GB.
    pub ram_gb: u32,
    /// Thermal design power in watts.
    pub tdp_watts: u32,
}

impl GpuModel {
    /// All four catalog entries, server-grade first (Table 1 row order).
    pub fn all() -> [GpuModel; 4] {
        [
            GpuModel::V100,
            GpuModel::A6000,
            GpuModel::Rtx3090,
            GpuModel::Rtx2080Ti,
        ]
    }

    /// The Table 1 spec sheet.
    pub fn spec(self) -> GpuSpec {
        match self {
            GpuModel::V100 => GpuSpec {
                name: "V100",
                arch: "Volta",
                sm_count: 80,
                tensor_cores: 640,
                gpu_direct: true,
                ram_gb: 16,
                tdp_watts: 250,
            },
            GpuModel::A6000 => GpuSpec {
                name: "A6000",
                arch: "Ampere",
                sm_count: 84,
                tensor_cores: 336,
                gpu_direct: true,
                ram_gb: 48,
                tdp_watts: 300,
            },
            GpuModel::Rtx3090 => GpuSpec {
                name: "RTX 3090",
                arch: "Ampere",
                sm_count: 82,
                tensor_cores: 328,
                gpu_direct: false,
                ram_gb: 24,
                tdp_watts: 350,
            },
            GpuModel::Rtx2080Ti => GpuSpec {
                name: "RTX 2080 TI",
                arch: "Turing",
                sm_count: 68,
                tensor_cores: 544,
                gpu_direct: false,
                ram_gb: 10,
                tdp_watts: 250,
            },
        }
    }

    /// Single-GPU training throughput for a workload, in the workload's
    /// native unit (images/s or tokens/s), batch sizes per the paper's
    /// recipes. ResNet50 and Transformer-XL values are the paper's Table 1
    /// measurements; the rest are extrapolations.
    pub fn single_gpu_throughput(self, model: ModelId) -> f64 {
        use GpuModel::*;
        use ModelId::*;
        match (self, model) {
            // --- Table 1 anchors ---
            (V100, ResNet50) => 1226.0,
            (A6000, ResNet50) => 566.0,
            (Rtx3090, ResNet50) => 850.0,
            (Rtx2080Ti, ResNet50) => 484.0,
            (V100, TransformerXl) => 37_000.0,
            (A6000, TransformerXl) => 39_000.0,
            (Rtx3090, TransformerXl) => 39_000.0,
            (Rtx2080Ti, TransformerXl) => 13_000.0,
            // --- Extrapolations (documented in DESIGN.md) ---
            // VGG16 is ~1.8x heavier than ResNet50 per image.
            (V100, Vgg16) => 680.0,
            (A6000, Vgg16) => 320.0,
            (Rtx3090, Vgg16) => 470.0,
            (Rtx2080Ti, Vgg16) => 268.0,
            // ViT-B tracks the Transformer compute envelope.
            (V100, VitBase) => 330.0,
            (A6000, VitBase) => 345.0,
            (Rtx3090, VitBase) => 345.0,
            (Rtx2080Ti, VitBase) => 118.0,
            // BERT-SQuAD (FP32, batch 3 x 384 tokens).
            (V100, BertBase) => 5_200.0,
            (A6000, BertBase) => 5_450.0,
            (Rtx3090, BertBase) => 5_400.0,
            (Rtx2080Ti, BertBase) => 1_800.0,
            // GPT-2 small (AMP level 2, batch 3 x 1024 tokens).
            (V100, Gpt2) => 13_200.0,
            (A6000, Gpt2) => 14_000.0,
            (Rtx3090, Gpt2) => 14_000.0,
            (Rtx2080Ti, Gpt2) => 4_700.0,
        }
    }

    /// Single-GPU step compute time (seconds) for the paper's batch recipe.
    pub fn step_compute_seconds(self, model: &cgx_models::ModelSpec) -> f64 {
        model.items_per_gpu_step() as f64 / self.single_gpu_throughput(model.id())
    }
}

impl fmt::Display for GpuModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.spec().name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgx_models::ModelSpec;

    #[test]
    fn spec_sheet_matches_table_1() {
        let v100 = GpuModel::V100.spec();
        assert_eq!(v100.sm_count, 80);
        assert_eq!(v100.tensor_cores, 640);
        assert!(v100.gpu_direct);
        let rtx = GpuModel::Rtx3090.spec();
        assert!(!rtx.gpu_direct, "consumer GPUs lack GPUDirect");
        assert_eq!(rtx.ram_gb, 24);
    }

    #[test]
    fn table_1_throughput_anchors() {
        assert_eq!(
            GpuModel::V100.single_gpu_throughput(ModelId::ResNet50),
            1226.0
        );
        assert_eq!(
            GpuModel::Rtx3090.single_gpu_throughput(ModelId::TransformerXl),
            39_000.0
        );
    }

    #[test]
    fn consumer_and_cloud_envelopes_are_comparable() {
        // The paper's premise: RTX 3090 single-GPU performance rivals V100
        // on Transformer workloads.
        let r = GpuModel::Rtx3090.single_gpu_throughput(ModelId::TransformerXl);
        let v = GpuModel::V100.single_gpu_throughput(ModelId::TransformerXl);
        assert!(r >= v);
    }

    #[test]
    fn step_compute_matches_batch_recipe() {
        let m = ModelSpec::build(ModelId::ResNet50);
        let t = GpuModel::Rtx3090.step_compute_seconds(&m);
        assert!((t - 32.0 / 850.0).abs() < 1e-12);
        let txl = ModelSpec::build(ModelId::TransformerXl);
        let t = GpuModel::Rtx3090.step_compute_seconds(&txl);
        assert!((t - (32.0 * 192.0) / 39_000.0).abs() < 1e-12);
    }

    #[test]
    fn every_pair_has_a_throughput() {
        for gpu in GpuModel::all() {
            for model in ModelId::all() {
                assert!(gpu.single_gpu_throughput(model) > 0.0);
            }
        }
    }
}
