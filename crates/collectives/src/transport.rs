//! The in-process shared-memory transport.
//!
//! The paper's SHM backend registers a UNIX shared-memory segment per GPU
//! pair and synchronizes with CUDA IPC primitives. Collapsed into one
//! process, that becomes: one bounded channel per ordered rank pair,
//! carrying [`Encoded`] payloads (which are reference-counted `Bytes`, so a
//! "transfer" is a pointer hand-off, exactly like mapping a shared segment).

use crate::error::CommError;
use cgx_compress::Encoded;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

/// Per-pair channel capacity. Collectives exchange at most a few in-flight
/// chunks per peer; a small bound keeps memory flat and surfaces deadlocks.
const SLOT_CAPACITY: usize = 64;

/// Default receive timeout; long enough for debug-mode compression of large
/// tensors, short enough to fail tests promptly on deadlock.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

/// A rank's endpoint into the shared-memory fabric.
///
/// Cheap to move into a worker thread. Senders are cloned per peer;
/// receivers are owned.
#[derive(Debug)]
pub struct ShmTransport {
    rank: usize,
    world: usize,
    /// `to[j]` sends to rank j (self entry unused).
    to: Vec<Sender<Encoded>>,
    /// `from[j]` receives from rank j (self entry unused).
    from: Vec<Receiver<Encoded>>,
    timeout: Duration,
}

impl ShmTransport {
    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the fabric.
    pub fn world(&self) -> usize {
        self.world
    }

    /// Overrides the receive timeout (default [`DEFAULT_TIMEOUT`]).
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// Sends a payload to `peer`.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::Disconnected`] if the peer's endpoint was
    /// dropped.
    ///
    /// # Panics
    ///
    /// Panics if `peer` is out of range or equal to this rank.
    pub fn send(&self, peer: usize, payload: Encoded) -> Result<(), CommError> {
        assert!(peer < self.world && peer != self.rank, "bad peer {peer}");
        self.to[peer]
            .send(payload)
            .map_err(|_| CommError::Disconnected { peer })
    }

    /// Receives the next payload from `peer`, waiting up to the timeout.
    ///
    /// # Errors
    ///
    /// [`CommError::Timeout`] if nothing arrives in time;
    /// [`CommError::Disconnected`] if the peer's endpoint was dropped.
    ///
    /// # Panics
    ///
    /// Panics if `peer` is out of range or equal to this rank.
    pub fn recv(&self, peer: usize) -> Result<Encoded, CommError> {
        assert!(peer < self.world && peer != self.rank, "bad peer {peer}");
        match self.from[peer].recv_timeout(self.timeout) {
            Ok(p) => Ok(p),
            Err(RecvTimeoutError::Timeout) => Err(CommError::Timeout {
                from: peer,
                waited: self.timeout,
            }),
            Err(RecvTimeoutError::Disconnected) => Err(CommError::Disconnected { peer }),
        }
    }

    /// Sends `payload` to every other rank.
    ///
    /// # Errors
    ///
    /// Propagates the first send failure.
    pub fn broadcast(&self, payload: &Encoded) -> Result<(), CommError> {
        for peer in 0..self.world {
            if peer != self.rank {
                self.send(peer, payload.clone())?;
            }
        }
        Ok(())
    }
}

/// Factory for a fully-connected fabric of `n` transports.
#[derive(Debug)]
pub struct ShmFabric;

impl ShmFabric {
    /// Builds endpoints for `n` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn build(n: usize) -> Vec<ShmTransport> {
        assert!(n > 0, "fabric needs at least one rank");
        // senders[i][j] sends i -> j; receivers[j][i] receives that.
        let mut to: Vec<Vec<Option<Sender<Encoded>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let mut from: Vec<Vec<Option<Receiver<Encoded>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let (s, r) = bounded(SLOT_CAPACITY);
                to[i][j] = Some(s);
                from[j][i] = Some(r);
            }
        }
        // Self-channels: dummy closed endpoints to keep Vec indexing simple.
        to.into_iter()
            .zip(from)
            .enumerate()
            .map(|(rank, (to_row, from_row))| ShmTransport {
                rank,
                world: n,
                to: to_row
                    .into_iter()
                    .map(|s| s.unwrap_or_else(|| bounded(1).0))
                    .collect(),
                from: from_row
                    .into_iter()
                    .map(|r| r.unwrap_or_else(|| bounded(1).1))
                    .collect(),
                timeout: DEFAULT_TIMEOUT,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use cgx_tensor::Shape;
    use std::time::Duration;

    fn payload(tag: u8) -> Encoded {
        Encoded::new(Shape::vector(1), Bytes::copy_from_slice(&[tag]))
    }

    #[test]
    fn pairwise_delivery() {
        let mut eps = ShmFabric::build(3);
        let c = eps.pop().unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.send(1, payload(7)).unwrap();
        assert_eq!(b.recv(0).unwrap().payload().as_ref(), &[7]);
        b.send(2, payload(9)).unwrap();
        assert_eq!(c.recv(1).unwrap().payload().as_ref(), &[9]);
    }

    #[test]
    fn per_peer_channels_do_not_interleave() {
        let mut eps = ShmFabric::build(3);
        let c = eps.pop().unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.send(2, payload(1)).unwrap();
        b.send(2, payload(2)).unwrap();
        // Receives are addressed by peer, so order across peers is free.
        assert_eq!(c.recv(1).unwrap().payload().as_ref(), &[2]);
        assert_eq!(c.recv(0).unwrap().payload().as_ref(), &[1]);
    }

    #[test]
    fn timeout_on_silent_peer() {
        let mut eps = ShmFabric::build(2);
        let mut b = eps.pop().unwrap();
        let _a = eps.pop().unwrap();
        b.set_timeout(Duration::from_millis(20));
        match b.recv(0) {
            Err(CommError::Timeout { from: 0, .. }) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn disconnected_peer_detected() {
        let mut eps = ShmFabric::build(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        drop(a);
        match b.recv(0) {
            Err(CommError::Disconnected { peer: 0 }) => {}
            other => panic!("expected disconnect, got {other:?}"),
        }
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let mut eps = ShmFabric::build(4);
        let d = eps.pop().unwrap();
        let c = eps.pop().unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.broadcast(&payload(5)).unwrap();
        for t in [&b, &c, &d] {
            assert_eq!(t.recv(0).unwrap().payload().as_ref(), &[5]);
        }
    }

    #[test]
    #[should_panic(expected = "bad peer")]
    fn sending_to_self_panics() {
        let mut eps = ShmFabric::build(2);
        let _b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let _ = a.send(0, payload(1));
    }
}
