//! Layer-parallel pipeline report: the blocking one-allreduce-per-layer
//! loop vs the [`CommEngine`] (nonblocking submit/wait, chunk pipelining,
//! small-layer coalescing) over realistic model layer inventories.
//!
//! Emits `BENCH_pipeline.json` with per-model wall time for one
//! synchronization step at 8 ranks, the engine speedup, and the engine's
//! wall-time breakdown (compress / wait / decode, max in-flight depth).
//! Before anything is timed, both paths are asserted byte-identical — the
//! speedup is free, not a numerics trade.
//!
//! Layer inventories mirror ResNet50 and BERT-base layer *counts* and the
//! large/small split (the property the engine exploits: dozens of tiny
//! filtered norm/bias tensors between big quantized matmul weights), with
//! per-layer element counts capped so a CI machine reduces a step in
//! milliseconds. Within a model the cap preserves the ratio structure.

use cgx_collectives::reduce::{allreduce_scratch, Algorithm, AllreduceStats};
use cgx_collectives::{barrier, CommEngine, EngineOptions, ThreadCluster};
use cgx_compress::{CompressionScheme, Compressor, ScratchPool};
use cgx_tensor::{Rng, Tensor};
use std::time::{Duration, Instant};

const WORLD: usize = 8;
const REPS: usize = 5;
/// Large tensors are capped here; real conv/matmul weights are bigger but
/// scale both paths identically (the gap the engine closes is per-message
/// latency and scheduling, not bandwidth, which is infinite in-process).
const CAP: usize = 512;

/// One parameter tensor of the synthetic inventory.
struct Layer {
    len: usize,
    scheme: CompressionScheme,
}

fn quantized(len: usize) -> Layer {
    Layer {
        len: len.min(CAP),
        scheme: CompressionScheme::cgx_default(),
    }
}

/// Norm/bias tensors ride the CGX small-layer filter: full precision.
fn filtered(len: usize) -> Layer {
    Layer {
        len,
        scheme: CompressionScheme::None,
    }
}

/// ResNet50's tensor census: 53 conv weights + fc, each with a
/// batch-norm scale and shift (or bias) alongside — 1 large quantized
/// tensor to 2 tiny FP32 tensors.
fn resnet50() -> Vec<Layer> {
    let mut layers = vec![quantized(9_408), filtered(64), filtered(64)];
    // 16 bottleneck blocks over 4 stages; channel widths 256..2048.
    let stages: [(usize, usize); 4] = [(3, 64), (4, 128), (6, 256), (3, 512)];
    for (blocks, width) in stages {
        for _ in 0..blocks {
            for conv in [width * width, 9 * width * width, 4 * width * width] {
                layers.push(quantized(conv));
                layers.push(filtered(width.min(2048)));
                layers.push(filtered(width.min(2048)));
            }
        }
    }
    layers.push(quantized(2048 * 1000));
    layers.push(filtered(1000));
    layers
}

/// BERT-base's census: 12 encoder layers of 6 large projection weights
/// and 10 small bias/LayerNorm tensors, plus embeddings.
fn bert_base() -> Vec<Layer> {
    const H: usize = 768;
    let mut layers = vec![quantized(30_522 * H), quantized(512 * H)];
    layers.push(filtered(H));
    layers.push(filtered(H));
    for _ in 0..12 {
        for _ in 0..4 {
            layers.push(quantized(H * H)); // Q, K, V, attention output
            layers.push(filtered(H));
        }
        layers.push(filtered(H)); // attention LayerNorm scale
        layers.push(filtered(H)); // attention LayerNorm shift
        layers.push(quantized(H * 4 * H)); // FFN up
        layers.push(filtered(4 * H));
        layers.push(quantized(4 * H * H)); // FFN down
        layers.push(filtered(H));
        layers.push(filtered(H)); // output LayerNorm scale
        layers.push(filtered(H)); // output LayerNorm shift
    }
    layers
}

fn rank_grads(layers: &[Layer], rank: usize) -> Vec<Tensor> {
    let mut rng = Rng::seed_from_u64(0xBE7C + rank as u64);
    layers
        .iter()
        .map(|l| Tensor::randn(&mut rng, &[l.len]))
        .collect()
}

/// One synchronization step through the blocking per-layer loop.
fn step_sequential(
    t: &cgx_collectives::ShmTransport,
    grads: &[Tensor],
    comps: &mut [Box<dyn Compressor>],
    comp_rng: &mut Rng,
    pool: &ScratchPool,
) -> (Vec<Tensor>, AllreduceStats) {
    let alg = Algorithm::ScatterReduceAllgather;
    let mut stats = AllreduceStats::default();
    let mut out = Vec::with_capacity(grads.len());
    for (g, comp) in grads.iter().zip(comps.iter_mut()) {
        // One draw per layer, matching the engine's RNG consumption.
        let mut layer_rng = Rng::seed_from_u64(comp_rng.next_u64());
        let (summed, s) =
            allreduce_scratch(alg, t, g, comp.as_mut(), &mut layer_rng, pool).expect("allreduce");
        stats.merge(&s);
        out.push(summed);
    }
    (out, stats)
}

/// The same step through the engine: submit everything, then wait in order.
fn step_engine(
    t: &cgx_collectives::ShmTransport,
    grads: &[Tensor],
    comps: &mut Vec<Option<Box<dyn Compressor>>>,
    comp_rng: &mut Rng,
    pool: &ScratchPool,
) -> (Vec<Tensor>, AllreduceStats) {
    let alg = Algorithm::ScatterReduceAllgather;
    let mut eng = CommEngine::new(t, pool.clone(), EngineOptions::default());
    let handles: Vec<_> = grads
        .iter()
        .enumerate()
        .map(|(i, g)| eng.submit(alg, g, comps[i].take().expect("compressor"), comp_rng))
        .collect();
    let mut stats = AllreduceStats::default();
    let mut out = Vec::with_capacity(grads.len());
    for (i, h) in handles.into_iter().enumerate() {
        let (summed, s, comp) = eng.wait(h).expect("engine wait");
        comps[i] = Some(comp);
        stats.merge(&s);
        out.push(summed);
    }
    (out, stats)
}

/// Runs one timed step on every rank; returns the slowest rank's wall
/// time and rank 0's stats (plus outputs, for the equality check).
fn run_step(layers: &[Layer], engine: bool) -> (Duration, AllreduceStats, Vec<Tensor>) {
    let pool = ScratchPool::new();
    let results = ThreadCluster::run(WORLD, |t| {
        let pool = pool.clone();
        let grads = rank_grads(layers, t.rank());
        let mut comp_rng = Rng::seed_from_u64(0x5EED);
        let built: Vec<Box<dyn Compressor>> = layers.iter().map(|l| l.scheme.build()).collect();
        barrier(&t).expect("barrier");
        let t0 = Instant::now();
        let (out, stats) = if engine {
            let mut comps: Vec<Option<Box<dyn Compressor>>> = built.into_iter().map(Some).collect();
            step_engine(&t, &grads, &mut comps, &mut comp_rng, &pool)
        } else {
            let mut comps = built;
            step_sequential(&t, &grads, &mut comps, &mut comp_rng, &pool)
        };
        (t0.elapsed(), stats, out)
    })
    .expect("cluster");
    let slowest = results.iter().map(|(d, _, _)| *d).max().expect("ranks");
    let (_, stats, out) = results.into_iter().next().expect("rank 0");
    (slowest, stats, out)
}

struct ModelRow {
    name: &'static str,
    layers: usize,
    coalesced: usize,
    elements: usize,
    seq_ms: f64,
    eng_ms: f64,
    stats: AllreduceStats,
}

fn bench_model(name: &'static str, layers: Vec<Layer>) -> ModelRow {
    // Byte-equality first: the speedup must be numerically free.
    let (_, _, seq_out) = run_step(&layers, false);
    let (_, _, eng_out) = run_step(&layers, true);
    assert_eq!(seq_out.len(), eng_out.len());
    for (i, (a, b)) in seq_out.iter().zip(&eng_out).enumerate() {
        assert_eq!(
            a.as_slice(),
            b.as_slice(),
            "{name}: engine diverged from sequential at layer {i}"
        );
    }

    let mut seq_best = Duration::MAX;
    let mut eng_best = Duration::MAX;
    let mut stats = AllreduceStats::default();
    for _ in 0..REPS {
        let (d, _, _) = run_step(&layers, false);
        seq_best = seq_best.min(d);
        let (d, s, _) = run_step(&layers, true);
        if d < eng_best {
            eng_best = d;
            stats = s;
        }
    }
    let coalesce_cut = EngineOptions::default().coalesce_elems;
    ModelRow {
        name,
        layers: layers.len(),
        coalesced: layers
            .iter()
            .filter(|l| l.scheme == CompressionScheme::None && l.len <= coalesce_cut)
            .count(),
        elements: layers.iter().map(|l| l.len).sum(),
        seq_ms: seq_best.as_secs_f64() * 1e3,
        eng_ms: eng_best.as_secs_f64() * 1e3,
        stats,
    }
}

fn main() {
    let rows = vec![
        bench_model("resnet50", resnet50()),
        bench_model("bert_base", bert_base()),
    ];

    // The acceptance headline: the best model speedup. On this 1-core
    // threaded harness there is no compute/comm overlap to exploit, so
    // the measurable engine win is message amortization — largest on
    // censuses dominated by small filtered layers (ResNet-style). The
    // per-model rows below keep the honest spread.
    let best = rows
        .iter()
        .map(|r| r.seq_ms / r.eng_ms)
        .fold(0.0f64, f64::max);

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"world\": {WORLD},\n"));
    json.push_str(&format!("  \"reps\": {REPS},\n"));
    json.push_str(&format!("  \"speedup\": {best:.2},\n"));
    json.push_str("  \"models\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"model\": \"{}\", \"layers\": {}, \"coalesced_layers\": {}, \
             \"elements\": {}, \"sequential_ms\": {:.3}, \"engine_ms\": {:.3}, \
             \"speedup\": {:.2}, \"engine_compress_ms\": {:.3}, \"engine_wait_ms\": {:.3}, \
             \"engine_decode_ms\": {:.3}, \"max_in_flight\": {}}}{sep}\n",
            r.name,
            r.layers,
            r.coalesced,
            r.elements,
            r.seq_ms,
            r.eng_ms,
            r.seq_ms / r.eng_ms,
            r.stats.compress_ns as f64 / 1e6,
            r.stats.wait_ns as f64 / 1e6,
            r.stats.decode_ns as f64 / 1e6,
            r.stats.max_in_flight,
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");
    print!("{json}");
    for r in &rows {
        println!(
            "{:<10} {:>3} layers ({} coalesced): sequential {:>8.2} ms, engine {:>8.2} ms ({:.2}x), depth {}",
            r.name,
            r.layers,
            r.coalesced,
            r.seq_ms,
            r.eng_ms,
            r.seq_ms / r.eng_ms,
            r.stats.max_in_flight,
        );
    }
}
