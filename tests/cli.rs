//! Smoke tests of the `cgx` CLI binary (exercised via `std::process`).

use std::process::Command;

fn cgx(args: &[&str]) -> (String, bool) {
    let exe = env!("CARGO_BIN_EXE_cgx");
    let out = Command::new(exe)
        .args(args)
        .output()
        .expect("cli binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        out.status.success(),
    )
}

#[test]
fn estimate_prints_a_throughput_line() {
    let (out, ok) = cgx(&[
        "estimate",
        "--machine",
        "rtx3090",
        "--model",
        "txl",
        "--setup",
        "cgx",
    ]);
    assert!(ok);
    assert!(out.contains("RTX-3090"));
    assert!(out.contains("tokens/s"));
    assert!(out.contains("% of linear"));
}

#[test]
fn compare_lists_all_setups() {
    let (out, ok) = cgx(&["compare", "--machine", "rtx3090", "--model", "resnet50"]);
    assert!(ok);
    for label in ["ideal", "NCCL", "QNCCL", "Grace", "PowerSGD", "CGX"] {
        assert!(out.contains(label), "missing {label} in:\n{out}");
    }
}

#[test]
fn adaptive_reports_assignment_and_speedup() {
    let (out, ok) = cgx(&["adaptive", "--model", "txl", "--multinode"]);
    assert!(ok);
    assert!(out.contains("bits:"));
    assert!(out.contains("static"));
    assert!(out.contains("adaptive"));
}

#[test]
fn memory_flags_the_2080_vit_limit() {
    let (out, ok) = cgx(&["memory", "--model", "vit"]);
    assert!(ok);
    assert!(out.contains("recipe does not fit"), "{out}");
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let (_, ok) = cgx(&["frobnicate"]);
    assert!(!ok);
}

#[test]
fn listing_commands_work() {
    let (machines, ok1) = cgx(&["machines"]);
    let (models, ok2) = cgx(&["models"]);
    assert!(ok1 && ok2);
    assert!(machines.contains("RTX-3090"));
    assert!(models.contains("Transformer-XL-base"));
}
