//! Declarative compression configuration.
//!
//! CGX's user-facing API selects compression per layer by *parameters*
//! (bit-width, bucket size, …) rather than by constructing operator objects.
//! [`CompressionScheme`] is that parameter record; `build()` instantiates the
//! matching [`Compressor`].

use crate::{
    Compressor, ErrorFeedback, FakeCompressor, NoneCompressor, NormKind, NuqsgdCompressor,
    OneBitCompressor, PowerSgdCompressor, QsgdCompressor, TopKCompressor,
};

/// A serializable description of a compression configuration.
///
/// # Examples
///
/// ```
/// use cgx_compress::CompressionScheme;
/// let scheme = CompressionScheme::Qsgd { bits: 4, bucket_size: 128 };
/// let c = scheme.build();
/// assert_eq!(c.compressed_bytes(128), 68); // 4 + 128*4/8
/// assert_eq!(scheme.nominal_bits_per_element(), 4.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CompressionScheme {
    /// Raw FP32 (the uncompressed baseline).
    None,
    /// Stochastic quantization (the CGX default: 4 bits, bucket 128).
    Qsgd {
        /// Bit width per component (2..=8).
        bits: u32,
        /// Bucket size for the per-bucket scale.
        bucket_size: usize,
    },
    /// Non-uniform (geometric-grid) stochastic quantization.
    Nuqsgd {
        /// Bit width per component (2..=8).
        bits: u32,
        /// Bucket size for the per-bucket scale.
        bucket_size: usize,
    },
    /// Magnitude sparsification with error feedback.
    TopK {
        /// Fraction of components kept, in (0, 1].
        ratio: f64,
    },
    /// Low-rank decomposition.
    PowerSgd {
        /// Decomposition rank.
        rank: usize,
    },
    /// Sign compression with error feedback.
    OneBit {
        /// Bucket size for the per-bucket mean magnitudes.
        bucket_size: usize,
    },
    /// Transmit the first `N/gamma` elements (motivation experiments only).
    Fake {
        /// Compression ratio γ >= 1.
        gamma: f64,
    },
}

impl CompressionScheme {
    /// The paper's accuracy-recovering default: 4-bit QSGD with bucket 128.
    pub fn cgx_default() -> Self {
        CompressionScheme::Qsgd {
            bits: 4,
            bucket_size: 128,
        }
    }

    /// Instantiates the corresponding compressor. Biased schemes (TopK,
    /// OneBit) come wrapped in [`ErrorFeedback`].
    pub fn build(&self) -> Box<dyn Compressor> {
        match *self {
            CompressionScheme::None => Box::new(NoneCompressor::new()),
            CompressionScheme::Qsgd { bits, bucket_size } => {
                Box::new(QsgdCompressor::with_norm(bits, bucket_size, NormKind::Max))
            }
            CompressionScheme::Nuqsgd { bits, bucket_size } => {
                Box::new(NuqsgdCompressor::new(bits, bucket_size))
            }
            CompressionScheme::TopK { ratio } => {
                Box::new(ErrorFeedback::new(Box::new(TopKCompressor::new(ratio))))
            }
            CompressionScheme::PowerSgd { rank } => Box::new(PowerSgdCompressor::new(rank)),
            CompressionScheme::OneBit { bucket_size } => Box::new(ErrorFeedback::new(Box::new(
                OneBitCompressor::new(bucket_size),
            ))),
            CompressionScheme::Fake { gamma } => Box::new(FakeCompressor::new(gamma)),
        }
    }

    /// Average wire bits per gradient element (asymptotic, ignoring
    /// rounding), used for quick bandwidth estimates.
    pub fn nominal_bits_per_element(&self) -> f64 {
        match *self {
            CompressionScheme::None => 32.0,
            CompressionScheme::Qsgd { bits, bucket_size }
            | CompressionScheme::Nuqsgd { bits, bucket_size } => {
                bits as f64 + 32.0 / bucket_size as f64
            }
            CompressionScheme::TopK { ratio } => 64.0 * ratio,
            CompressionScheme::PowerSgd { .. } => f64::NAN, // shape-dependent
            CompressionScheme::OneBit { bucket_size } => 1.0 + 64.0 / bucket_size as f64,
            CompressionScheme::Fake { gamma } => 32.0 / gamma,
        }
    }

    /// Nominal compression ratio vs FP32 (NaN where shape-dependent).
    pub fn nominal_ratio(&self) -> f64 {
        32.0 / self.nominal_bits_per_element()
    }
}

impl Default for CompressionScheme {
    fn default() -> Self {
        CompressionScheme::cgx_default()
    }
}

impl std::fmt::Display for CompressionScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            CompressionScheme::None => write!(f, "fp32"),
            CompressionScheme::Qsgd { bits, bucket_size } => {
                write!(f, "qsgd-{bits}b-{bucket_size}")
            }
            CompressionScheme::Nuqsgd { bits, bucket_size } => {
                write!(f, "nuqsgd-{bits}b-{bucket_size}")
            }
            CompressionScheme::TopK { ratio } => write!(f, "topk-{}", ratio),
            CompressionScheme::PowerSgd { rank } => write!(f, "powersgd-r{rank}"),
            CompressionScheme::OneBit { bucket_size } => write!(f, "onebit-{bucket_size}"),
            CompressionScheme::Fake { gamma } => write!(f, "fake-x{gamma}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgx_tensor::{Rng, Tensor};

    #[test]
    fn default_is_4bit_bucket_128() {
        match CompressionScheme::default() {
            CompressionScheme::Qsgd { bits, bucket_size } => {
                assert_eq!(bits, 4);
                assert_eq!(bucket_size, 128);
            }
            other => panic!("unexpected default {other:?}"),
        }
    }

    #[test]
    fn build_produces_working_compressors() {
        let mut rng = Rng::seed_from_u64(1);
        let g = Tensor::randn(&mut rng, &[64, 8]);
        for scheme in [
            CompressionScheme::None,
            CompressionScheme::Qsgd {
                bits: 4,
                bucket_size: 128,
            },
            CompressionScheme::Nuqsgd {
                bits: 4,
                bucket_size: 128,
            },
            CompressionScheme::TopK { ratio: 0.1 },
            CompressionScheme::PowerSgd { rank: 2 },
            CompressionScheme::OneBit { bucket_size: 64 },
            CompressionScheme::Fake { gamma: 10.0 },
        ] {
            let mut c = scheme.build();
            let enc = c.compress(&g, &mut rng);
            let rt = c.decompress(&enc);
            assert_eq!(rt.shape(), g.shape(), "scheme {scheme}");
        }
    }

    #[test]
    fn nominal_ratios() {
        let q = CompressionScheme::Qsgd {
            bits: 4,
            bucket_size: 128,
        };
        assert!((q.nominal_ratio() - 32.0 / 4.25).abs() < 1e-9);
        assert!((CompressionScheme::Fake { gamma: 8.0 }.nominal_ratio() - 8.0).abs() < 1e-9);
        assert_eq!(CompressionScheme::None.nominal_ratio(), 1.0);
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(CompressionScheme::cgx_default().to_string(), "qsgd-4b-128");
        assert_eq!(CompressionScheme::None.to_string(), "fp32");
    }
}
