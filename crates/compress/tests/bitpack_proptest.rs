//! Property tests for the word-wide bitpacking fast path and the fused
//! decode-accumulate kernels: the specialized paths must be bit- and
//! ULP-identical to the generic ones they replace.

use bytes::BytesMut;
use cgx_compress::{
    is_word_packable, pack_fixed, unpack_fixed, BitReader, BitWriter, Compressor, Encoded,
    NuqsgdCompressor, OneBitCompressor, QsgdCompressor, ScratchPool, TopKCompressor,
};
use cgx_tensor::{Rng, Tensor};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Values pre-masked to `width` bits, as the kernels require.
fn masked_values(width: u32, max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    let mask = if width == 32 {
        u32::MAX
    } else {
        (1u32 << width) - 1
    };
    prop::collection::vec((0u32..=u32::MAX).prop_map(move |v| v & mask), 0..max_len)
}

/// Gradient-like data with mixed scales, including exact zeros.
fn grad_strategy(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(
        prop_oneof![(-1e3f32..1e3f32), (-1e-4f32..1e-4f32), Just(0.0f32)],
        1..max_len,
    )
}

/// Fused `decompress_add_into` must equal decompress-then-add to the last
/// ULP for the scheme under test.
fn assert_fused_matches(
    comp: &mut dyn Compressor,
    data: &[f32],
    seed: u64,
) -> Result<(), TestCaseError> {
    let g = Tensor::from_slice(data);
    let mut rng = Rng::seed_from_u64(seed);
    let enc: Encoded = comp.compress(&g, &mut rng);
    // Reference: materialize the decode, then add elementwise.
    let decoded = comp.decompress(&enc);
    let mut acc_rng = Rng::seed_from_u64(seed ^ 0xACC);
    let base = Tensor::randn(&mut acc_rng, &[data.len()]);
    let mut expect: Vec<f32> = base.as_slice().to_vec();
    for (e, d) in expect.iter_mut().zip(decoded.as_slice()) {
        *e += *d;
    }
    // Fused path.
    let mut fused: Vec<f32> = base.as_slice().to_vec();
    comp.decompress_add_into(&enc, &mut fused);
    for (i, (a, b)) in fused.iter().zip(&expect).enumerate() {
        prop_assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "element {} diverged: fused {} vs reference {}",
            i,
            a,
            b
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn run_writes_match_scalar_writes_for_all_widths(
        width in 1u32..=32,
        seed in 0u64..10_000,
        len in 0usize..600,
    ) {
        // write_run (which internally dispatches to pack_fixed when the
        // alignment conditions hold) must always produce the same stream as
        // element-at-a-time write_bits, for every width — not just the
        // word-packable ones.
        let mask = if width == 32 { u32::MAX } else { (1u32 << width) - 1 };
        let mut rng = Rng::seed_from_u64(seed);
        let values: Vec<u32> = (0..len).map(|_| (rng.next_u64() as u32) & mask).collect();

        let mut scalar = BitWriter::new();
        for &v in &values {
            scalar.write_bits(v, width);
        }
        // Trailing f32 exercises the post-run partial-byte state.
        scalar.write_f32(1.5);
        let scalar_bytes = scalar.finish();

        let mut run = BitWriter::new();
        run.write_run(&values, width);
        run.write_f32(1.5);
        let run_bytes = run.finish();
        prop_assert_eq!(&scalar_bytes[..], &run_bytes[..]);

        // And read_run recovers the exact values plus the trailer.
        let mut r = BitReader::new(&run_bytes);
        let mut got = Vec::with_capacity(values.len());
        r.read_run(width, values.len(), |v| got.push(v));
        prop_assert_eq!(&got, &values);
        prop_assert_eq!(r.read_f32(), 1.5);
    }

    #[test]
    fn pack_fixed_roundtrips_and_matches_bitwriter(
        width in prop::sample::select(vec![1u32, 2, 4, 8, 16, 32]),
        values in masked_values(8, 600),
    ) {
        // `masked_values` masks to 8 bits; re-mask for narrower widths.
        let mask = if width == 32 { u32::MAX } else { (1u32 << width) - 1 };
        let values: Vec<u32> = values.iter().map(|v| v & mask).collect();
        prop_assert!(is_word_packable(width));

        let mut packed = BytesMut::new();
        pack_fixed(&values, width, &mut packed);

        let mut w = BitWriter::new();
        for &v in &values {
            w.write_bits(v, width);
        }
        let scalar = w.finish();
        // pack_fixed zero-pads the final partial byte exactly like finish().
        prop_assert_eq!(&packed[..], &scalar[..]);

        let back = unpack_fixed(&packed, width, values.len());
        prop_assert_eq!(back, values);
    }

    #[test]
    fn qsgd_fused_decode_add_is_ulp_exact(
        data in grad_strategy(1200),
        bits in 2u32..=8,
        bucket in 1usize..512,
        seed in 0u64..1000,
    ) {
        let mut c = QsgdCompressor::new(bits, bucket);
        assert_fused_matches(&mut c, &data, seed)?;
    }

    #[test]
    fn nuqsgd_fused_decode_add_is_ulp_exact(
        data in grad_strategy(1200),
        bits in 2u32..=6,
        bucket in 1usize..512,
        seed in 0u64..1000,
    ) {
        let mut c = NuqsgdCompressor::new(bits, bucket);
        assert_fused_matches(&mut c, &data, seed)?;
    }

    #[test]
    fn onebit_fused_decode_add_is_ulp_exact(
        data in grad_strategy(1200),
        bucket in 1usize..512,
        seed in 0u64..1000,
    ) {
        let mut c = OneBitCompressor::new(bucket);
        assert_fused_matches(&mut c, &data, seed)?;
    }

    #[test]
    fn topk_fused_decode_add_is_ulp_exact(
        data in grad_strategy(1200),
        ratio in 0.01f64..1.0,
        seed in 0u64..1000,
    ) {
        let mut c = TopKCompressor::new(ratio);
        assert_fused_matches(&mut c, &data, seed)?;
    }

    #[test]
    fn pooled_compress_is_bit_identical_across_schemes(
        data in grad_strategy(1200),
        bits in 2u32..=8,
        bucket in 1usize..512,
        seed in 0u64..1000,
    ) {
        // The pooled encode path (scratch-buffer reuse + write_run fast
        // path) must emit byte-identical payloads to the plain path.
        let pool = ScratchPool::new();
        let g = Tensor::from_slice(&data);
        let mut a = QsgdCompressor::new(bits, bucket);
        let mut b = QsgdCompressor::new(bits, bucket);
        let mut rng_a = Rng::seed_from_u64(seed);
        let mut rng_b = Rng::seed_from_u64(seed);
        let plain = a.compress(&g, &mut rng_a);
        let pooled = b.compress_pooled(&g, &mut rng_b, &pool);
        prop_assert_eq!(plain.payload(), pooled.payload());
        prop_assert_eq!(plain.shape(), pooled.shape());
    }
}
