//! Synthetic gradient generation with layer-kind-aware statistics.
//!
//! Compression error profiles — the input to the adaptive compression
//! problem — depend on per-layer gradient statistics, which differ
//! systematically by layer role:
//!
//! * **embedding** gradients are row-sparse (only tokens present in the
//!   batch receive gradient) with small total norm relative to the huge
//!   parameter count;
//! * **norm/bias** gradients have few elements but comparatively large
//!   per-element magnitudes (hence their compression sensitivity);
//! * **conv/linear** gradients are dense, roughly Gaussian with a heavy
//!   tail, with per-element scale shrinking as `1/sqrt(fan_in)`.
//!
//! [`GradientSynth`] reproduces these regularities deterministically, and
//! models the slow decay of gradient magnitude over training steps.

use crate::spec::{LayerKind, LayerSpec, ModelSpec};
use cgx_tensor::{Rng, Tensor};

/// Deterministic synthetic-gradient source for a model.
///
/// # Examples
///
/// ```
/// use cgx_models::{GradientSynth, ModelId, ModelSpec};
/// use cgx_tensor::Rng;
/// let model = ModelSpec::build(ModelId::ResNet50);
/// let mut synth = GradientSynth::new(&model, 42);
/// let grads = synth.step_gradients();
/// assert_eq!(grads.len(), model.layers().len());
/// ```
#[derive(Debug)]
pub struct GradientSynth {
    layers: Vec<LayerSpec>,
    rng: Rng,
    step: u64,
}

impl GradientSynth {
    /// Creates a generator for `model` seeded with `seed`.
    pub fn new(model: &ModelSpec, seed: u64) -> Self {
        GradientSynth {
            layers: model.layers().to_vec(),
            rng: Rng::seed_from_u64(seed),
            step: 0,
        }
    }

    /// The current training step (increments per [`Self::step_gradients`]).
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Per-element gradient standard deviation for a layer at a given step.
    ///
    /// Magnitude decays with training progress, and the decay *rate* is
    /// layer-kind-dependent — embeddings converge early (rare-token
    /// gradients vanish first) while normalization layers stay active —
    /// matching the premise of the adaptive-compression literature that
    /// "the model needs a different accuracy of gradient estimation at
    /// different stages of the training". The shifting per-layer profile is
    /// what makes *online* re-assignment (paper Section 5) worthwhile.
    pub fn layer_sigma(layer: &LayerSpec, step: u64) -> f64 {
        let fan_in = match layer.shape().rank() {
            0 | 1 => 1.0,
            _ => layer.shape().dims()[1..].iter().product::<usize>() as f64,
        };
        let t = step as f64;
        match layer.kind() {
            LayerKind::Conv | LayerKind::Linear => (1.0 / fan_in.sqrt()) / (1.0 + t / 200.0).sqrt(),
            // Embedding rows are mostly untouched; active rows carry
            // moderate gradient that decays fastest as the table settles.
            LayerKind::Embedding => {
                (0.5 / (layer.shape().dim(1) as f64).sqrt()) / (1.0 + t / 120.0)
            }
            // Small layers accumulate gradient from every activation and
            // keep adapting late into training.
            LayerKind::Norm | LayerKind::Bias | LayerKind::Other => {
                0.05 / (1.0 + t / 600.0).powf(0.25)
            }
        }
    }

    /// Fraction of rows receiving gradient for an embedding layer (1.0 for
    /// everything else).
    pub fn embedding_density(layer: &LayerSpec) -> f64 {
        if layer.kind() != LayerKind::Embedding {
            return 1.0;
        }
        let rows = layer.shape().dim(0) as f64;
        // A batch touches a few thousand distinct tokens.
        (4096.0 / rows).min(1.0)
    }

    /// Generates one layer's gradient for the current step.
    pub fn layer_gradient(&mut self, index: usize) -> Tensor {
        let layer = self.layers[index].clone();
        let sigma = Self::layer_sigma(&layer, self.step) as f32;
        let mut t = Tensor::zeros(layer.shape().dims());
        match layer.kind() {
            LayerKind::Embedding => {
                let rows = layer.shape().dim(0);
                let dim = layer.shape().dim(1);
                let density = Self::embedding_density(&layer);
                let active = ((rows as f64 * density).round() as usize).max(1);
                let picked = self.rng.sample_indices(rows, active);
                for r in picked {
                    for c in 0..dim {
                        t[r * dim + c] = sigma * self.rng.normal() as f32;
                    }
                }
            }
            _ => {
                // Gaussian bulk with a 1% heavy tail (5x scale) — gradient
                // distributions in practice have excess kurtosis.
                for i in 0..t.len() {
                    let scale = if self.rng.bernoulli(0.01) { 5.0 } else { 1.0 };
                    t[i] = sigma * scale * self.rng.normal() as f32;
                }
            }
        }
        t
    }

    /// Generates gradients for every layer and advances the step counter.
    pub fn step_gradients(&mut self) -> Vec<Tensor> {
        let grads = (0..self.layers.len())
            .map(|i| self.layer_gradient(i))
            .collect();
        self.step += 1;
        grads
    }

    /// Advances the training-step counter without materializing gradients
    /// (fast-forward for session-level simulations).
    pub fn skip_steps(&mut self, n: usize) {
        self.step += n as u64;
    }

    /// Analytic expectation of the accumulated-gradient L2 norm over
    /// `steps` steps starting at the current step, per layer — the same
    /// statistic as [`GradientSynth::accumulated_norms`] but in closed
    /// form (independent zero-mean samples accumulate as
    /// `sigma * sqrt(steps * active_elements)`), so 100M+-parameter models
    /// can be profiled without generating gradients. Advances the step
    /// counter.
    pub fn expected_accumulated_norms(&mut self, steps: usize) -> Vec<f64> {
        let start = self.step;
        let out = self
            .layers
            .iter()
            .map(|l| {
                // Average sigma over the window (it decays slowly).
                let sigma = (0..steps)
                    .map(|k| Self::layer_sigma(l, start + k as u64))
                    .sum::<f64>()
                    / steps.max(1) as f64;
                // Heavy-tail mixture inflates variance by 1 + 0.01*(25-1).
                let tail_factor = (1.0 + 0.01 * 24.0f64).sqrt();
                let active = l.elements() as f64 * Self::embedding_density(l);
                sigma * tail_factor * (steps as f64 * active).sqrt()
            })
            .collect();
        self.step += steps as u64;
        out
    }

    /// L2 norms of each layer's gradient accumulated over `steps` steps —
    /// the statistic Algorithm 1 clusters on.
    pub fn accumulated_norms(&mut self, steps: usize) -> Vec<f64> {
        let n = self.layers.len();
        let mut acc: Vec<Tensor> = self
            .layers
            .iter()
            .map(|l| Tensor::zeros(l.shape().dims()))
            .collect();
        for _ in 0..steps {
            for (i, a) in acc.iter_mut().enumerate().take(n) {
                let g = self.layer_gradient(i);
                a.add_assign(&g);
            }
            self.step += 1;
        }
        acc.iter().map(Tensor::norm2).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ModelId;

    #[test]
    fn deterministic_for_same_seed() {
        let model = ModelSpec::build(ModelId::VitBase);
        let mut a = GradientSynth::new(&model, 7);
        let mut b = GradientSynth::new(&model, 7);
        let ga = a.layer_gradient(5);
        let gb = b.layer_gradient(5);
        assert_eq!(ga.as_slice(), gb.as_slice());
    }

    #[test]
    fn embedding_gradients_are_row_sparse() {
        let model = ModelSpec::build(ModelId::TransformerXl);
        let emb_idx = model
            .layers()
            .iter()
            .position(|l| l.kind() == LayerKind::Embedding)
            .expect("TXL has an embedding");
        let mut synth = GradientSynth::new(&model, 1);
        let g = synth.layer_gradient(emb_idx);
        let dim = model.layers()[emb_idx].shape().dim(1);
        let rows = model.layers()[emb_idx].shape().dim(0);
        let nonzero_rows = (0..rows)
            .filter(|r| (0..dim).any(|c| g[r * dim + c] != 0.0))
            .count();
        assert!(nonzero_rows <= 4096 + 10);
        assert!(nonzero_rows > 1000);
    }

    #[test]
    fn sigma_decays_with_steps() {
        let l = LayerSpec::new("w", LayerKind::Linear, &[64, 64]);
        assert!(GradientSynth::layer_sigma(&l, 0) > GradientSynth::layer_sigma(&l, 1000));
    }

    #[test]
    fn norm_layers_have_larger_per_element_scale() {
        let norm = LayerSpec::new("bn", LayerKind::Norm, &[512]);
        let conv = LayerSpec::new("c", LayerKind::Conv, &[512, 512, 3, 3]);
        assert!(GradientSynth::layer_sigma(&norm, 0) > 3.0 * GradientSynth::layer_sigma(&conv, 0));
    }

    #[test]
    fn step_gradients_cover_all_layers_and_advance() {
        let model = ModelSpec::build(ModelId::ResNet50);
        let mut synth = GradientSynth::new(&model, 3);
        let g = synth.step_gradients();
        assert_eq!(g.len(), model.layers().len());
        assert_eq!(synth.step(), 1);
        for (grad, layer) in g.iter().zip(model.layers()) {
            assert_eq!(grad.shape(), layer.shape());
        }
    }

    #[test]
    fn expected_norms_match_sampled_norms() {
        // Analytic expectation tracks the Monte-Carlo accumulation within
        // sampling error on a small model.
        let model = ModelSpec::build(ModelId::VitBase);
        let mut a = GradientSynth::new(&model, 8);
        let mut b = GradientSynth::new(&model, 8);
        let sampled = a.accumulated_norms(3);
        let expected = b.expected_accumulated_norms(3);
        assert_eq!(a.step(), b.step());
        let mut checked = 0;
        for ((s, e), layer) in sampled.iter().zip(&expected).zip(model.layers()) {
            if layer.elements() < 10_000 {
                continue; // small layers: large sampling variance
            }
            let ratio = s / e;
            assert!(
                (0.8..1.25).contains(&ratio),
                "{}: sampled {s:.2} vs expected {e:.2}",
                layer.name()
            );
            checked += 1;
        }
        assert!(checked > 20);
    }

    #[test]
    fn skip_steps_advances_counter() {
        let model = ModelSpec::build(ModelId::ResNet50);
        let mut synth = GradientSynth::new(&model, 1);
        synth.skip_steps(100);
        assert_eq!(synth.step(), 100);
    }

    #[test]
    fn accumulated_norms_positive_and_sized() {
        let model = ModelSpec::build(ModelId::ResNet50);
        let mut synth = GradientSynth::new(&model, 4);
        let norms = synth.accumulated_norms(2);
        assert_eq!(norms.len(), model.layers().len());
        assert!(norms.iter().all(|n| *n > 0.0));
    }
}
