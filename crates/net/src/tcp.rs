//! The TCP-backed [`Transport`].
//!
//! Same tag-multiplexed, deadline-aware semantics as the in-process
//! [`cgx_collectives::ShmTransport`], over real sockets: one full-mesh
//! TCP connection per peer pair, driven by a readiness event loop instead
//! of threads. The [`Transport`] contract — per-tag FIFO, cross-tag
//! out-of-order delivery, stashed payloads outliving expired deadlines
//! and dead peers — is enforced by the shared conformance suite
//! (`cgx_collectives::conformance`), instantiated for this type in this
//! crate's tests.
//!
//! Design notes:
//!
//! * **Caller-driven event loop.** Every socket is nonblocking; the
//!   endpoint's single demux loop ([`poll(2)`] over all peer sockets,
//!   then in-place frame parsing out of per-peer staging buffers) runs on
//!   whichever thread is inside a transport call. Receives *are* the
//!   event loop: a `recv`/`wait` parks in `poll` until a socket turns
//!   readable and parses frames directly on the waiting thread. This
//!   replaces the previous one-eager-reader-thread-per-peer design —
//!   `world - 1` threads, a condvar handoff (two context switches) per
//!   frame — with zero extra threads and zero handoffs, which is what
//!   makes an 8-rank loopback mesh cheap on small-core hosts.
//! * **Ring-staged reads.** Each peer has a staging buffer
//!   ([`NetOptions::read_buf_bytes`]); one `read` syscall pulls an entire
//!   burst of back-to-back frames, which are parsed in place
//!   ([`wire::parse_frame`]) — header fields and checksum are verified
//!   against the staging bytes directly, and the payload is copied
//!   exactly once, out of the ring into its own allocation. Leftover
//!   partial frames stay staged; the buffer compacts and grows on demand.
//! * **Vectored zero-copy writes.** A send serializes only the frame
//!   *header* into a per-peer arena and hands `(header, payload)` pairs
//!   to `write_vectored` — the payload's only copy is the kernel's.
//!   Partial (short) writes advance a byte cursor across the queued
//!   frames and resume where the socket stopped.
//! * **Small-frame coalescing.** Nonblocking sends of small frames
//!   (≤ [`NetOptions::coalesce_frame_bytes`]) are queued per peer and
//!   flushed as one vectored write at a budget overflow
//!   ([`NetOptions::coalesce_budget_bytes`], mirroring the engine's
//!   coalescer), at any receive/wait, at [`Transport::flush_outbound`]
//!   (the engine calls it before parking), and on drop. Blocking sends
//!   flush the queue plus the new frame in a single `writev`, so
//!   per-`(peer, tag)` FIFO order is never reordered by batching.
//! * **Deadlock freedom without readers.** A blocking flush that hits a
//!   full socket drains its own inbound traffic (`pump`) between
//!   `POLLOUT` waits, so a cycle of ranks all mid-send keeps consuming
//!   bytes and someone's write always completes.
//! * **Byte-accurate accounting.** Every frame's full serialized size
//!   (length prefix, tag, geometry, checksum envelope, payload) is
//!   counted in [`TcpTransport::wire_bytes_sent`] — the number the
//!   `net_report` benchmark reports as measured wire traffic — and
//!   [`TcpTransport::wire_stats`] breaks the wall time into
//!   serialize / syscall / park for the same report.

use crate::fault::NetFaultPlan;
use crate::wire;
use cgx_collectives::transport::{Tag, CTRL_TAG, QUIESCE_TAG};
use cgx_collectives::{CommError, ReconnectPolicy, Transport};
use cgx_compress::Encoded;
use cgx_obs::MetricsRegistry;
use cgx_tensor::Shape;
use std::collections::{HashMap, VecDeque};
use std::io::{IoSlice, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Environment variable overriding [`NetOptions::read_buf_bytes`].
pub const ENV_READ_BUF: &str = "CGX_NET_READ_BUF";
/// Environment variable overriding [`NetOptions::coalesce_budget_bytes`].
pub const ENV_COALESCE: &str = "CGX_NET_COALESCE";
/// Environment variable overriding [`NetOptions::coalesce_frame_bytes`].
pub const ENV_COALESCE_FRAME: &str = "CGX_NET_COALESCE_FRAME";
/// Environment variable overriding [`NetOptions::nodelay`] (`0`/`false`
/// disables).
pub const ENV_NODELAY: &str = "CGX_NET_NODELAY";
/// Environment variable enabling liveness heartbeats: the interval in
/// milliseconds between CTRL-lane probes (`0` disables).
pub const ENV_HEARTBEAT_MS: &str = "CGX_NET_HEARTBEAT_MS";
/// Environment variable overriding the liveness deadline in milliseconds
/// (a peer silent for longer is declared [`CommError::PeerDead`]).
pub const ENV_HEARTBEAT_TIMEOUT_MS: &str = "CGX_NET_HEARTBEAT_TIMEOUT_MS";
/// Environment variable enabling the reconnect path: the number of
/// redial attempts before a dropped peer is condemned (`0` disables).
pub const ENV_RECONNECT_ATTEMPTS: &str = "CGX_NET_RECONNECT_ATTEMPTS";
/// Environment variable overriding the reconnect backoff base (ms).
pub const ENV_RECONNECT_BASE_MS: &str = "CGX_NET_RECONNECT_BASE_MS";
/// Environment variable overriding the reconnect backoff cap (ms).
pub const ENV_RECONNECT_CAP_MS: &str = "CGX_NET_RECONNECT_CAP_MS";

/// Tuning knobs for the TCP wire path. Defaults are right for collective
/// traffic on loopback and LAN; every field can be overridden per-process
/// through `CGX_NET_*` environment variables ([`NetOptions::from_env`])
/// or per-run through `TrainConfig`'s `net_*` fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetOptions {
    /// Per-peer read staging buffer size (grows past this only when a
    /// single frame is larger).
    pub read_buf_bytes: usize,
    /// Coalescing budget: queued-but-unflushed outbound bytes per peer
    /// above which the queue is flushed immediately.
    pub coalesce_budget_bytes: usize,
    /// Largest payload the nonblocking send path will defer into the
    /// coalescing queue; bigger frames flush right away.
    pub coalesce_frame_bytes: usize,
    /// Disable Nagle's algorithm on every mesh socket. Collective frames
    /// are latency-sensitive and already batched into single vectored
    /// writes; delaying them only serializes the reduction.
    pub nodelay: bool,
    /// Liveness probing: interval between heartbeat frames on the CTRL
    /// lane. `None` (the default) disables both emission and the
    /// silence deadline — a quiet peer is then only discovered through
    /// socket errors.
    ///
    /// Emission is **caller-driven**: this transport has no background
    /// threads, so heartbeats go out from inside transport calls
    /// (receives, waits, sends, flushes). A rank that spends longer
    /// than the silence deadline in pure compute between transport
    /// calls emits nothing during that gap and will be falsely
    /// condemned by its peers — size `heartbeat_timeout` above the
    /// longest inter-collective gap the workload can produce.
    pub heartbeat_interval: Option<Duration>,
    /// Silence deadline: with heartbeats on, a peer not heard from for
    /// this long is declared [`CommError::PeerDead`]. Only enforced when
    /// `heartbeat_interval` is set, and floored at
    /// [`HB_TIMEOUT_FLOOR_INTERVALS`] emission intervals by every
    /// constructor — a deadline at or below the interval would
    /// guarantee false deaths.
    pub heartbeat_timeout: Duration,
    /// Redial policy for transient socket drops. `None` (the default)
    /// fails fast: any socket error condemns the peer immediately.
    pub reconnect: Option<ReconnectPolicy>,
    /// Per-peer cap on retained flushed frames (bytes on the wire).
    /// With reconnect armed, frames that have been fully written to a
    /// socket are kept until the peer acknowledges delivery in the
    /// reconnect handshake, so the undelivered suffix of a dropped
    /// link can be retransmitted. A delivery gap that outgrew this cap
    /// is unrecoverable and condemns the peer instead of healing into
    /// silently misaligned payloads.
    pub retain_bytes: usize,
}

impl Default for NetOptions {
    fn default() -> Self {
        NetOptions {
            read_buf_bytes: 256 * 1024,
            coalesce_budget_bytes: 256 * 1024,
            coalesce_frame_bytes: 16 * 1024,
            nodelay: true,
            heartbeat_interval: None,
            heartbeat_timeout: Duration::from_secs(1),
            reconnect: None,
            retain_bytes: 8 * 1024 * 1024,
        }
    }
}

/// Minimum ratio of liveness deadline to heartbeat interval. Below ~2
/// intervals a single delayed emission round trips the deadline; three
/// leaves margin for scheduling jitter on loaded hosts.
pub const HB_TIMEOUT_FLOOR_INTERVALS: u32 = 3;

impl NetOptions {
    /// Defaults overridden by any `CGX_NET_*` environment variables.
    pub fn from_env() -> Self {
        let mut o = NetOptions::default();
        if let Some(v) = env_usize(ENV_READ_BUF) {
            o.read_buf_bytes = v.max(64);
        }
        if let Some(v) = env_usize(ENV_COALESCE) {
            o.coalesce_budget_bytes = v;
        }
        if let Some(v) = env_usize(ENV_COALESCE_FRAME) {
            o.coalesce_frame_bytes = v;
        }
        if let Ok(v) = std::env::var(ENV_NODELAY) {
            o.nodelay = !matches!(v.as_str(), "0" | "false" | "no");
        }
        if let Some(ms) = env_usize(ENV_HEARTBEAT_MS) {
            o.heartbeat_interval = (ms > 0).then(|| Duration::from_millis(ms as u64));
            o.heartbeat_timeout = Duration::from_millis((ms as u64 * 5).max(250));
        }
        if let Some(ms) = env_usize(ENV_HEARTBEAT_TIMEOUT_MS) {
            o.heartbeat_timeout = Duration::from_millis(ms as u64);
        }
        if let Some(interval) = o.heartbeat_interval {
            o.heartbeat_timeout = o
                .heartbeat_timeout
                .max(interval * HB_TIMEOUT_FLOOR_INTERVALS);
        }
        if let Some(attempts) = env_usize(ENV_RECONNECT_ATTEMPTS) {
            if attempts > 0 {
                let base = env_usize(ENV_RECONNECT_BASE_MS).unwrap_or(20) as u64;
                let cap = env_usize(ENV_RECONNECT_CAP_MS).unwrap_or(1000) as u64;
                o.reconnect = Some(ReconnectPolicy::new(
                    Duration::from_millis(base.max(1)),
                    Duration::from_millis(cap.max(base.max(1))),
                    attempts as u32,
                    0x5EED_C0DE,
                ));
            } else {
                o.reconnect = None;
            }
        }
        o
    }

    /// Returns `self` with the read staging buffer set to `bytes`
    /// (clamped to the same 64-byte floor as the env path).
    #[must_use]
    pub fn with_read_buf(mut self, bytes: usize) -> Self {
        self.read_buf_bytes = bytes.max(64);
        self
    }

    /// Returns `self` with the outbound coalescing budget set to `bytes`.
    #[must_use]
    pub fn with_coalesce_budget(mut self, bytes: usize) -> Self {
        self.coalesce_budget_bytes = bytes;
        self
    }

    /// Returns `self` with liveness heartbeats every `interval` and a
    /// silence deadline of `timeout`, floored at
    /// [`HB_TIMEOUT_FLOOR_INTERVALS`] intervals (a deadline at or below
    /// the emission interval would condemn every healthy peer).
    #[must_use]
    pub fn with_heartbeat(mut self, interval: Duration, timeout: Duration) -> Self {
        self.heartbeat_interval = Some(interval);
        self.heartbeat_timeout = timeout.max(interval * HB_TIMEOUT_FLOOR_INTERVALS);
        self
    }

    /// Returns `self` with the given redial policy for transient drops.
    #[must_use]
    pub fn with_reconnect(mut self, policy: ReconnectPolicy) -> Self {
        self.reconnect = Some(policy);
        self
    }
}

fn env_usize(key: &str) -> Option<usize> {
    std::env::var(key).ok()?.parse().ok()
}

/// Readiness primitives: `poll(2)` through a direct FFI declaration (std
/// already links libc on unix), so the event loop needs no new crate
/// dependency.
#[cfg(unix)]
mod sys {
    use std::io;
    use std::net::TcpStream;
    use std::os::unix::io::AsRawFd;
    use std::time::Duration;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    #[repr(C)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        // `nfds_t` is `unsigned long`; `usize` matches its width on every
        // supported unix target.
        fn poll(fds: *mut PollFd, nfds: usize, timeout: i32) -> i32;
    }

    pub fn raw_fd(stream: &TcpStream) -> i32 {
        stream.as_raw_fd()
    }

    pub fn raw_listener_fd(listener: &std::net::TcpListener) -> i32 {
        listener.as_raw_fd()
    }

    /// `poll(2)` retrying `EINTR`. Nonzero sub-millisecond timeouts round
    /// up to 1 ms so they actually sleep; zero stays a nonblocking probe.
    /// Returns how many entries have events.
    pub fn poll_wait(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
        let ms: i32 = if timeout.is_zero() {
            0
        } else {
            timeout.as_millis().clamp(1, i32::MAX as u128) as i32
        };
        loop {
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len(), ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

/// Portable fallback: no readiness notification, so report every socket
/// as ready after a short sleep and let the nonblocking reads/writes
/// discover the truth. Correct, just less efficient.
#[cfg(not(unix))]
mod sys {
    use std::io;
    use std::net::TcpStream;
    use std::time::Duration;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub fn raw_fd(_stream: &TcpStream) -> i32 {
        0
    }

    pub fn raw_listener_fd(_listener: &std::net::TcpListener) -> i32 {
        0
    }

    pub fn poll_wait(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
        if !timeout.is_zero() {
            std::thread::sleep(timeout.min(Duration::from_millis(1)));
        }
        for fd in fds.iter_mut() {
            fd.revents = fd.events;
        }
        Ok(fds.len())
    }
}

/// Cumulative wire-path cost breakdown for one endpoint — the numbers
/// behind `net_report`'s serialize / syscall / park attribution.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WireStats {
    /// Header serialization, checksumming and in-place frame parsing.
    pub serialize_ns: u64,
    /// Time inside `read`/`write_vectored` syscalls.
    pub syscall_ns: u64,
    /// Time parked in `poll` waiting for readiness.
    pub park_ns: u64,
    /// `read` syscalls issued.
    pub read_syscalls: u64,
    /// `write_vectored` syscalls issued.
    pub write_syscalls: u64,
    /// `poll` syscalls issued.
    pub poll_syscalls: u64,
    /// Frames that crossed the wire via vectored writes.
    pub writev_frames: u64,
}

impl WireStats {
    /// All syscalls (read + write + poll).
    pub fn syscalls(&self) -> u64 {
        self.read_syscalls + self.write_syscalls + self.poll_syscalls
    }

    /// Element-wise difference against an earlier snapshot.
    #[must_use]
    pub fn since(&self, base: &WireStats) -> WireStats {
        WireStats {
            serialize_ns: self.serialize_ns - base.serialize_ns,
            syscall_ns: self.syscall_ns - base.syscall_ns,
            park_ns: self.park_ns - base.park_ns,
            read_syscalls: self.read_syscalls - base.read_syscalls,
            write_syscalls: self.write_syscalls - base.write_syscalls,
            poll_syscalls: self.poll_syscalls - base.poll_syscalls,
            writev_frames: self.writev_frames - base.writev_frames,
        }
    }
}

#[derive(Default)]
struct WireClocks {
    serialize_ns: AtomicU64,
    syscall_ns: AtomicU64,
    park_ns: AtomicU64,
    read_syscalls: AtomicU64,
    write_syscalls: AtomicU64,
    poll_syscalls: AtomicU64,
    writev_frames: AtomicU64,
}

/// Per-peer read staging: a contiguous buffer with a live `[start, end)`
/// window. Frames parse in place from the front; free space refills at
/// the back; compaction slides the window home when the tail runs out.
struct Staging {
    buf: Vec<u8>,
    start: usize,
    end: usize,
}

impl Staging {
    fn new(cap: usize) -> Self {
        Staging {
            buf: vec![0u8; cap.max(64)],
            start: 0,
            end: 0,
        }
    }

    /// Guarantees free space at the tail, compacting first and growing
    /// (doubling) only when the buffer is genuinely full — which happens
    /// exactly when a single staged frame exceeds the configured size.
    fn ensure_space(&mut self) {
        if self.start == self.end {
            self.start = 0;
            self.end = 0;
        }
        if self.end < self.buf.len() {
            return;
        }
        if self.start > 0 {
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
            if self.end < self.buf.len() {
                return;
            }
        }
        self.buf.resize(self.buf.len() * 2, 0);
    }

    fn window(&self) -> &[u8] {
        &self.buf[self.start..self.end]
    }
}

/// One queued outbound frame: header bytes live in the slot's arena, the
/// payload is the caller's reference-counted buffer — nothing is
/// concatenated. Tag, shape, and the assigned sequence number are kept
/// so the frame can be retained and re-headered for retransmission
/// after a reconnect (sequence spaces survive a socket swap).
struct QueuedFrame {
    hdr_start: usize,
    hdr_len: usize,
    payload: bytes::Bytes,
    tag: Tag,
    shape: Shape,
    seq: u32,
}

impl QueuedFrame {
    fn wire_len(&self) -> usize {
        self.hdr_len + self.payload.len()
    }
}

/// A frame fully written to a socket whose delivery the peer has not
/// yet confirmed. The kernel can accept bytes it never puts on the wire
/// (and an RST discards a receiver's undrained buffer), so with
/// reconnect armed these are kept — bounded by
/// [`NetOptions::retain_bytes`] — and the undelivered suffix is
/// retransmitted after the reconnect handshake reveals the receiver's
/// per-tag delivery state. Headers are re-serialized at retransmission
/// (the original seq is reused), so no arena offsets are held here.
struct RetainedFrame {
    seq: u32,
    tag: Tag,
    shape: Shape,
    payload: bytes::Bytes,
    wire_len: usize,
}

/// Outbound half of one peer link.
struct WriterSlot {
    stream: TcpStream,
    /// Next sequence number per tag lane (checksummed into each frame).
    seq: HashMap<Tag, u32>,
    /// Serialized headers for queued frames (cleared when the queue
    /// drains).
    hdrs: Vec<u8>,
    queue: VecDeque<QueuedFrame>,
    queued_bytes: usize,
    /// Bytes of the front frame already written (partial-write cursor).
    front_written: usize,
    /// Flushed-but-unacknowledged frames, oldest first (empty unless
    /// reconnect is armed). Pruned from the front past
    /// [`NetOptions::retain_bytes`]; emptied by the reconnect handshake
    /// (delivered frames are acknowledged, the rest re-queued).
    retained: VecDeque<RetainedFrame>,
    retained_bytes: usize,
}

/// Demux state: per-peer staging, sequence verification, and the
/// tag-demuxed inbox, all advanced by whichever thread runs the event
/// loop.
struct Demux {
    /// Read-side clones of the peer sockets (`None` for self and for
    /// peers whose lane has closed).
    streams: Vec<Option<TcpStream>>,
    staging: Vec<Staging>,
    /// Per-`(peer, tag)` next-expected sequence numbers: TCP already
    /// delivers in order, so a gap means a peer-side logic error —
    /// surfaced as corruption rather than delivered out of order.
    expected: Vec<HashMap<Tag, u32>>,
    /// `inbox[p][tag]` holds frames from peer `p` awaiting a receiver.
    inbox: Vec<HashMap<Tag, VecDeque<Encoded>>>,
    /// Per-peer count of frames ever stashed — lets `wait_inbound`
    /// detect "something arrived from this peer" without knowing the tag.
    arrivals: Vec<u64>,
    /// Sum of `arrivals`, for `wait_any_inbound`.
    total_arrivals: u64,
    /// Why a peer's lane is closed, once it is (EOF, I/O error, or
    /// checksum/sequence mismatch). Set exactly once.
    closed: Vec<Option<CommError>>,
    /// When each peer was last heard from (any successful read). Drives
    /// the liveness deadline when heartbeats are enabled.
    last_heard: Vec<Instant>,
    /// Per-peer link state machine for the reconnect path.
    reconn: Vec<PeerLink>,
}

/// Link state for one peer: healthy, mid-reconnect, or condemned.
#[derive(Clone, Copy)]
enum PeerLink {
    /// Connected and flowing.
    Up,
    /// The socket dropped but the redial budget is not exhausted. The
    /// dialing side (the rank that dialed this link at bootstrap) redials
    /// per the backoff schedule; the accepting side just waits for the
    /// redial until `give_up`.
    Pending {
        attempts: u32,
        next_at: Instant,
        give_up: Instant,
    },
    /// Condemned; `closed` carries the error. Final for this
    /// incarnation: a later redial from a condemned peer is refused —
    /// the error may already have driven an elastic-membership decision
    /// that a resurrected lane would contradict.
    Down,
}

/// Reconnect support: the retained bootstrap listener plus the dialable
/// address of every peer this rank originally dialed (`None` for peers
/// that dial *us* on a drop).
struct Mesh {
    listener: TcpListener,
    addrs: Vec<Option<String>>,
}

/// Outcome of one vectored write attempt.
enum WriteProgress {
    /// Bytes moved (or the queue drained).
    Sent,
    /// The socket would block; the queue is intact.
    Full,
    /// The link failed into the reconnect state; the queue was
    /// re-sequenced and parked until the link heals.
    Deferred,
}

/// Preamble identifying a redial on the mesh listener: magic + rank.
/// Followed by the dialer's delivery state (what it has contiguously
/// received from the acceptor, per tag); the acceptor answers with its
/// own delivery state before either side installs the link. Note the
/// preamble is unauthenticated — the mesh listener trusts its network,
/// which for this fabric means the single-run rendezvous scope.
const RECON_MAGIC: [u8; 4] = *b"CGXR";
/// Bound on either blocking read of the reconnect handshake. Runs on
/// the pump path, so it also bounds how long one malformed or stalled
/// redial can stall an endpoint's receive loop.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_millis(500);
/// Sanity cap on delivery-state entries (live tag lanes per link); a
/// redial claiming more is malformed and dropped.
const MAX_STATE_ENTRIES: usize = 65_536;
/// Heartbeat payload on the CTRL lane (intercepted by the demux, never
/// stashed).
const HB_PAYLOAD: [u8; 1] = [0x48];

/// Serializes one side's delivery state for the reconnect handshake:
/// entry count, then `(tag, next-expected seq)` pairs — everything this
/// endpoint has contiguously received from the peer, per tag lane.
fn encode_delivery_state(expected: &HashMap<Tag, u32>) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + expected.len() * 12);
    out.extend_from_slice(&(expected.len() as u32).to_le_bytes());
    for (&tag, &seq) in expected {
        out.extend_from_slice(&tag.to_le_bytes());
        out.extend_from_slice(&seq.to_le_bytes());
    }
    out
}

/// Reads a delivery-state table off a blocking handshake stream.
fn read_delivery_state(stream: &mut impl Read) -> std::io::Result<HashMap<Tag, u32>> {
    let mut count = [0u8; 4];
    stream.read_exact(&mut count)?;
    let count = u32::from_le_bytes(count) as usize;
    if count > MAX_STATE_ENTRIES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "oversized delivery state",
        ));
    }
    let mut map = HashMap::with_capacity(count);
    let mut entry = [0u8; 12];
    for _ in 0..count {
        stream.read_exact(&mut entry)?;
        let tag = Tag::from_le_bytes(entry[..8].try_into().expect("8 bytes"));
        let seq = u32::from_le_bytes(entry[8..].try_into().expect("4 bytes"));
        map.insert(tag, seq);
    }
    Ok(map)
}

/// A rank's endpoint into a TCP full mesh. Built by
/// [`crate::rendezvous::rendezvous`] (multi-process) or
/// [`crate::rendezvous::TcpFabric::build_local`] (in-process loopback).
pub struct TcpTransport {
    rank: usize,
    world: usize,
    timeout: Duration,
    opts: NetOptions,
    writers: Vec<Option<Mutex<WriterSlot>>>,
    demux: Mutex<Demux>,
    /// Frames queued in writer slots but not yet on the wire — the cheap
    /// "anything to flush?" probe.
    pending_frames: AtomicU64,
    wire_bytes_out: AtomicU64,
    wire_bytes_in: AtomicU64,
    clocks: WireClocks,
    obs: Option<TcpMetrics>,
    /// Endpoint birth, the epoch for the heartbeat emission clock.
    born: Instant,
    /// Nanoseconds after `born` when the last heartbeat round was
    /// emitted (CAS-claimed so only one pumping thread emits per
    /// interval).
    hb_last_ns: AtomicU64,
    /// Re-entrancy guard: a flush inside heartbeat emission pumps, and
    /// that pump must not recurse into emission.
    hb_guard: AtomicBool,
    heartbeats_out: AtomicU64,
    peer_deaths: AtomicU64,
    reconnects_done: AtomicU64,
    mesh: Option<Mesh>,
    fault: Option<NetFaultPlan>,
    fault_frames: AtomicU64,
    fault_fired: AtomicBool,
}

#[derive(Clone)]
struct TcpMetrics {
    msgs_sent: cgx_obs::Counter,
    bytes_sent: cgx_obs::Counter,
    wire_bytes_sent: cgx_obs::Counter,
    msgs_recv: cgx_obs::Counter,
    bytes_recv: cgx_obs::Counter,
    writev_frames: cgx_obs::Counter,
    syscalls: cgx_obs::Counter,
    peer_dead: cgx_obs::Counter,
    reconnects: cgx_obs::Counter,
    heartbeats: cgx_obs::Counter,
}

/// How long one `poll` may park: long enough that waiting is cheap,
/// short enough that a wakeup consumed by a sibling thread on the same
/// endpoint cannot stall a deadline by more than this.
const PARK_SLICE: Duration = Duration::from_millis(50);

impl TcpTransport {
    /// Assembles an endpoint from connected per-peer streams
    /// (`streams[p]` talks to rank `p`; the self entry must be `None`),
    /// switching every socket to nonblocking readiness-driven I/O.
    ///
    /// # Errors
    ///
    /// [`CommError::Bootstrap`] if a stream cannot be cloned for the
    /// demux side or configured (nonblocking, `TCP_NODELAY`).
    ///
    /// # Panics
    ///
    /// Panics if the stream vector disagrees with `world` or a peer
    /// entry is missing.
    pub fn new(
        rank: usize,
        world: usize,
        mut streams: Vec<Option<TcpStream>>,
        timeout: Duration,
        opts: NetOptions,
    ) -> Result<Self, CommError> {
        assert_eq!(streams.len(), world, "need one stream slot per rank");
        assert!(streams[rank].is_none(), "self entry must be empty");
        let boot = |peer: usize, what: &str, e: std::io::Error| CommError::Bootstrap {
            detail: format!("configuring link to rank {peer}: {what}: {e}"),
        };
        let mut writers: Vec<Option<Mutex<WriterSlot>>> = Vec::with_capacity(world);
        let mut read_streams: Vec<Option<TcpStream>> = Vec::with_capacity(world);
        for (peer, slot) in streams.iter_mut().enumerate() {
            let Some(stream) = slot.take() else {
                assert_eq!(peer, rank, "missing stream for peer {peer}");
                writers.push(None);
                read_streams.push(None);
                continue;
            };
            stream
                .set_nodelay(opts.nodelay)
                .map_err(|e| boot(peer, "TCP_NODELAY", e))?;
            // The clone shares the open file description, so one
            // O_NONBLOCK covers both halves.
            stream
                .set_nonblocking(true)
                .map_err(|e| boot(peer, "nonblocking mode", e))?;
            let read_half = stream.try_clone().map_err(|e| boot(peer, "demux clone", e))?;
            read_streams.push(Some(read_half));
            writers.push(Some(Mutex::new(WriterSlot {
                stream,
                seq: HashMap::new(),
                hdrs: Vec::new(),
                queue: VecDeque::new(),
                queued_bytes: 0,
                front_written: 0,
                retained: VecDeque::new(),
                retained_bytes: 0,
            })));
        }
        let now = Instant::now();
        Ok(TcpTransport {
            rank,
            world,
            timeout,
            opts,
            writers,
            demux: Mutex::new(Demux {
                streams: read_streams,
                staging: (0..world).map(|_| Staging::new(opts.read_buf_bytes)).collect(),
                expected: (0..world).map(|_| HashMap::new()).collect(),
                inbox: (0..world).map(|_| HashMap::new()).collect(),
                arrivals: vec![0; world],
                total_arrivals: 0,
                closed: (0..world).map(|_| None).collect(),
                last_heard: vec![now; world],
                reconn: vec![PeerLink::Up; world],
            }),
            pending_frames: AtomicU64::new(0),
            wire_bytes_out: AtomicU64::new(0),
            wire_bytes_in: AtomicU64::new(0),
            clocks: WireClocks::default(),
            obs: None,
            born: now,
            hb_last_ns: AtomicU64::new(0),
            hb_guard: AtomicBool::new(false),
            heartbeats_out: AtomicU64::new(0),
            peer_deaths: AtomicU64::new(0),
            reconnects_done: AtomicU64::new(0),
            mesh: None,
            fault: None,
            fault_frames: AtomicU64::new(0),
            fault_fired: AtomicBool::new(false),
        })
    }

    /// Arms the reconnect path: retains the mesh `listener` (for redials
    /// from peers that originally dialed us) and records the dialable
    /// address of every peer we originally dialed (`addrs[p]`; `None`
    /// for peers that redial us). Used by the rendezvous when
    /// [`NetOptions::reconnect`] is set.
    ///
    /// # Errors
    ///
    /// [`CommError::Bootstrap`] if the listener cannot be switched to
    /// nonblocking accepts.
    pub fn with_mesh(
        mut self,
        listener: TcpListener,
        addrs: Vec<Option<String>>,
    ) -> Result<Self, CommError> {
        assert_eq!(addrs.len(), self.world, "need one addr slot per rank");
        listener.set_nonblocking(true).map_err(|e| CommError::Bootstrap {
            detail: format!("nonblocking mesh listener: {e}"),
        })?;
        self.mesh = Some(Mesh { listener, addrs });
        Ok(self)
    }

    /// Arms deterministic socket-level fault injection (tests and the
    /// chaos harness only). Must be called before the endpoint is shared.
    pub fn set_fault(&mut self, plan: NetFaultPlan) {
        self.fault = Some(plan);
    }

    /// Socket-level drop injection: once the configured number of frames
    /// has been enqueued toward the planned peer, shut the socket down
    /// under the wire path's feet — exactly what a mid-run RST or cable
    /// pull looks like to the rest of the stack. One-shot.
    fn maybe_inject_reset(&self, peer: usize, slot: &WriterSlot) {
        let Some(plan) = &self.fault else {
            return;
        };
        let Some(reset) = &plan.reset else {
            return;
        };
        if reset.rank != self.rank || reset.peer != peer {
            return;
        }
        let n = self.fault_frames.fetch_add(1, Ordering::Relaxed) + 1;
        if n >= reset.after_frames && !self.fault_fired.swap(true, Ordering::Relaxed) {
            let _ = slot.stream.shutdown(Shutdown::Both);
        }
    }

    /// Overrides the receive timeout.
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// The active wire-path tuning.
    pub fn options(&self) -> NetOptions {
        self.opts
    }

    /// Whether the mesh sockets have `TCP_NODELAY` set (false for a
    /// world of one, which has no sockets).
    pub fn nodelay(&self) -> bool {
        self.writers.iter().flatten().next().is_some_and(|m| {
            lock(m).stream.nodelay().unwrap_or(false)
        })
    }

    /// Enables message accounting into `registry`, mirroring
    /// [`cgx_collectives::ShmTransport::set_obs`] (`transport.*`
    /// counters) plus `transport.wire_bytes_sent` for the full on-wire
    /// size including framing overhead, `transport.writev_frames` for
    /// frames moved by vectored writes, and `transport.syscalls` for
    /// every read/write/poll issued by the wire path.
    pub fn set_obs(&mut self, registry: &MetricsRegistry) {
        use cgx_obs::names;
        self.obs = Some(TcpMetrics {
            msgs_sent: registry.counter(names::TRANSPORT_MSGS_SENT),
            bytes_sent: registry.counter(names::TRANSPORT_BYTES_SENT),
            wire_bytes_sent: registry.counter(names::TRANSPORT_WIRE_BYTES_SENT),
            msgs_recv: registry.counter(names::TRANSPORT_MSGS_RECV),
            bytes_recv: registry.counter(names::TRANSPORT_BYTES_RECV),
            writev_frames: registry.counter(names::TRANSPORT_WRITEV_FRAMES),
            syscalls: registry.counter(names::TRANSPORT_SYSCALLS),
            peer_dead: registry.counter(names::TRANSPORT_PEER_DEAD),
            reconnects: registry.counter(names::TRANSPORT_RECONNECTS),
            heartbeats: registry.counter(names::TRANSPORT_HEARTBEATS),
        });
    }

    /// Peers this endpoint has declared dead (socket failure past the
    /// redial budget, or liveness deadline elapsed).
    pub fn peer_deaths(&self) -> u64 {
        self.peer_deaths.load(Ordering::Relaxed)
    }

    /// Links this endpoint has successfully re-established after a drop.
    pub fn reconnects(&self) -> u64 {
        self.reconnects_done.load(Ordering::Relaxed)
    }

    /// Heartbeat frames this endpoint has emitted on the CTRL lane.
    pub fn heartbeats_sent(&self) -> u64 {
        self.heartbeats_out.load(Ordering::Relaxed)
    }

    /// Total serialized bytes this endpoint has committed to its sockets,
    /// including all framing overhead.
    pub fn wire_bytes_sent(&self) -> u64 {
        self.wire_bytes_out.load(Ordering::Relaxed)
    }

    /// Total serialized bytes this endpoint's demux has consumed.
    pub fn wire_bytes_received(&self) -> u64 {
        self.wire_bytes_in.load(Ordering::Relaxed)
    }

    /// Snapshot of the wire-path cost breakdown.
    pub fn wire_stats(&self) -> WireStats {
        WireStats {
            serialize_ns: self.clocks.serialize_ns.load(Ordering::Relaxed),
            syscall_ns: self.clocks.syscall_ns.load(Ordering::Relaxed),
            park_ns: self.clocks.park_ns.load(Ordering::Relaxed),
            read_syscalls: self.clocks.read_syscalls.load(Ordering::Relaxed),
            write_syscalls: self.clocks.write_syscalls.load(Ordering::Relaxed),
            poll_syscalls: self.clocks.poll_syscalls.load(Ordering::Relaxed),
            writev_frames: self.clocks.writev_frames.load(Ordering::Relaxed),
        }
    }

    /// The writer slot for `peer`. A missing slot is a fault condition
    /// (the lane was torn down), not a caller bug — surfaced as a typed
    /// [`CommError::PeerDead`] instead of a panic so fault paths stay
    /// recoverable. Out-of-range/self peers are still caller bugs.
    fn writer(&self, peer: usize) -> Result<MutexGuard<'_, WriterSlot>, CommError> {
        assert!(peer < self.world && peer != self.rank, "bad peer {peer}");
        match self.writers[peer].as_ref() {
            Some(m) => Ok(lock(m)),
            None => Err(CommError::PeerDead { rank: peer }),
        }
    }

    fn note_syscall(&self, counter: &AtomicU64, elapsed: Duration) {
        counter.fetch_add(1, Ordering::Relaxed);
        self.clocks
            .syscall_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        if let Some(m) = &self.obs {
            m.syscalls.inc();
        }
    }

    fn note_recv(&self, payload: &Encoded) {
        if let Some(m) = &self.obs {
            m.msgs_recv.inc();
            m.bytes_recv.add(payload.payload_bytes() as u64);
        }
    }

    /// Pops a stashed payload for `(peer, tag)`, pruning the tag entry
    /// when its queue drains (tags are single-use per collective).
    fn take_stashed(d: &mut Demux, peer: usize, tag: Tag) -> Option<Encoded> {
        let queue = d.inbox[peer].get_mut(&tag)?;
        let payload = queue.pop_front();
        if queue.is_empty() {
            d.inbox[peer].remove(&tag);
        }
        payload
    }

    // ---- the event loop -------------------------------------------------

    /// One turn of the event loop: wait up to `timeout` for readable peer
    /// sockets, then drain and parse every burst. Returns the number of
    /// frames stashed. `Duration::ZERO` is a nonblocking probe.
    fn pump(&self, timeout: Duration) -> usize {
        self.maybe_emit_heartbeats();
        self.mesh_service();
        // usize::MAX marks the mesh listener's slot in the poll set: a
        // redialing peer must wake a parked receiver immediately.
        const LISTENER: usize = usize::MAX;
        let mut fds: Vec<(usize, i32)> = Vec::with_capacity(self.world);
        {
            let d = lock(&self.demux);
            for (peer, stream) in d.streams.iter().enumerate() {
                if let Some(s) = stream {
                    if d.closed[peer].is_none() {
                        fds.push((peer, sys::raw_fd(s)));
                    }
                }
            }
        }
        if let Some(mesh) = &self.mesh {
            fds.push((LISTENER, sys::raw_listener_fd(&mesh.listener)));
        }
        if fds.is_empty() {
            if !timeout.is_zero() {
                std::thread::sleep(timeout.min(Duration::from_millis(1)));
            }
            return 0;
        }
        let mut pollfds: Vec<sys::PollFd> = fds
            .iter()
            .map(|&(_, fd)| sys::PollFd {
                fd,
                events: sys::POLLIN,
                revents: 0,
            })
            .collect();
        // Poll outside the demux lock so a sibling thread on this
        // endpoint can still receive while we park.
        let t0 = Instant::now();
        let ready = sys::poll_wait(&mut pollfds, timeout).unwrap_or(0);
        let waited = t0.elapsed();
        self.clocks.poll_syscalls.fetch_add(1, Ordering::Relaxed);
        if timeout.is_zero() {
            self.clocks
                .syscall_ns
                .fetch_add(waited.as_nanos() as u64, Ordering::Relaxed);
        } else {
            self.clocks
                .park_ns
                .fetch_add(waited.as_nanos() as u64, Ordering::Relaxed);
        }
        if let Some(m) = &self.obs {
            m.syscalls.inc();
        }
        let mut stashed = 0;
        let mut accept_ready = false;
        if ready > 0 {
            let mut d = lock(&self.demux);
            for (i, &(peer, _)) in fds.iter().enumerate() {
                if pollfds[i].revents & (sys::POLLIN | sys::POLLERR | sys::POLLHUP) != 0 {
                    if peer == LISTENER {
                        accept_ready = true;
                    } else {
                        stashed += self.read_peer(&mut d, peer);
                    }
                }
            }
        }
        self.check_liveness();
        if accept_ready {
            self.mesh_accept();
        }
        stashed
    }

    /// Condemns any peer silent past the heartbeat deadline. A frozen
    /// process keeps its sockets open, so this is the only way it is
    /// ever detected. No-op unless heartbeats are enabled.
    fn check_liveness(&self) {
        let Some(_) = self.opts.heartbeat_interval else {
            return;
        };
        let deadline = self.opts.heartbeat_timeout;
        let mut d = lock(&self.demux);
        for peer in 0..self.world {
            if peer == self.rank || d.closed[peer].is_some() || d.streams[peer].is_none() {
                continue;
            }
            if !matches!(d.reconn[peer], PeerLink::Up) {
                continue;
            }
            if d.last_heard[peer].elapsed() > deadline {
                self.condemn(&mut d, peer, CommError::PeerDead { rank: peer });
            }
        }
    }

    /// Marks `peer` permanently gone: records the error (first one
    /// wins), tears down its read lane, and bumps the death counters.
    fn condemn(&self, d: &mut Demux, peer: usize, err: CommError) {
        d.streams[peer] = None;
        d.reconn[peer] = PeerLink::Down;
        if d.closed[peer].is_none() {
            if matches!(err, CommError::PeerDead { .. }) {
                self.peer_deaths.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = &self.obs {
                    m.peer_dead.inc();
                }
            }
            d.closed[peer] = Some(err);
        }
    }

    /// Routes a detected link failure: transient classes enter the
    /// reconnect state machine when one is armed, everything else (and
    /// every failure past the budget) condemns the peer. Called with the
    /// demux lock held.
    fn fail_link(&self, d: &mut Demux, peer: usize, err: CommError) {
        d.streams[peer] = None;
        if d.closed[peer].is_some() {
            return;
        }
        // Corruption (checksum/sequence damage) is not healed by a
        // redial: the stream itself is lying. Everything socket-shaped
        // is worth one backoff schedule.
        let transient = !matches!(err, CommError::Corrupted { .. });
        if transient && self.mesh.is_some() {
            if let Some(policy) = self.opts.reconnect {
                match d.reconn[peer] {
                    PeerLink::Pending { .. } => return,
                    PeerLink::Down => {}
                    PeerLink::Up => {
                        let now = Instant::now();
                        d.reconn[peer] = PeerLink::Pending {
                            attempts: 0,
                            next_at: now,
                            // The accepting side has no dial schedule to
                            // exhaust; it waits out the dialer's whole
                            // budget plus slack for the dials themselves.
                            give_up: now + policy.budget() + 2 * policy.cap,
                        };
                        return;
                    }
                }
            }
        }
        self.condemn(d, peer, err);
    }

    /// Drains one readable peer socket into its staging buffer and
    /// parses every complete frame. Called with the demux lock held.
    fn read_peer(&self, d: &mut Demux, peer: usize) -> usize {
        if d.closed[peer].is_some() {
            return 0;
        }
        let mut stashed = 0;
        let outcome: Option<CommError> = loop {
            d.staging[peer].ensure_space();
            let Some(stream) = d.streams[peer].as_ref() else {
                break None;
            };
            let stg = &mut d.staging[peer];
            let t0 = Instant::now();
            let res = Read::read(&mut &*stream, &mut stg.buf[stg.end..]);
            self.note_syscall(&self.clocks.read_syscalls, t0.elapsed());
            match res {
                Ok(0) => {
                    // Clean EOF on a frame boundary is an orderly
                    // shutdown (the peer dropped its endpoint); EOF with
                    // a partial frame staged means the process died
                    // mid-write.
                    break Some(if d.staging[peer].start == d.staging[peer].end {
                        CommError::Disconnected { peer }
                    } else {
                        CommError::PeerDead { rank: peer }
                    });
                }
                Ok(n) => {
                    let space = stg.buf.len() - stg.end;
                    stg.end += n;
                    d.last_heard[peer] = Instant::now();
                    match self.parse_staged(d, peer, &mut stashed) {
                        Ok(()) => {}
                        Err(e) => break Some(e),
                    }
                    // A short read means the kernel buffer is (almost
                    // certainly) drained; a full one means more awaits.
                    if n < space {
                        break None;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break None,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // ECONNRESET and friends: the peer's process is gone (or
                // its host is), not merely done sending.
                Err(_) => break Some(CommError::PeerDead { rank: peer }),
            }
        };
        if let Some(err) = outcome {
            self.fail_link(d, peer, err);
        }
        stashed
    }

    /// Parses every complete frame staged for `peer`, verifying checksum
    /// and per-tag sequence, and stashes the payloads.
    fn parse_staged(&self, d: &mut Demux, peer: usize, stashed: &mut usize) -> Result<(), CommError> {
        let t0 = Instant::now();
        let result = loop {
            let (frame, used) = match wire::parse_frame(d.staging[peer].window()) {
                Ok(Some(x)) => x,
                Ok(None) => break Ok(()),
                Err(e) => {
                    break Err(CommError::Corrupted {
                        peer,
                        detail: e.to_string(),
                    })
                }
            };
            let stg = &mut d.staging[peer];
            stg.start += used;
            if stg.start == stg.end {
                stg.start = 0;
                stg.end = 0;
            }
            let want = d.expected[peer].entry(frame.tag).or_insert(0);
            if frame.seq != *want {
                break Err(CommError::Corrupted {
                    peer,
                    detail: format!(
                        "tag {:#x}: expected seq {want}, got {}",
                        frame.tag, frame.seq
                    ),
                });
            }
            *want += 1;
            self.wire_bytes_in.fetch_add(used as u64, Ordering::Relaxed);
            // Heartbeats are liveness signal only: sequence-checked like
            // any CTRL frame (above), but never stashed — receivers must
            // not observe them as traffic.
            if frame.tag == CTRL_TAG && frame.enc.payload().as_ref() == HB_PAYLOAD {
                continue;
            }
            d.inbox[peer].entry(frame.tag).or_default().push_back(frame.enc);
            d.arrivals[peer] += 1;
            d.total_arrivals += 1;
            *stashed += 1;
        };
        self.clocks
            .serialize_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        result
    }

    // ---- the write path -------------------------------------------------

    /// Serializes a frame header into the slot's arena and queues the
    /// `(header, payload)` pair. Accounting happens here: the frame is
    /// committed to the wire from the caller's point of view.
    fn enqueue_frame(&self, slot: &mut WriterSlot, tag: Tag, payload: Encoded) {
        let t0 = Instant::now();
        let payload_bytes = payload.payload_bytes();
        let shape = payload.shape().clone();
        let seq = slot.seq.entry(tag).or_insert(0);
        let this_seq = *seq;
        *seq += 1;
        let body = payload.into_payload();
        let hdr_start = slot.hdrs.len();
        let hdr_len = wire::append_frame_header(&mut slot.hdrs, tag, this_seq, &shape, &body);
        slot.queue.push_back(QueuedFrame {
            hdr_start,
            hdr_len,
            payload: body,
            tag,
            shape,
            seq: this_seq,
        });
        slot.queued_bytes += hdr_len + payload_bytes;
        self.pending_frames.fetch_add(1, Ordering::Relaxed);
        let wire_len = (hdr_len + payload_bytes) as u64;
        self.wire_bytes_out.fetch_add(wire_len, Ordering::Relaxed);
        self.clocks
            .serialize_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        if let Some(m) = &self.obs {
            m.msgs_sent.inc();
            m.bytes_sent.add(payload_bytes as u64);
            m.wire_bytes_sent.add(wire_len);
        }
    }

    /// Whether `peer`'s link is mid-reconnect (outbound frames are
    /// parked in the writer queue until the link heals).
    fn link_pending(&self, peer: usize) -> bool {
        matches!(lock(&self.demux).reconn[peer], PeerLink::Pending { .. })
    }

    /// One vectored write attempt over the front of the queue. `Sent`
    /// means bytes moved; `Full` means the socket would block;
    /// `Deferred` means the link failed but entered the reconnect state
    /// (the queue was re-sequenced and parked).
    fn writev_slot(&self, peer: usize, slot: &mut WriterSlot) -> Result<WriteProgress, CommError> {
        // Cap the slices per writev well under IOV_MAX.
        const MAX_FRAMES_PER_WRITE: usize = 64;
        loop {
            let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(
                2 * slot.queue.len().min(MAX_FRAMES_PER_WRITE),
            );
            let mut skip = slot.front_written;
            for qf in slot.queue.iter().take(MAX_FRAMES_PER_WRITE) {
                let hdr = &slot.hdrs[qf.hdr_start..qf.hdr_start + qf.hdr_len];
                if skip < hdr.len() {
                    slices.push(IoSlice::new(&hdr[skip..]));
                    skip = 0;
                } else {
                    skip -= hdr.len();
                }
                let pay = qf.payload.as_ref();
                if skip < pay.len() {
                    slices.push(IoSlice::new(&pay[skip..]));
                    skip = 0;
                } else {
                    skip -= pay.len();
                }
            }
            let t0 = Instant::now();
            let res = Write::write_vectored(&mut &slot.stream, &slices);
            match res {
                Ok(0) => {
                    self.note_syscall(&self.clocks.write_syscalls, t0.elapsed());
                    return self.fail_writer(slot, peer);
                }
                Ok(n) => {
                    self.note_syscall(&self.clocks.write_syscalls, t0.elapsed());
                    slot.front_written += n;
                    // A fully-written frame is only *kernel*-accepted, not
                    // delivered; with reconnect armed it moves to the
                    // retention buffer until the peer acknowledges it in
                    // a reconnect handshake (or the link stays healthy).
                    let retain = self.mesh.is_some() && self.opts.reconnect.is_some();
                    while let Some(front) = slot.queue.front() {
                        let total = front.wire_len();
                        if slot.front_written < total {
                            break;
                        }
                        slot.front_written -= total;
                        slot.queued_bytes -= total;
                        let sent = slot.queue.pop_front().expect("front exists");
                        if retain {
                            slot.retained_bytes += total;
                            slot.retained.push_back(RetainedFrame {
                                seq: sent.seq,
                                tag: sent.tag,
                                shape: sent.shape,
                                payload: sent.payload,
                                wire_len: total,
                            });
                            while slot.retained_bytes > self.opts.retain_bytes {
                                let Some(old) = slot.retained.pop_front() else {
                                    break;
                                };
                                slot.retained_bytes -= old.wire_len;
                            }
                        }
                        self.pending_frames.fetch_sub(1, Ordering::Relaxed);
                        self.clocks.writev_frames.fetch_add(1, Ordering::Relaxed);
                        if let Some(m) = &self.obs {
                            m.writev_frames.inc();
                        }
                    }
                    return Ok(WriteProgress::Sent);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    return Ok(WriteProgress::Full);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return self.fail_writer(slot, peer),
            }
        }
    }

    /// Writes the slot's whole queue with vectored writes, handling
    /// partial writes by cursor and `WouldBlock` by waiting for
    /// `POLLOUT` — draining our own inbound between waits so a mesh of
    /// mutually-blocked senders cannot deadlock. Bounded: a socket that
    /// stays full past the endpoint timeout surfaces
    /// [`CommError::Timeout`] instead of parking forever on a peer that
    /// stopped reading.
    fn flush_slot(&self, peer: usize, slot: &mut WriterSlot) -> Result<(), CommError> {
        if !slot.queue.is_empty() && self.link_pending(peer) {
            // Mid-reconnect: frames wait for the link to heal.
            return Ok(());
        }
        let deadline = Instant::now() + self.timeout;
        while !slot.queue.is_empty() {
            match self.writev_slot(peer, slot)? {
                WriteProgress::Sent => {}
                WriteProgress::Deferred => return Ok(()),
                WriteProgress::Full => {
                    if Instant::now() >= deadline {
                        return Err(CommError::Timeout {
                            from: peer,
                            waited: self.timeout,
                            in_flight: 0,
                        });
                    }
                    // Socket full: drain our own inbound (the peer may be
                    // blocked sending to us), then wait for writability.
                    self.pump(Duration::ZERO);
                    let mut pfd = [sys::PollFd {
                        fd: sys::raw_fd(&slot.stream),
                        events: sys::POLLOUT,
                        revents: 0,
                    }];
                    let t1 = Instant::now();
                    let _ = sys::poll_wait(&mut pfd, Duration::from_millis(2));
                    self.clocks.poll_syscalls.fetch_add(1, Ordering::Relaxed);
                    self.clocks
                        .park_ns
                        .fetch_add(t1.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    if let Some(m) = &self.obs {
                        m.syscalls.inc();
                    }
                }
            }
        }
        slot.hdrs.clear();
        slot.front_written = 0;
        slot.queued_bytes = 0;
        Ok(())
    }

    /// A write error: the socket is gone. With a reconnect policy armed
    /// the queued frames keep their sequence numbers and park until the
    /// link heals (sequence spaces survive a socket swap); only the
    /// partial-write cursor resets, so the front frame is resent whole.
    /// Without one the queue is discarded and the peer condemned as
    /// [`CommError::PeerDead`].
    fn fail_writer(
        &self,
        slot: &mut WriterSlot,
        peer: usize,
    ) -> Result<WriteProgress, CommError> {
        let mut d = lock(&self.demux);
        self.fail_link(&mut d, peer, CommError::PeerDead { rank: peer });
        if matches!(d.reconn[peer], PeerLink::Pending { .. }) {
            drop(d);
            slot.front_written = 0;
            return Ok(WriteProgress::Deferred);
        }
        drop(d);
        self.pending_frames
            .fetch_sub(slot.queue.len() as u64, Ordering::Relaxed);
        slot.queue.clear();
        slot.hdrs.clear();
        slot.seq.clear();
        slot.front_written = 0;
        slot.queued_bytes = 0;
        slot.retained.clear();
        slot.retained_bytes = 0;
        Err(CommError::PeerDead { rank: peer })
    }

    /// Rebuilds the writer queue against the receiver's declared
    /// delivery state (from the reconnect handshake). Frames the
    /// receiver acknowledges are pruned from retention; flushed frames
    /// it never got are re-queued from retention ahead of the unsent
    /// queue, keeping their original sequence numbers, so the healed
    /// link resumes exactly at the receiver's next-expected seq per
    /// tag. A gap retention no longer covers — or a state table that
    /// contradicts what was ever sent — is unrecoverable: the caller
    /// condemns the peer rather than heal into silently misaligned
    /// payloads.
    fn rebuild_for_delivery(
        &self,
        slot: &mut WriterSlot,
        peer: usize,
        theirs: &HashMap<Tag, u32>,
    ) -> Result<(), CommError> {
        // First queued (unsent) seq per tag; everything below it was
        // fully flushed to the old socket.
        let mut first_queued: HashMap<Tag, u32> = HashMap::new();
        for qf in &slot.queue {
            first_queued.entry(qf.tag).or_insert(qf.seq);
        }
        for (&tag, &next) in &slot.seq {
            let exp = theirs.get(&tag).copied().unwrap_or(0);
            let flushed_end = first_queued.get(&tag).copied().unwrap_or(next);
            if exp > flushed_end {
                return Err(CommError::Corrupted {
                    peer,
                    detail: format!(
                        "reconnect state: peer expects seq {exp} on tag {tag:#x}, \
                         only {flushed_end} frames ever flushed"
                    ),
                });
            }
            // Retention per tag is a contiguous suffix of the flushed
            // frames, so holding the oldest undelivered one implies
            // holding the whole gap.
            if exp < flushed_end
                && !slot.retained.iter().any(|r| r.tag == tag && r.seq == exp)
            {
                return Err(CommError::PeerDead { rank: peer });
            }
        }
        if theirs.keys().any(|tag| !slot.seq.contains_key(tag)) {
            return Err(CommError::Corrupted {
                peer,
                detail: "reconnect state: peer expects frames on a tag never sent".into(),
            });
        }
        // Drain retention: acknowledged frames are gone for good, the
        // undelivered suffix goes back on the queue (oldest first,
        // ahead of the unsent frames — inter-tag order is irrelevant,
        // per-tag order is preserved).
        let mut resend: Vec<RetainedFrame> = Vec::new();
        while let Some(r) = slot.retained.pop_front() {
            slot.retained_bytes -= r.wire_len;
            if r.seq >= theirs.get(&r.tag).copied().unwrap_or(0) {
                resend.push(r);
            }
        }
        for r in resend.into_iter().rev() {
            let hdr_start = slot.hdrs.len();
            let hdr_len =
                wire::append_frame_header(&mut slot.hdrs, r.tag, r.seq, &r.shape, &r.payload);
            slot.queued_bytes += hdr_len + r.payload.len();
            slot.queue.push_front(QueuedFrame {
                hdr_start,
                hdr_len,
                payload: r.payload,
                tag: r.tag,
                shape: r.shape,
                seq: r.seq,
            });
            self.pending_frames.fetch_add(1, Ordering::Relaxed);
        }
        slot.front_written = 0;
        Ok(())
    }

    // ---- liveness and reconnect -----------------------------------------

    /// Emits one heartbeat round on the CTRL lane when the interval has
    /// elapsed. Never blocks: busy writer slots are skipped (their
    /// traffic is itself proof of life) and a full socket leaves the
    /// frame queued for the next flush.
    fn maybe_emit_heartbeats(&self) {
        let Some(interval) = self.opts.heartbeat_interval else {
            return;
        };
        let interval_ns = interval.as_nanos() as u64;
        let now_ns = self.born.elapsed().as_nanos() as u64;
        if now_ns.saturating_sub(self.hb_last_ns.load(Ordering::Relaxed)) < interval_ns {
            return;
        }
        // Take the guard *before* advancing the interval clock: a round
        // that loses to a concurrent (or re-entrant) emitter is retried
        // on the next pump instead of being skipped with its timestamp
        // already consumed, which would stretch emission gaps toward
        // 2x the interval and erode the liveness margin.
        if self.hb_guard.swap(true, Ordering::Acquire) {
            return;
        }
        if now_ns.saturating_sub(self.hb_last_ns.load(Ordering::Relaxed)) < interval_ns {
            self.hb_guard.store(false, Ordering::Release);
            return;
        }
        self.hb_last_ns.store(now_ns, Ordering::Relaxed);
        let up: Vec<usize> = {
            let d = lock(&self.demux);
            (0..self.world)
                .filter(|&p| {
                    p != self.rank
                        && d.closed[p].is_none()
                        && d.streams[p].is_some()
                        && matches!(d.reconn[p], PeerLink::Up)
                })
                .collect()
        };
        for peer in up {
            let Some(m) = self.writers[peer].as_ref() else {
                continue;
            };
            // try_lock: a slot busy flushing is already proving this
            // rank alive, and blocking here could deadlock with a flush
            // that pumps on this same thread.
            let mut slot = match m.try_lock() {
                Ok(g) => g,
                Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
                Err(std::sync::TryLockError::WouldBlock) => continue,
            };
            let hb = Encoded::new(
                Shape::new(vec![1]),
                bytes::Bytes::from_static(&HB_PAYLOAD),
            );
            self.enqueue_frame(&mut slot, CTRL_TAG, hb);
            self.heartbeats_out.fetch_add(1, Ordering::Relaxed);
            if let Some(mm) = &self.obs {
                mm.heartbeats.inc();
            }
            // One nonblocking attempt; a full socket keeps it queued.
            let _ = self.writev_slot(peer, &mut slot);
        }
        self.hb_guard.store(false, Ordering::Release);
    }

    /// Advances the reconnect state machine: condemns links past their
    /// budget and redials every due peer we originally dialed. Cheap
    /// no-op without a mesh. Takes no locks across the dials themselves.
    fn mesh_service(&self) {
        let Some(mesh) = &self.mesh else {
            return;
        };
        let Some(policy) = self.opts.reconnect else {
            return;
        };
        let now = Instant::now();
        let mut dials: Vec<(usize, String)> = Vec::new();
        {
            let mut d = lock(&self.demux);
            for peer in 0..self.world {
                if peer == self.rank {
                    continue;
                }
                if let PeerLink::Pending {
                    attempts,
                    next_at,
                    give_up,
                    ..
                } = d.reconn[peer]
                {
                    if now >= give_up || attempts >= policy.max_attempts {
                        self.condemn(&mut d, peer, CommError::PeerDead { rank: peer });
                        continue;
                    }
                    if now >= next_at {
                        if let Some(addr) = mesh.addrs[peer].clone() {
                            dials.push((peer, addr));
                        }
                    }
                }
            }
        }
        for (peer, addr) in dials {
            self.try_dial(peer, &addr, policy);
        }
    }

    /// One redial attempt toward `peer`: connect, announce ourselves
    /// with the reconnect preamble plus our delivery state, read the
    /// acceptor's delivery state back, and install the fresh link.
    /// Failures advance the backoff schedule; exhausting it condemns
    /// the peer.
    ///
    /// Our delivery state is stable across the handshake: the read lane
    /// to `peer` was detached when the link entered `Pending`
    /// ([`Self::fail_link`]), so no sibling thread can advance
    /// `expected[peer]` between the snapshot and the install.
    fn try_dial(&self, peer: usize, addr: &str, policy: ReconnectPolicy) {
        let state = encode_delivery_state(&lock(&self.demux).expected[peer]);
        let dialed = TcpStream::connect(addr).and_then(|mut s| {
            let mut hello = [0u8; 8];
            hello[..4].copy_from_slice(&RECON_MAGIC);
            hello[4..].copy_from_slice(&(self.rank as u32).to_le_bytes());
            s.write_all(&hello)?;
            s.write_all(&state)?;
            // The acceptor answers with its own delivery state; bound
            // the wait so a wedged acceptor just advances the backoff.
            s.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
            let theirs = read_delivery_state(&mut &s)?;
            s.set_read_timeout(None)?;
            Ok((s, theirs))
        });
        match dialed {
            Ok((s, theirs)) => {
                let _ = self.install_link(peer, s, &theirs);
            }
            Err(_) => {
                let mut d = lock(&self.demux);
                if let PeerLink::Pending {
                    attempts, next_at, ..
                } = &mut d.reconn[peer]
                {
                    *attempts += 1;
                    let n = *attempts;
                    if n >= policy.max_attempts {
                        self.condemn(&mut d, peer, CommError::PeerDead { rank: peer });
                    } else {
                        *next_at = Instant::now() + policy.delay(n);
                    }
                }
            }
        }
    }

    /// Drains the mesh listener: every pending connection must open with
    /// the reconnect preamble naming a valid, un-condemned peer and
    /// carry the dialer's delivery state; we answer with ours and then
    /// replace the peer's link. Anything else is dropped.
    fn mesh_accept(&self) {
        let Some(mesh) = &self.mesh else {
            return;
        };
        loop {
            match mesh.listener.accept() {
                Ok((stream, _)) => {
                    // Sockets accepted from a nonblocking listener
                    // inherit O_NONBLOCK on some platforms (macOS/BSD);
                    // force blocking mode so the bounded read timeout —
                    // not an instant WouldBlock — governs the handshake.
                    if stream.set_nonblocking(false).is_err() {
                        continue;
                    }
                    let mut hello = [0u8; 8];
                    let handshake = stream
                        .set_read_timeout(Some(HANDSHAKE_TIMEOUT))
                        .and_then(|()| (&stream).read_exact(&mut hello))
                        .and_then(|()| {
                            if hello[..4] == RECON_MAGIC {
                                read_delivery_state(&mut &stream)
                            } else {
                                Err(std::io::Error::new(
                                    std::io::ErrorKind::InvalidData,
                                    "bad reconnect preamble",
                                ))
                            }
                        });
                    let Ok(theirs) = handshake else {
                        continue;
                    };
                    let peer = u32::from_le_bytes([hello[4], hello[5], hello[6], hello[7]]) as usize;
                    if peer >= self.world || peer == self.rank {
                        continue;
                    }
                    let mine = {
                        let mut d = lock(&self.demux);
                        // Once condemned, the verdict is final: the
                        // error may already have been surfaced and
                        // acted on. Refuse the redial.
                        if matches!(d.reconn[peer], PeerLink::Down) || d.closed[peer].is_some() {
                            continue;
                        }
                        // Quiesce the old lane before declaring our
                        // delivery state: drain whatever the dead
                        // socket still holds, then detach it so no
                        // sibling thread advances `expected[peer]`
                        // between this reply and the install.
                        self.read_peer(&mut d, peer);
                        if matches!(d.reconn[peer], PeerLink::Down) || d.closed[peer].is_some() {
                            continue;
                        }
                        d.streams[peer] = None;
                        encode_delivery_state(&d.expected[peer])
                    };
                    if (&stream).write_all(&mine).is_err() {
                        continue;
                    }
                    let _ = stream.set_read_timeout(None);
                    let _ = self.install_link(peer, stream, &theirs);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    /// Replaces `peer`'s link with a fresh stream (either side of a
    /// reconnect). Sequence spaces survive the swap: the receive side
    /// keeps its per-tag expectations (only partial staging from the
    /// old socket is discarded), and the writer queue is rebuilt
    /// against `theirs` — the peer's delivery state from the handshake
    /// — retransmitting the flushed-but-undelivered suffix from
    /// retention ([`Self::rebuild_for_delivery`]). Stashed frames from
    /// the old connection stay deliverable. A condemned peer is
    /// refused: the [`CommError::PeerDead`] verdict is final for this
    /// incarnation, and a gap retention cannot cover condemns here
    /// rather than heal into misaligned payloads.
    fn install_link(
        &self,
        peer: usize,
        stream: TcpStream,
        theirs: &HashMap<Tag, u32>,
    ) -> Result<(), CommError> {
        let boot = |what: &str, e: std::io::Error| CommError::Bootstrap {
            detail: format!("reconnecting link to rank {peer}: {what}: {e}"),
        };
        if matches!(lock(&self.demux).reconn[peer], PeerLink::Down) {
            return Err(CommError::PeerDead { rank: peer });
        }
        stream
            .set_nodelay(self.opts.nodelay)
            .map_err(|e| boot("TCP_NODELAY", e))?;
        stream
            .set_nonblocking(true)
            .map_err(|e| boot("nonblocking mode", e))?;
        let read_half = stream.try_clone().map_err(|e| boot("demux clone", e))?;
        let Some(m) = self.writers[peer].as_ref() else {
            return Err(CommError::PeerDead { rank: peer });
        };
        // try_lock, never block: this can run inside a flush's own pump
        // (possibly already holding this very slot), and a blocking lock
        // would deadlock. A persistently busy slot aborts the install —
        // the dialing side simply redials on its backoff schedule.
        let mut slot = 'acquire: {
            for _ in 0..5 {
                match m.try_lock() {
                    Ok(g) => break 'acquire g,
                    Err(std::sync::TryLockError::Poisoned(p)) => break 'acquire p.into_inner(),
                    Err(std::sync::TryLockError::WouldBlock) => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                }
            }
            return Err(CommError::Timeout {
                from: peer,
                waited: Duration::from_millis(10),
                in_flight: 0,
            });
        };
        {
            let mut d = lock(&self.demux);
            // Re-check under the lock: the peer may have been condemned
            // (budget exhausted, liveness expiry) while the handshake
            // ran, and a condemned verdict must stay final. A lane that
            // is already live again means a racing install won — drop
            // this connection rather than double-install.
            if matches!(d.reconn[peer], PeerLink::Down) || d.closed[peer].is_some() {
                return Err(CommError::PeerDead { rank: peer });
            }
            if d.streams[peer].is_some() {
                return Err(CommError::Bootstrap {
                    detail: format!("link to rank {peer} is already live"),
                });
            }
            if let Err(e) = self.rebuild_for_delivery(&mut slot, peer, theirs) {
                self.condemn(&mut d, peer, e.clone());
                return Err(e);
            }
            slot.stream = stream;
            d.streams[peer] = Some(read_half);
            // Partial staging from the old socket is discarded; the
            // sender retransmits that frame whole. Sequence
            // expectations are *kept* — the handshake advertised them,
            // and the rebuilt writer queue resumes exactly there.
            d.staging[peer].start = 0;
            d.staging[peer].end = 0;
            d.reconn[peer] = PeerLink::Up;
            d.last_heard[peer] = Instant::now();
        }
        self.reconnects_done.fetch_add(1, Ordering::Relaxed);
        if let Some(mm) = &self.obs {
            mm.reconnects.inc();
        }
        // One nonblocking push of anything parked during the outage —
        // the peer is likely blocked waiting on it; leftovers go out on
        // the next flush. (No blocking flush here: it could pump, and
        // this may already be running inside a pump.)
        if !slot.queue.is_empty() {
            let _ = self.writev_slot(peer, &mut slot)?;
        }
        Ok(())
    }

    /// Flushes every peer's coalescing queue. Fast no-op when nothing is
    /// pending (one atomic load).
    fn flush_all(&self) -> Result<(), CommError> {
        if self.pending_frames.load(Ordering::Relaxed) == 0 {
            return Ok(());
        }
        let mut first_err = None;
        for peer in 0..self.world {
            let Some(m) = self.writers.get(peer).and_then(|w| w.as_ref()) else {
                continue;
            };
            let mut slot = lock(m);
            if slot.queue.is_empty() {
                continue;
            }
            if let Err(e) = self.flush_slot(peer, &mut slot) {
                first_err.get_or_insert(e);
            }
        }
        first_err.map_or(Ok(()), Err)
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // State mutations are small pushes/pops; recover from a poisoned
    // lock rather than cascading a panic across the mesh.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Transport for TcpTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world(&self) -> usize {
        self.world
    }

    fn timeout(&self) -> Duration {
        self.timeout
    }

    fn send_tagged(&self, peer: usize, tag: Tag, payload: Encoded) -> Result<(), CommError> {
        // Send-side emission too, not just pump(): a rank that only
        // sends for a while must still prove itself alive to peers it
        // is not currently sending to.
        self.maybe_emit_heartbeats();
        let mut slot = self.writer(peer)?;
        self.enqueue_frame(&mut slot, tag, payload);
        self.maybe_inject_reset(peer, &slot);
        // One vectored write covers any coalesced backlog plus this
        // frame, preserving per-peer submission order.
        let r = self.flush_slot(peer, &mut slot);
        drop(slot);
        if r.is_ok() && self.mesh.is_some() && self.link_pending(peer) {
            // The frame parked behind a reconnect: drive the redial now
            // (with the slot released so the install can take it) so a
            // pure sender still heals its own links.
            self.pump(Duration::ZERO);
        }
        r
    }

    fn try_send_tagged(
        &self,
        peer: usize,
        tag: Tag,
        payload: Encoded,
    ) -> Result<Option<Encoded>, CommError> {
        self.maybe_emit_heartbeats();
        let defer = payload.payload_bytes() <= self.opts.coalesce_frame_bytes;
        let mut slot = self.writer(peer)?;
        self.enqueue_frame(&mut slot, tag, payload);
        self.maybe_inject_reset(peer, &slot);
        // Small frames coalesce until the budget overflows (mirroring
        // the engine's coalescer); large ones go out now — kernel socket
        // buffers absorb collective-sized frames, so the blocking flush
        // is the nonblocking path's slow lane, not a deadlock (the flush
        // drains inbound while it waits).
        if !defer || slot.queued_bytes >= self.opts.coalesce_budget_bytes {
            self.flush_slot(peer, &mut slot)?;
        }
        drop(slot);
        if self.mesh.is_some() && self.link_pending(peer) {
            self.pump(Duration::ZERO);
        }
        Ok(None)
    }

    fn recv_tagged_deadline(
        &self,
        peer: usize,
        tag: Tag,
        timeout: Duration,
    ) -> Result<Encoded, CommError> {
        assert!(peer < self.world && peer != self.rank, "bad peer {peer}");
        let _ = self.flush_all();
        let deadline = Instant::now() + timeout;
        let mut probed = false;
        loop {
            {
                let mut d = lock(&self.demux);
                if let Some(p) = Self::take_stashed(&mut d, peer, tag) {
                    drop(d);
                    self.note_recv(&p);
                    return Ok(p);
                }
                // Stash drained first: a payload that arrived before the
                // peer died must still be delivered.
                if let Some(err) = &d.closed[peer] {
                    return Err(err.clone());
                }
                if !probed {
                    // Targeted probe, even on an expired deadline: the
                    // frame usually already sits in this peer's kernel
                    // buffer, and one nonblocking read on that socket is
                    // cheaper than a full poll-all turn. Misses fall
                    // through to the parking pump, which drains everyone.
                    probed = true;
                    self.read_peer(&mut d, peer);
                    continue;
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(CommError::Timeout {
                    from: peer,
                    waited: timeout,
                    in_flight: 0,
                });
            }
            self.pump((deadline - now).min(PARK_SLICE));
        }
    }

    fn try_recv_tagged(&self, peer: usize, tag: Tag) -> Result<Option<Encoded>, CommError> {
        assert!(peer < self.world && peer != self.rank, "bad peer {peer}");
        let _ = self.flush_all();
        let mut d = lock(&self.demux);
        if let Some(p) = Self::take_stashed(&mut d, peer, tag) {
            drop(d);
            self.note_recv(&p);
            return Ok(Some(p));
        }
        // Targeted probe: drain just this peer's socket instead of a
        // poll-all turn (see recv_tagged_deadline).
        self.read_peer(&mut d, peer);
        if let Some(p) = Self::take_stashed(&mut d, peer, tag) {
            drop(d);
            self.note_recv(&p);
            return Ok(Some(p));
        }
        if let Some(err) = &d.closed[peer] {
            return Err(err.clone());
        }
        Ok(None)
    }

    fn drain_inbound(&self) -> usize {
        let _ = self.flush_all();
        self.pump(Duration::ZERO)
    }

    fn begin_step(&self, step: usize) -> bool {
        let Some(plan) = &self.fault else {
            return false;
        };
        plan.should_die(self.rank, step)
    }

    fn flush_outbound(&self) -> Result<(), CommError> {
        self.flush_all()
    }

    fn wait_inbound(&self, peer: usize, tag: Tag, timeout: Duration) -> Result<bool, CommError> {
        assert!(peer < self.world && peer != self.rank, "bad peer {peer}");
        let _ = self.flush_all();
        let deadline = Instant::now() + timeout;
        // Wake when the tag is stashed *or* anything new arrives from
        // this peer — the caller may be waiting on a frame another
        // thread of this endpoint will consume.
        let baseline = lock(&self.demux).arrivals[peer];
        let mut probed = false;
        loop {
            {
                let d = lock(&self.demux);
                if d.inbox[peer].contains_key(&tag) || d.arrivals[peer] > baseline {
                    return Ok(true);
                }
                if let Some(err) = &d.closed[peer] {
                    return Err(err.clone());
                }
            }
            if !probed {
                probed = true;
                self.pump(Duration::ZERO);
                continue;
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(false);
            }
            self.pump((deadline - now).min(PARK_SLICE));
        }
    }

    fn wait_any_inbound(&self, timeout: Duration) -> bool {
        let _ = self.flush_all();
        let deadline = Instant::now() + timeout;
        let baseline = lock(&self.demux).total_arrivals;
        let mut probed = false;
        loop {
            {
                let d = lock(&self.demux);
                if d.total_arrivals > baseline || d.inbox.iter().any(|inbox| !inbox.is_empty()) {
                    return true;
                }
                if self.world > 1
                    && d.closed
                        .iter()
                        .enumerate()
                        .all(|(p, c)| p == self.rank || c.is_some())
                {
                    // Everyone is gone; nothing will ever arrive.
                    return false;
                }
            }
            if !probed {
                probed = true;
                self.pump(Duration::ZERO);
                continue;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.pump((deadline - now).min(PARK_SLICE));
        }
    }

    fn quiesce(&self, peers: &[usize]) {
        // Graceful teardown over the wire: exchange a marker on the
        // quiesce lane so neither side closes its socket while the
        // other's final-step traffic is still in flight (mirrors the
        // chaos layer's in-process protocol).
        let marker = Encoded::new(
            Shape::new(vec![1]),
            bytes::Bytes::copy_from_slice(&[0x51]),
        );
        for &p in peers {
            if p != self.rank && p < self.world {
                let _ = self.send_tagged(p, QUIESCE_TAG, marker.clone());
            }
        }
        for &p in peers {
            if p != self.rank && p < self.world {
                let _ = self.recv_tagged_deadline(p, QUIESCE_TAG, self.timeout);
            }
        }
    }

    fn take_namespaced_stashed(&self) -> Vec<(usize, Tag, Encoded)> {
        let mut d = lock(&self.demux);
        let mut out = Vec::new();
        for peer in 0..self.world {
            let tags: Vec<Tag> = d.inbox[peer]
                .keys()
                .copied()
                .filter(|&t| cgx_collectives::tag_namespace(t) != cgx_collectives::NATIVE_JOB)
                .collect();
            for tag in tags {
                if let Some(queue) = d.inbox[peer].remove(&tag) {
                    out.extend(queue.into_iter().map(|p| (peer, tag, p)));
                }
            }
        }
        out
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // Flush any coalesced frames (best effort), then shut the
        // sockets down so every peer's event loop observes EOF. No
        // threads to reap: the event loop dies with its callers.
        let _ = self.flush_all();
        for slot in self.writers.iter().flatten() {
            let _ = lock(slot).stream.shutdown(Shutdown::Both);
        }
    }
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("rank", &self.rank)
            .field("world", &self.world)
            .field("timeout", &self.timeout)
            .field("wire_bytes_out", &self.wire_bytes_out.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rendezvous::TcpFabric;
    use cgx_obs::MetricsRegistry;

    #[test]
    fn obs_counters_track_messages_and_wire_bytes() {
        let mut eps = TcpFabric::build_local(2);
        let registry = MetricsRegistry::new();
        for ep in &mut eps {
            ep.set_obs(&registry);
        }
        let payload = Encoded::new(
            Shape::new(vec![8]),
            bytes::Bytes::from(vec![3u8; 32]),
        );
        let wire = wire::frame_wire_bytes(1, 32) as u64;
        std::thread::scope(|s| {
            let mut it = eps.into_iter();
            let a = it.next().expect("rank 0");
            let b = it.next().expect("rank 1");
            s.spawn(move || a.send_tagged(1, 9, payload).expect("send"));
            s.spawn(move || {
                b.recv_tagged(0, 9).expect("recv");
            });
        });
        let snap = registry.snapshot();
        assert_eq!(snap.get("transport.msgs_sent"), Some(1));
        assert_eq!(snap.get("transport.bytes_sent"), Some(32));
        assert_eq!(snap.get("transport.wire_bytes_sent"), Some(wire));
        assert_eq!(snap.get("transport.msgs_recv"), Some(1));
        assert_eq!(snap.get("transport.bytes_recv"), Some(32));
        assert_eq!(snap.get("transport.writev_frames"), Some(1));
        assert!(
            snap.get("transport.syscalls").unwrap_or(0) >= 2,
            "at least one write and one read syscall"
        );
    }

    #[test]
    fn dropping_an_endpoint_disconnects_its_peers() {
        let mut eps = TcpFabric::build_local(2);
        let b = eps.pop().expect("rank 1");
        drop(eps); // rank 0's Drop shuts the sockets down
        let err = b
            .recv_tagged_deadline(0, 4, Duration::from_secs(5))
            .expect_err("peer is gone");
        assert!(matches!(err, CommError::Disconnected { peer: 0 }), "got {err:?}");
    }

    #[test]
    fn mesh_sockets_have_nodelay_set() {
        let eps = TcpFabric::build_local(2);
        for ep in &eps {
            assert!(ep.nodelay(), "rank {} socket is Nagle-delayed", ep.rank());
        }
    }

    #[test]
    fn tiny_read_buffer_still_carries_large_frames() {
        // A staging buffer far smaller than the frame forces the
        // compaction + growth path on every receive.
        let opts = NetOptions {
            read_buf_bytes: 64,
            ..NetOptions::default()
        };
        let eps = TcpFabric::build_local_with(2, opts);
        assert_eq!(eps[0].options().read_buf_bytes, 64);
        let big = Encoded::new(
            Shape::new(vec![4096]),
            bytes::Bytes::from((0..4096u32).map(|i| (i % 251) as u8).collect::<Vec<u8>>()),
        );
        let expect = big.clone();
        std::thread::scope(|s| {
            let mut it = eps.into_iter();
            let a = it.next().expect("rank 0");
            let b = it.next().expect("rank 1");
            s.spawn(move || a.send_tagged(1, 8, big).expect("send"));
            let got = b.recv_tagged(0, 8).expect("recv");
            assert_eq!(got.payload(), expect.payload());
        });
    }

    #[test]
    fn deferred_small_sends_flush_on_flush_outbound() {
        let eps = TcpFabric::build_local(2);
        let mut it = eps.into_iter();
        let a = it.next().expect("rank 0");
        let b = it.next().expect("rank 1");
        for i in 0..10u32 {
            let p = Encoded::new(
                Shape::new(vec![4]),
                bytes::Bytes::from(vec![i as u8; 4]),
            );
            assert!(a.try_send_tagged(1, 77, p).expect("try_send").is_none());
        }
        a.flush_outbound().expect("flush");
        for i in 0..10u32 {
            let got = b.recv_tagged(0, 77).expect("recv");
            assert_eq!(got.payload().as_ref(), &[i as u8; 4]);
        }
    }

    #[test]
    fn net_options_env_roundtrip() {
        // Distinct variables from any other test's; set/read/remove
        // back-to-back (same pattern as the cluster env test).
        std::env::set_var(ENV_READ_BUF, "1024");
        std::env::set_var(ENV_COALESCE, "2048");
        std::env::set_var(ENV_COALESCE_FRAME, "512");
        std::env::set_var(ENV_NODELAY, "0");
        let o = NetOptions::from_env();
        std::env::remove_var(ENV_READ_BUF);
        std::env::remove_var(ENV_COALESCE);
        std::env::remove_var(ENV_COALESCE_FRAME);
        std::env::remove_var(ENV_NODELAY);
        assert_eq!(
            o,
            NetOptions {
                read_buf_bytes: 1024,
                coalesce_budget_bytes: 2048,
                coalesce_frame_bytes: 512,
                nodelay: false,
                ..NetOptions::default()
            }
        );
        let d = NetOptions::from_env();
        assert_eq!(d, NetOptions::default());
    }

    #[test]
    fn fault_env_knobs_arm_heartbeats_and_reconnect() {
        std::env::set_var(ENV_HEARTBEAT_MS, "40");
        std::env::set_var(ENV_RECONNECT_ATTEMPTS, "3");
        std::env::set_var(ENV_RECONNECT_BASE_MS, "10");
        std::env::set_var(ENV_RECONNECT_CAP_MS, "80");
        let o = NetOptions::from_env();
        std::env::remove_var(ENV_HEARTBEAT_MS);
        std::env::remove_var(ENV_RECONNECT_ATTEMPTS);
        std::env::remove_var(ENV_RECONNECT_BASE_MS);
        std::env::remove_var(ENV_RECONNECT_CAP_MS);
        assert_eq!(o.heartbeat_interval, Some(Duration::from_millis(40)));
        assert_eq!(o.heartbeat_timeout, Duration::from_millis(250));
        let policy = o.reconnect.expect("reconnect armed");
        assert_eq!(policy.max_attempts, 3);
        assert_eq!(policy.base, Duration::from_millis(10));
        assert_eq!(policy.cap, Duration::from_millis(80));
        assert_eq!(NetOptions::from_env().reconnect, None);

        // A deadline at or below the interval guarantees false deaths:
        // both the env path and the builder floor it at
        // HB_TIMEOUT_FLOOR_INTERVALS emission intervals.
        std::env::set_var(ENV_HEARTBEAT_MS, "100");
        std::env::set_var(ENV_HEARTBEAT_TIMEOUT_MS, "50");
        let clamped = NetOptions::from_env();
        std::env::remove_var(ENV_HEARTBEAT_MS);
        std::env::remove_var(ENV_HEARTBEAT_TIMEOUT_MS);
        assert_eq!(clamped.heartbeat_timeout, Duration::from_millis(300));
        let built = NetOptions::default()
            .with_heartbeat(Duration::from_millis(50), Duration::from_millis(50));
        assert_eq!(built.heartbeat_timeout, Duration::from_millis(150));
    }

    #[test]
    fn heartbeats_flow_and_detect_a_frozen_peer() {
        // 2 ranks with aggressive liveness settings. Rank 1 "freezes":
        // it never pumps, so it stops emitting heartbeats, and rank 0
        // must condemn it as PeerDead within the deadline — even though
        // the socket stays open (the case plain EOF detection misses).
        let opts = NetOptions::default()
            .with_heartbeat(Duration::from_millis(20), Duration::from_millis(150));
        let mut eps = TcpFabric::build_local_with(2, opts);
        let frozen = eps.pop().expect("rank 1");
        let a = eps.pop().expect("rank 0");
        let t0 = Instant::now();
        let err = a
            .recv_tagged_deadline(1, 5, Duration::from_secs(10))
            .expect_err("frozen peer must be detected");
        assert!(
            matches!(err, CommError::PeerDead { rank: 1 }),
            "got {err:?}"
        );
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "detection took {:?}, deadline was 150ms",
            t0.elapsed()
        );
        assert!(a.heartbeats_sent() > 0, "rank 0 emitted heartbeats");
        assert_eq!(a.peer_deaths(), 1);
        drop(frozen);
    }

    #[test]
    fn heartbeats_are_invisible_to_receivers() {
        // With heartbeats far faster than the traffic, real payloads
        // must still arrive unperturbed and in order.
        let opts = NetOptions::default()
            .with_heartbeat(Duration::from_millis(5), Duration::from_secs(5));
        let eps = TcpFabric::build_local_with(2, opts);
        std::thread::scope(|s| {
            let mut it = eps.into_iter();
            let a = it.next().expect("rank 0");
            let b = it.next().expect("rank 1");
            s.spawn(move || {
                for i in 0..20u8 {
                    std::thread::sleep(Duration::from_millis(2));
                    let p = Encoded::new(
                        Shape::new(vec![1]),
                        bytes::Bytes::from(vec![i]),
                    );
                    a.send_tagged(1, 13, p).expect("send");
                }
            });
            for i in 0..20u8 {
                let got = b.recv_tagged(0, 13).expect("recv");
                assert_eq!(got.payload().as_ref(), &[i]);
            }
        });
    }

    #[test]
    fn injected_socket_reset_heals_through_reconnect() {
        // Rank 1 (the dialer of the 0<->1 link) has its socket shut down
        // after 3 outbound frames. With a reconnect policy armed the
        // link must heal transparently: all 10 payloads arrive, in
        // order, and the transports record a reconnect.
        let policy = ReconnectPolicy::new(
            Duration::from_millis(5),
            Duration::from_millis(100),
            8,
            7,
        );
        let opts = NetOptions::default().with_reconnect(policy);
        let mut eps = crate::rendezvous::TcpFabric::build_local_with(2, opts);
        let mut b = eps.pop().expect("rank 1");
        let a = eps.pop().expect("rank 0");
        b.set_fault(NetFaultPlan::new(7).with_reset(1, 0, 3));
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..10u8 {
                    let p = Encoded::new(
                        Shape::new(vec![1]),
                        bytes::Bytes::from(vec![i]),
                    );
                    b.send_tagged(0, 21, p).expect("send survives the reset");
                }
                assert!(b.reconnects() >= 1, "rank 1 redialed");
            });
            for i in 0..10u8 {
                let got = a
                    .recv_tagged_deadline(1, 21, Duration::from_secs(10))
                    .expect("recv across the reset");
                assert_eq!(got.payload().as_ref(), &[i]);
            }
            assert!(a.reconnects() >= 1, "rank 0 accepted the redial");
        });
    }

    #[test]
    fn reconnect_budget_exhaustion_condemns_the_peer() {
        // Rank 1 vanishes entirely (endpoint dropped, listener gone).
        // Rank 0's redials must all fail and surface a typed PeerDead
        // once the budget is spent — bounded, no hang.
        let policy = ReconnectPolicy::new(
            Duration::from_millis(2),
            Duration::from_millis(10),
            3,
            11,
        );
        let opts = NetOptions::default().with_reconnect(policy);
        let mut eps = crate::rendezvous::TcpFabric::build_local_with(2, opts);
        let b = eps.pop().expect("rank 1");
        let a = eps.pop().expect("rank 0");
        drop(b);
        let t0 = Instant::now();
        let err = a
            .recv_tagged_deadline(1, 9, Duration::from_secs(10))
            .expect_err("peer never comes back");
        assert!(
            matches!(err, CommError::PeerDead { rank: 1 }),
            "got {err:?}"
        );
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "budget exhaustion took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn delivery_state_roundtrips_and_bounds_entries() {
        let mut map: HashMap<Tag, u32> = HashMap::new();
        map.insert(7, 3);
        map.insert(CTRL_TAG, 12);
        map.insert(0, 1);
        let bytes = encode_delivery_state(&map);
        let back = read_delivery_state(&mut &bytes[..]).expect("roundtrip");
        assert_eq!(back, map);
        assert!(
            read_delivery_state(&mut &encode_delivery_state(&HashMap::new())[..])
                .expect("empty state")
                .is_empty()
        );
        // An implausible entry count is rejected before allocation.
        let huge = (MAX_STATE_ENTRIES as u32 + 1).to_le_bytes();
        assert!(read_delivery_state(&mut &huge[..]).is_err());
    }

    /// Builds a 2-rank mesh where rank 0 has flushed 3 frames on tag 7
    /// (now in retention) and still queues 2 unsent ones (seqs 3, 4).
    fn retention_fixture() -> Vec<TcpTransport> {
        let policy = ReconnectPolicy::new(
            Duration::from_millis(5),
            Duration::from_millis(50),
            4,
            3,
        );
        let opts = NetOptions::default().with_reconnect(policy);
        let eps = TcpFabric::build_local_with(2, opts);
        for i in 0..3u8 {
            let p = Encoded::new(Shape::new(vec![1]), bytes::Bytes::from(vec![i]));
            eps[0].send_tagged(1, 7, p).expect("flushed send");
        }
        for i in 3..5u8 {
            let p = Encoded::new(Shape::new(vec![1]), bytes::Bytes::from(vec![i]));
            assert!(eps[0].try_send_tagged(1, 7, p).expect("deferred").is_none());
        }
        {
            let slot = lock(eps[0].writers[1].as_ref().expect("slot"));
            assert_eq!(slot.retained.len(), 3, "flushed frames are retained");
            assert_eq!(slot.queue.len(), 2, "small frames coalesce unsent");
        }
        eps
    }

    #[test]
    fn rebuild_resumes_at_the_receivers_delivery_state() {
        // Everything flushed was delivered: retention is acknowledged
        // away and only the unsent frames remain, seqs untouched.
        let eps = retention_fixture();
        let mut slot = lock(eps[0].writers[1].as_ref().expect("slot"));
        let theirs: HashMap<Tag, u32> = [(7, 3)].into_iter().collect();
        eps[0]
            .rebuild_for_delivery(&mut slot, 1, &theirs)
            .expect("no gap");
        assert_eq!(slot.retained.len(), 0);
        assert_eq!(slot.retained_bytes, 0);
        let seqs: Vec<u32> = slot.queue.iter().map(|q| q.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
    }

    #[test]
    fn rebuild_retransmits_the_undelivered_suffix_from_retention() {
        // The receiver only got seq 0: seqs 1 and 2 come back out of
        // retention ahead of the unsent frames, original numbering.
        let eps = retention_fixture();
        let mut slot = lock(eps[0].writers[1].as_ref().expect("slot"));
        let theirs: HashMap<Tag, u32> = [(7, 1)].into_iter().collect();
        eps[0]
            .rebuild_for_delivery(&mut slot, 1, &theirs)
            .expect("retention covers the gap");
        assert_eq!(slot.retained.len(), 0);
        let seqs: Vec<u32> = slot.queue.iter().map(|q| q.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4]);
        assert_eq!(slot.front_written, 0, "front frame resent whole");
    }

    #[test]
    fn rebuild_condemns_when_the_gap_outgrew_retention() {
        // Retention no longer holds seq 1 (pruned): healing would skip
        // a frame the receiver never got — refuse with a typed error.
        let eps = retention_fixture();
        let mut slot = lock(eps[0].writers[1].as_ref().expect("slot"));
        let dropped = slot.retained.pop_front().expect("seq 0");
        slot.retained_bytes -= dropped.wire_len;
        let dropped = slot.retained.pop_front().expect("seq 1");
        slot.retained_bytes -= dropped.wire_len;
        let theirs: HashMap<Tag, u32> = [(7, 1)].into_iter().collect();
        let err = eps[0]
            .rebuild_for_delivery(&mut slot, 1, &theirs)
            .expect_err("gap not covered");
        assert!(matches!(err, CommError::PeerDead { rank: 1 }), "got {err:?}");
    }

    #[test]
    fn rebuild_rejects_contradictory_delivery_state() {
        // A peer claiming more frames than were ever flushed, or frames
        // on a tag never sent, is lying about shared history.
        let eps = retention_fixture();
        let mut slot = lock(eps[0].writers[1].as_ref().expect("slot"));
        let ahead: HashMap<Tag, u32> = [(7, 99)].into_iter().collect();
        assert!(matches!(
            eps[0].rebuild_for_delivery(&mut slot, 1, &ahead),
            Err(CommError::Corrupted { peer: 1, .. })
        ));
        let unknown: HashMap<Tag, u32> = [(9, 1)].into_iter().collect();
        assert!(matches!(
            eps[0].rebuild_for_delivery(&mut slot, 1, &unknown),
            Err(CommError::Corrupted { peer: 1, .. })
        ));
    }

    #[test]
    fn a_condemned_peer_cannot_be_resurrected_by_a_late_redial() {
        // Once PeerDead has been decided (and possibly surfaced to the
        // elastic layer), install_link must refuse the fresh socket and
        // leave the verdict in place.
        let policy = ReconnectPolicy::new(
            Duration::from_millis(2),
            Duration::from_millis(10),
            2,
            5,
        );
        let opts = NetOptions::default().with_reconnect(policy);
        let eps = TcpFabric::build_local_with(2, opts);
        {
            let mut d = lock(&eps[0].demux);
            eps[0].condemn(&mut d, 1, CommError::PeerDead { rank: 1 });
        }
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let dial = std::thread::spawn(move || TcpStream::connect(addr).expect("connect"));
        let (late, _) = listener.accept().expect("accept");
        let _ = dial.join().expect("dialer");
        let err = eps[0]
            .install_link(1, late, &HashMap::new())
            .expect_err("condemned is final");
        assert!(matches!(err, CommError::PeerDead { rank: 1 }), "got {err:?}");
        let d = lock(&eps[0].demux);
        assert!(matches!(d.reconn[1], PeerLink::Down), "verdict stands");
        assert!(d.closed[1].is_some(), "error stays recorded");
    }
}
