//! TopK magnitude sparsification.
//!
//! Transmits only the `k` largest-magnitude components (index + value).
//! The paper notes this family can reach >100x compression but needs error
//! feedback and per-model tuning to recover accuracy (Section 2.3); CGX uses
//! it only for naturally-sparse layers such as Transformer embeddings
//! (Section 6, "Heterogeneous compression").

use crate::{BitReader, BitWriter, Compressor, Encoded};
use cgx_tensor::{Rng, Tensor};

/// Sparsifier that keeps the top `ratio` fraction of components by
/// magnitude (at least one).
///
/// The wire format stores `k` as a `u32` followed by `k` (index `u32`,
/// value `f32`) pairs.
///
/// # Examples
///
/// ```
/// use cgx_compress::{Compressor, TopKCompressor};
/// use cgx_tensor::{Rng, Tensor};
/// let mut rng = Rng::seed_from_u64(0);
/// let g = Tensor::from_slice(&[0.0, 5.0, -0.1, 0.0]);
/// let mut c = TopKCompressor::new(0.25);
/// let enc = c.compress(&g, &mut rng);
/// let rt = c.decompress(&enc);
/// assert_eq!(rt.as_slice(), &[0.0, 5.0, 0.0, 0.0]);
/// ```
#[derive(Debug, Clone)]
pub struct TopKCompressor {
    ratio: f64,
}

impl TopKCompressor {
    /// Creates a sparsifier keeping fraction `ratio` of components.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ratio <= 1`.
    pub fn new(ratio: f64) -> Self {
        assert!(
            ratio > 0.0 && ratio <= 1.0,
            "ratio must be in (0, 1], got {ratio}"
        );
        TopKCompressor { ratio }
    }

    /// The configured density.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }

    /// Number of kept components for an `n`-element tensor.
    pub fn k_for(&self, n: usize) -> usize {
        ((n as f64 * self.ratio).round() as usize).clamp(1, n.max(1))
    }
}

impl Compressor for TopKCompressor {
    fn name(&self) -> String {
        format!("topk({}%)", self.ratio * 100.0)
    }

    fn compress(&mut self, grad: &Tensor, _rng: &mut Rng) -> Encoded {
        let k = self.k_for(grad.len());
        let idx = grad.top_k_indices(k);
        let mut w = BitWriter::with_capacity(4 + 8 * k);
        w.write_u32(k as u32);
        for i in idx {
            w.write_u32(i as u32);
            w.write_f32(grad[i]);
        }
        Encoded::new(grad.shape().clone(), w.finish())
    }

    fn decompress(&self, enc: &Encoded) -> Tensor {
        let mut out = Tensor::zeros(enc.shape().dims());
        let mut r = BitReader::new(enc.payload());
        let k = r.read_u32() as usize;
        for _ in 0..k {
            let i = r.read_u32() as usize;
            let v = r.read_f32();
            assert!(i < out.len(), "index {i} out of bounds in TopK payload");
            out[i] = v;
        }
        out
    }

    fn compressed_bytes(&self, n: usize) -> usize {
        4 + 8 * self.k_for(n)
    }

    fn kernel_cost_per_element(&self) -> f64 {
        // Selection is more expensive than a quantization pass (paper:
        // "additional cost of TopK compression").
        6.0e-11
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::round_trip;

    #[test]
    fn keeps_exactly_largest() {
        let mut rng = Rng::seed_from_u64(1);
        let g = Tensor::from_slice(&[1.0, -10.0, 3.0, 0.5, -7.0, 2.0]);
        let mut c = TopKCompressor::new(0.5);
        let rt = round_trip(&mut c, &g, &mut rng);
        assert_eq!(rt.as_slice(), &[0.0, -10.0, 3.0, 0.0, -7.0, 0.0]);
    }

    #[test]
    fn full_ratio_is_lossless_in_values() {
        let mut rng = Rng::seed_from_u64(2);
        let g = Tensor::randn(&mut rng, &[64]);
        let mut c = TopKCompressor::new(1.0);
        let rt = round_trip(&mut c, &g, &mut rng);
        assert_eq!(rt.as_slice(), g.as_slice());
    }

    #[test]
    fn payload_size_matches_prediction() {
        let mut rng = Rng::seed_from_u64(3);
        for n in [1usize, 10, 1000] {
            let g = Tensor::randn(&mut rng, &[n]);
            let mut c = TopKCompressor::new(0.01);
            let enc = c.compress(&g, &mut rng);
            assert_eq!(enc.payload_bytes(), c.compressed_bytes(n));
        }
    }

    #[test]
    fn at_least_one_component_kept() {
        assert_eq!(TopKCompressor::new(0.001).k_for(10), 1);
    }

    #[test]
    fn error_is_norm_of_dropped_tail() {
        let mut rng = Rng::seed_from_u64(4);
        let g = Tensor::from_slice(&[3.0, 4.0, 0.1, -0.2]);
        let mut c = TopKCompressor::new(0.5);
        let rt = round_trip(&mut c, &g, &mut rng);
        let err = rt.l2_distance(&g);
        let expected = (0.1f64 * 0.1 + 0.2 * 0.2).sqrt();
        assert!((err - expected).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "ratio must be in (0, 1]")]
    fn zero_ratio_panics() {
        TopKCompressor::new(0.0);
    }

    #[test]
    fn shape_preserved() {
        let mut rng = Rng::seed_from_u64(5);
        let g = Tensor::randn(&mut rng, &[8, 16]);
        let mut c = TopKCompressor::new(0.1);
        assert_eq!(round_trip(&mut c, &g, &mut rng).shape(), g.shape());
    }
}
