//! cgx-net: a real socket fabric for the CGX collectives.
//!
//! Everything below `crates/net` exists so the compression-aware
//! collectives stop being a thread-only simulation: the same
//! [`Transport`](cgx_collectives::Transport) contract the in-process
//! [`ShmTransport`](cgx_collectives::ShmTransport) implements, backed by
//! TCP sockets between real OS processes.
//!
//! - [`wire`] — length-prefixed frames that embed the chaos layer's
//!   seq+FNV envelope, so corruption detection is identical on both
//!   fabrics.
//! - [`tcp`] — [`TcpTransport`]: a caller-driven readiness event loop
//!   (nonblocking sockets, `poll(2)`, in-place frame parsing, vectored
//!   coalesced writes) feeding the tag-demuxed, deadline-aware stash
//!   model with zero extra threads.
//! - [`rendezvous`] — bootstrap from "N processes and one address" to a
//!   full mesh plus a node [`Topology`](cgx_collectives::Topology), and
//!   [`TcpFabric`] for in-process loopback meshes.
//! - [`cluster`] — [`ProcessCluster`]: spawn-and-wait of one OS process
//!   per rank, env-driven (`CGX_RANK`, `CGX_WORLD`, `CGX_RENDEZVOUS`),
//!   with supervised mode reporting per-rank deaths.
//! - [`workload`] — the deterministic training workload behind the
//!   `cgx-launch` binary and the Shm/TCP parity test.
//! - [`fault`] — [`NetFaultPlan`]: process kills (orderly or `SIGKILL`)
//!   and socket resets, the OS-level mirror of the in-process chaos
//!   plan.

#![warn(missing_docs)]

pub mod cluster;
pub mod fault;
pub mod rendezvous;
pub mod tcp;
pub mod wire;
pub mod workload;

pub use cluster::{ClusterReport, ProcessCluster, RankExit};
pub use fault::{NetFaultPlan, ResetPlan};
pub use rendezvous::{rendezvous, rendezvous_with_options, TcpFabric, DEFAULT_BOOT_TIMEOUT};
pub use tcp::{NetOptions, TcpTransport, WireStats};
