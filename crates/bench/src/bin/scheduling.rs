//! Scheduling ablations (paper Section 4, "Improved Scheduling"):
//! FIFO vs forward-priority message ordering, and cross-barrier training —
//! including the paper's two findings: cross-barrier buys little on a
//! single node once compression removes the bottleneck, and gradient
//! clipping (Transformers) forbids it outright.

use cgx_bench::{fmt_ms, note, render_table};
use cgx_core::api::CgxBuilder;
use cgx_models::{ModelId, ModelSpec};
use cgx_simnet::{
    cross_barrier_step, simulate_step_ordered, ComputeProfile, MachineSpec, MessageOrder,
    StepConfig,
};

fn main() {
    let rtx = MachineSpec::rtx3090();
    let mut rows = Vec::new();
    for (model, clipping) in [
        (ModelId::ResNet50, false),
        (ModelId::Vgg16, false),
        (ModelId::TransformerXl, true), // clipping required
        (ModelId::BertBase, true),
    ] {
        let spec = ModelSpec::build(model);
        let mut session = CgxBuilder::new().build();
        session.register_model_spec(&spec);
        let msgs = session.layer_messages(spec.precision());
        let compute = ComputeProfile::new(rtx.gpu().step_compute_seconds(&spec));
        let cfg = StepConfig::cgx(rtx.clone());
        let fifo = simulate_step_ordered(&cfg, &msgs, compute, MessageOrder::Fifo);
        let prio = simulate_step_ordered(&cfg, &msgs, compute, MessageOrder::Priority);
        let cross = cross_barrier_step(&cfg, &msgs, compute, clipping);
        rows.push(vec![
            model.to_string(),
            fmt_ms(fifo.step_seconds),
            fmt_ms(prio.step_seconds),
            match cross {
                Some(r) => fmt_ms(r.step_seconds),
                None => "n/a (clipping)".into(),
            },
        ]);
    }
    print!(
        "{}",
        render_table(
            "Scheduling ablations: CGX 4-bit on 8x RTX 3090",
            &["model", "FIFO", "priority", "cross-barrier"],
            &rows,
        )
    );
    note("paper: 'cross-barrier optimization does not provide significant performance in a single node setup'.");
    note("gradient clipping requires the global gradient before the update (Technical Issue 3) -> n/a for Transformers.");
}
