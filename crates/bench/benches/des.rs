//! Criterion benchmarks for the DES cores: events/sec of the
//! calendar-wheel engine at 8/64/512 ranks on SRA and ring graphs, and
//! the legacy binary-heap core on the same workloads — the measurement
//! behind the ">= 10x on the 512-rank SRA graph" acceptance bar.
//!
//! Graphs are prebuilt and scratch is reused, so the wheel numbers
//! measure the run loop itself (the steady state of a sweep); the
//! legacy numbers include its per-run op-list allocation, which is how
//! that core was always driven.

use cgx_simnet::des::legacy;
use cgx_simnet::{build_ring, build_sra, run, DesScratch, Fabric, OpGraph, SimError};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

const BYTES: f64 = 100e6;
const LANE_BW: f64 = 1e9;
const ALPHA: f64 = 5e-6;

type Builder = fn(&mut OpGraph, usize) -> Result<(), SimError>;
type LegacyOps = fn(usize, f64) -> Vec<legacy::SendOp>;

fn bench_wheel(c: &mut Criterion) {
    let mut group = c.benchmark_group("des-wheel");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let builders: [(&str, Builder); 2] = [("sra", build_sra), ("ring", build_ring)];
    for &ranks in &[8usize, 64, 512] {
        for &(name, build) in &builders {
            let mut graph = OpGraph::new();
            build(&mut graph, ranks).unwrap();
            let mut scratch = DesScratch::new();
            let fabric = Fabric::uniform(ranks, LANE_BW, ALPHA).unwrap();
            group.throughput(Throughput::Elements(graph.len() as u64));
            group.bench_with_input(BenchmarkId::new(name, ranks), &ranks, |b, _| {
                b.iter(|| black_box(run(&graph, &fabric, BYTES, &mut scratch).unwrap()))
            });
        }
    }
    group.finish();
}

fn bench_legacy(c: &mut Criterion) {
    let mut group = c.benchmark_group("des-legacy");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let op_lists: [(&str, LegacyOps); 2] = [("sra", legacy::sra_ops), ("ring", legacy::ring_ops)];
    for &ranks in &[8usize, 64, 512] {
        for &(name, ops) in &op_lists {
            let n_ops = ops(ranks, BYTES / ranks as f64).len();
            let net = legacy::NetworkDes::new(ranks, LANE_BW, ALPHA);
            group.throughput(Throughput::Elements(n_ops as u64));
            group.bench_with_input(BenchmarkId::new(name, ranks), &ranks, |b, _| {
                b.iter(|| {
                    let ops = ops(ranks, BYTES / ranks as f64);
                    black_box(net.run(&ops))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_wheel, bench_legacy);
criterion_main!(benches);
