//! The dense `f32` tensor type.

use crate::{Rng, Shape};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f32` tensor.
///
/// This is deliberately minimal: it owns a flat `Vec<f32>` plus a [`Shape`],
/// and exposes only the element-wise and reduction operations the CGX stack
/// needs (compression, error feedback, SGD updates, PowerSGD factorization).
///
/// # Examples
///
/// ```
/// use cgx_tensor::Tensor;
/// let mut t = Tensor::zeros(&[2, 2]);
/// t.fill(1.5);
/// assert_eq!(t.sum(), 6.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::from(dims);
        let len = shape.len();
        Tensor {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let mut t = Tensor::zeros(dims);
        t.fill(value);
        t
    }

    /// Creates a tensor from existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(dims: &[usize], data: Vec<f32>) -> Self {
        let shape = Shape::from(dims);
        assert_eq!(
            shape.len(),
            data.len(),
            "shape {shape} does not match data length {}",
            data.len()
        );
        Tensor { shape, data }
    }

    /// Creates a flat vector tensor from data.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor::from_vec(&[data.len()], data.to_vec())
    }

    /// Standard-normal random tensor.
    pub fn randn(rng: &mut Rng, dims: &[usize]) -> Self {
        let shape = Shape::from(dims);
        let data = (0..shape.len()).map(|_| rng.normal() as f32).collect();
        Tensor { shape, data }
    }

    /// Uniform random tensor in `[lo, hi)`.
    pub fn rand_uniform(rng: &mut Rng, dims: &[usize], lo: f32, hi: f32) -> Self {
        let shape = Shape::from(dims);
        let data = (0..shape.len())
            .map(|_| rng.uniform_range(lo as f64, hi as f64) as f32)
            .collect();
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the flat data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the tensor with a new shape of identical element count.
    ///
    /// # Panics
    ///
    /// Panics if element counts differ.
    pub fn reshape(mut self, dims: &[usize]) -> Self {
        let shape = Shape::from(dims);
        assert_eq!(
            shape.len(),
            self.data.len(),
            "reshape changes element count"
        );
        self.shape = shape;
        self
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: f32) {
        for x in &mut self.data {
            *x = value;
        }
    }

    /// Element-wise `self += other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        self.zip_assert(other);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Element-wise `self -= other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub_assign(&mut self, other: &Tensor) {
        self.zip_assert(other);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a -= b;
        }
    }

    /// Scales every element by `factor`.
    pub fn scale(&mut self, factor: f32) {
        for x in &mut self.data {
            *x *= factor;
        }
    }

    /// `self += alpha * other` (BLAS axpy).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        self.zip_assert(other);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Dot product with another tensor of identical shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn dot(&self, other: &Tensor) -> f64 {
        self.zip_assert(other);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| *a as f64 * *b as f64)
            .sum()
    }

    /// Sum of all elements (accumulated in f64).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|x| *x as f64).sum()
    }

    /// Euclidean (L2) norm, accumulated in f64 for stability.
    pub fn norm2(&self) -> f64 {
        self.data
            .iter()
            .map(|x| *x as f64 * *x as f64)
            .sum::<f64>()
            .sqrt()
    }

    /// Squared L2 norm.
    pub fn norm2_sq(&self) -> f64 {
        self.data.iter().map(|x| *x as f64 * *x as f64).sum()
    }

    /// Maximum absolute element (0 for an all-zero tensor).
    pub fn norm_inf(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, x| m.max(x.abs()))
    }

    /// L2 distance to another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn l2_distance(&self, other: &Tensor) -> f64 {
        self.zip_assert(other);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| {
                let d = *a as f64 - *b as f64;
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Clips every element into `[-bound, bound]`.
    ///
    /// # Panics
    ///
    /// Panics if `bound < 0`.
    pub fn clamp_abs(&mut self, bound: f32) {
        assert!(bound >= 0.0, "negative clamp bound");
        for x in &mut self.data {
            *x = x.clamp(-bound, bound);
        }
    }

    /// Returns the indices of the `k` largest-magnitude elements.
    ///
    /// Used by TopK sparsification. Ties are broken by lower index.
    ///
    /// # Panics
    ///
    /// Panics if `k > len()`.
    pub fn top_k_indices(&self, k: usize) -> Vec<usize> {
        assert!(k <= self.len(), "k={k} exceeds length {}", self.len());
        let mut idx: Vec<usize> = (0..self.len()).collect();
        // Partial selection: sort by descending |value|, stable on index.
        idx.select_nth_unstable_by(
            k.saturating_sub(1).min(self.len().saturating_sub(1)),
            |&a, &b| {
                self.data[b]
                    .abs()
                    .partial_cmp(&self.data[a].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            },
        );
        let mut out = idx[..k].to_vec();
        out.sort_unstable();
        out
    }

    fn zip_assert(&self, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {} vs {}",
            self.shape, other.shape
        );
    }
}

impl Index<usize> for Tensor {
    type Output = f32;

    fn index(&self, i: usize) -> &f32 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Tensor {
    fn index_mut(&mut self, i: usize) -> &mut f32 {
        &mut self.data[i]
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor<{}>", self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_fill() {
        let mut t = Tensor::zeros(&[3, 2]);
        assert_eq!(t.len(), 6);
        assert_eq!(t.sum(), 0.0);
        t.fill(2.0);
        assert_eq!(t.sum(), 12.0);
    }

    #[test]
    #[should_panic(expected = "does not match data length")]
    fn from_vec_length_mismatch_panics() {
        Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn arithmetic_ops() {
        let mut a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[0.5, 0.5, 0.5]);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[1.5, 2.5, 3.5]);
        a.sub_assign(&b);
        assert_eq!(a.as_slice(), &[1.0, 2.0, 3.0]);
        a.axpy(2.0, &b);
        assert_eq!(a.as_slice(), &[2.0, 3.0, 4.0]);
        a.scale(0.5);
        assert_eq!(a.as_slice(), &[1.0, 1.5, 2.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_shape_mismatch_panics() {
        let mut a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        a.add_assign(&b);
    }

    #[test]
    fn norms() {
        let t = Tensor::from_slice(&[3.0, -4.0]);
        assert!((t.norm2() - 5.0).abs() < 1e-9);
        assert_eq!(t.norm_inf(), 4.0);
        assert!((t.norm2_sq() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn dot_and_distance() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[3.0, 4.0]);
        assert_eq!(a.dot(&b), 11.0);
        assert!((a.l2_distance(&b) - (8.0f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]).reshape(&[2, 2]);
        assert_eq!(t.shape().dims(), &[2, 2]);
        assert_eq!(t.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "reshape changes element count")]
    fn bad_reshape_panics() {
        let _ = Tensor::from_slice(&[1.0, 2.0]).reshape(&[3]);
    }

    #[test]
    fn randn_has_reasonable_moments() {
        let mut rng = Rng::seed_from_u64(1);
        let t = Tensor::randn(&mut rng, &[10_000]);
        let mean = t.sum() / t.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        let var = t.norm2_sq() / t.len() as f64;
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn clamp_abs_bounds_values() {
        let mut t = Tensor::from_slice(&[-5.0, 0.2, 7.0]);
        t.clamp_abs(1.0);
        assert_eq!(t.as_slice(), &[-1.0, 0.2, 1.0]);
    }

    #[test]
    fn top_k_selects_largest_magnitudes() {
        let t = Tensor::from_slice(&[0.1, -9.0, 3.0, 0.0, -2.5, 8.0]);
        let idx = t.top_k_indices(3);
        assert_eq!(idx, vec![1, 2, 5]);
    }

    #[test]
    fn top_k_full_returns_all() {
        let t = Tensor::from_slice(&[1.0, 2.0]);
        assert_eq!(t.top_k_indices(2), vec![0, 1]);
    }

    #[test]
    fn indexing() {
        let mut t = Tensor::from_slice(&[1.0, 2.0]);
        t[0] = 5.0;
        assert_eq!(t[0], 5.0);
        assert_eq!(t[1], 2.0);
    }

    #[test]
    fn display_shows_shape() {
        assert_eq!(Tensor::zeros(&[2, 3]).to_string(), "Tensor<2x3>");
    }
}
