//! Table 4: cloud cost comparison — AWS p3.8xlarge (4x V100) vs Genesis
//! (4x RTX 3090), with and without CGX, on BERT question answering.
//!
//! Paper shape: AWS+NCCL leads Genesis+NCCL on raw throughput, but
//! Genesis+CGX nearly matches AWS raw throughput and roughly doubles its
//! tokens/second/$.

use cgx_bench::{fmt_items, note, render_table};
use cgx_core::cloud::{cost_efficiency, table4_offers};
use cgx_models::ModelId;

fn main() {
    let rows: Vec<Vec<String>> = table4_offers()
        .iter()
        .map(|offer| {
            let r = cost_efficiency(offer, ModelId::BertBase);
            vec![
                r.name.clone(),
                fmt_items(r.throughput),
                format!("{:.1}", r.price_per_hour),
                format!("{:.0}", r.items_per_second_per_dollar),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Table 4: cloud training cost efficiency (BERT-QA)",
            &[
                "Instance",
                "Throughput (tok/s)",
                "Price per hour ($)",
                "Tokens/second per $",
            ],
            &rows,
        )
    );
    note("paper: 4737 / 14407 / 14171 tok/s and 696 / 1181 / 2083 tok/s/$.");
}
