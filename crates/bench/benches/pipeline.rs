//! Criterion benchmark for the layer-parallel communication engine: one
//! synchronization step of a mixed large/small layer inventory across 8
//! worker threads, blocking per-layer loop vs [`CommEngine`].
//!
//! `pipeline_report` (the checked-in JSON artifact) measures the same
//! comparison over full model inventories; this bench is the statistically
//! disciplined version over a reduced inventory for regression tracking.

use cgx_collectives::reduce::{allreduce_scratch, Algorithm};
use cgx_collectives::{CommEngine, EngineOptions, ThreadCluster};
use cgx_compress::{CompressionScheme, Compressor, ScratchPool};
use cgx_tensor::{Rng, Tensor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

const WORLD: usize = 8;

/// A reduced transformer-block-like census: 6 quantized projection
/// weights interleaved with 10 tiny FP32 norm/bias tensors, twice over.
fn inventory() -> Vec<(usize, CompressionScheme)> {
    let mut layers = Vec::new();
    for _ in 0..2 {
        for _ in 0..3 {
            layers.push((16_384, CompressionScheme::cgx_default()));
            layers.push((512, CompressionScheme::None));
            layers.push((512, CompressionScheme::None));
        }
        for _ in 0..4 {
            layers.push((256, CompressionScheme::None));
        }
    }
    layers
}

fn run_once(engine: bool) {
    let layers = inventory();
    let pool = ScratchPool::new();
    let out = ThreadCluster::run(WORLD, |t| {
        let pool = pool.clone();
        let mut rng = Rng::seed_from_u64(100 + t.rank() as u64);
        let grads: Vec<Tensor> = layers.iter().map(|(n, _)| Tensor::randn(&mut rng, &[*n])).collect();
        let mut comp_rng = Rng::seed_from_u64(7);
        let alg = Algorithm::ScatterReduceAllgather;
        if engine {
            let mut eng = CommEngine::new(&t, pool.clone(), EngineOptions::default());
            let handles: Vec<_> = grads
                .iter()
                .zip(&layers)
                .map(|(g, (_, s))| eng.submit(alg, g, s.build(), &mut comp_rng))
                .collect();
            handles
                .into_iter()
                .map(|h| eng.wait(h).expect("wait").0)
                .collect::<Vec<_>>()
        } else {
            grads
                .iter()
                .zip(&layers)
                .map(|(g, (_, s))| {
                    let mut comp: Box<dyn Compressor> = s.build();
                    let mut lrng = Rng::seed_from_u64(comp_rng.next_u64());
                    allreduce_scratch(alg, &t, g, comp.as_mut(), &mut lrng, &pool)
                        .expect("allreduce")
                        .0
                })
                .collect::<Vec<_>>()
        }
    })
    .unwrap();
    black_box(out);
}

fn bench_pipeline(c: &mut Criterion) {
    let elements: usize = inventory().iter().map(|(n, _)| *n).sum();
    let mut group = c.benchmark_group("pipeline-8workers");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(3));
    group.throughput(Throughput::Elements(elements as u64));
    group.bench_function(BenchmarkId::new("sequential", "mixed"), |b| {
        b.iter(|| run_once(false));
    });
    group.bench_function(BenchmarkId::new("engine", "mixed"), |b| {
        b.iter(|| run_once(true));
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
