//! Builders for the six evaluation models.
//!
//! Each builder reconstructs the published architecture's parameter
//! inventory layer by layer, in forward order, including the small norm and
//! bias tensors that CGX's layer filters act on. Parameter totals are
//! asserted against the published counts in tests.

use crate::spec::{LayerKind, LayerSpec, ModelId, ModelSpec, Precision};

/// Builds the layer inventory and training-recipe constants for `id`.
pub fn build(id: ModelId) -> ModelSpec {
    match id {
        ModelId::ResNet50 => resnet50(),
        ModelId::Vgg16 => vgg16(),
        ModelId::VitBase => vit_base(),
        ModelId::TransformerXl => transformer_xl_base(),
        ModelId::BertBase => bert_base(),
        ModelId::Gpt2 => gpt2_small(),
    }
}

struct LayerList(Vec<LayerSpec>);

impl LayerList {
    fn new() -> Self {
        LayerList(Vec::new())
    }

    fn push(&mut self, name: impl Into<String>, kind: LayerKind, dims: &[usize]) {
        self.0.push(LayerSpec::new(name, kind, dims));
    }

    /// Convolution weight.
    fn conv(&mut self, name: &str, out_c: usize, in_c: usize, k: usize) {
        self.push(
            format!("{name}.weight"),
            LayerKind::Conv,
            &[out_c, in_c, k, k],
        );
    }

    /// Batch/layer norm: weight + bias of width `c`.
    fn norm(&mut self, name: &str, c: usize) {
        self.push(format!("{name}.weight"), LayerKind::Norm, &[c]);
        self.push(format!("{name}.bias"), LayerKind::Bias, &[c]);
    }

    /// Dense layer with bias.
    fn linear(&mut self, name: &str, in_f: usize, out_f: usize) {
        self.push(format!("{name}.weight"), LayerKind::Linear, &[out_f, in_f]);
        self.push(format!("{name}.bias"), LayerKind::Bias, &[out_f]);
    }

    /// Dense layer without bias.
    fn linear_no_bias(&mut self, name: &str, in_f: usize, out_f: usize) {
        self.push(format!("{name}.weight"), LayerKind::Linear, &[out_f, in_f]);
    }

    /// Embedding table.
    fn embedding(&mut self, name: &str, vocab: usize, dim: usize) {
        self.push(
            format!("{name}.weight"),
            LayerKind::Embedding,
            &[vocab, dim],
        );
    }
}

/// ResNet50 (He et al.) — ~25.6 M parameters, ImageNet classification.
pub fn resnet50() -> ModelSpec {
    let mut l = LayerList::new();
    l.conv("conv1", 64, 3, 7);
    l.norm("bn1", 64);
    let stage_blocks = [3usize, 4, 6, 3];
    let mut in_c = 64;
    for (s, &blocks) in stage_blocks.iter().enumerate() {
        let mid = 64 << s; // 64, 128, 256, 512
        let out = mid * 4;
        for b in 0..blocks {
            let p = format!("layer{}.{b}", s + 1);
            l.conv(&format!("{p}.conv1"), mid, in_c, 1);
            l.norm(&format!("{p}.bn1"), mid);
            l.conv(&format!("{p}.conv2"), mid, mid, 3);
            l.norm(&format!("{p}.bn2"), mid);
            l.conv(&format!("{p}.conv3"), out, mid, 1);
            l.norm(&format!("{p}.bn3"), out);
            if b == 0 {
                l.conv(&format!("{p}.downsample.0"), out, in_c, 1);
                l.norm(&format!("{p}.downsample.1"), out);
            }
            in_c = out;
        }
    }
    l.linear("fc", 2048, 1000);
    ModelSpec::from_parts(ModelId::ResNet50, l.0, 32, 1, Precision::AmpLevel1)
}

/// VGG16 (configuration D) — ~138 M parameters, dominated by the FC head.
pub fn vgg16() -> ModelSpec {
    let mut l = LayerList::new();
    let cfg: [&[usize]; 5] = [
        &[64, 64],
        &[128, 128],
        &[256, 256, 256],
        &[512, 512, 512],
        &[512, 512, 512],
    ];
    let mut in_c = 3;
    let mut idx = 0;
    for stage in cfg {
        for &out_c in stage {
            l.conv(&format!("features.{idx}"), out_c, in_c, 3);
            l.push(format!("features.{idx}.bias"), LayerKind::Bias, &[out_c]);
            in_c = out_c;
            idx += 1;
        }
    }
    l.linear("classifier.0", 512 * 7 * 7, 4096);
    l.linear("classifier.3", 4096, 4096);
    l.linear("classifier.6", 4096, 1000);
    ModelSpec::from_parts(ModelId::Vgg16, l.0, 32, 1, Precision::AmpLevel1)
}

/// ViT-B/16 (Dosovitskiy et al.) — ~86 M parameters.
pub fn vit_base() -> ModelSpec {
    let d = 768;
    let mut l = LayerList::new();
    l.push("cls_token", LayerKind::Other, &[d]);
    l.push("pos_embed", LayerKind::Other, &[197, d]);
    l.push("patch_embed.proj.weight", LayerKind::Conv, &[d, 3, 16, 16]);
    l.push("patch_embed.proj.bias", LayerKind::Bias, &[d]);
    for b in 0..12 {
        let p = format!("blocks.{b}");
        l.norm(&format!("{p}.norm1"), d);
        l.linear(&format!("{p}.attn.qkv"), d, 3 * d);
        l.linear(&format!("{p}.attn.proj"), d, d);
        l.norm(&format!("{p}.norm2"), d);
        l.linear(&format!("{p}.mlp.fc1"), d, 4 * d);
        l.linear(&format!("{p}.mlp.fc2"), 4 * d, d);
    }
    l.norm("norm", d);
    l.linear("head", d, 1000);
    ModelSpec::from_parts(ModelId::VitBase, l.0, 72, 1, Precision::AmpLevel1)
}

/// Transformer-XL base on WikiText-103 — ~191 M parameters, of which
/// ~137 M sit in the vocabulary embedding. The paper calls this "the model
/// with the most non-uniform layer sizes" and uses it as the adaptive
/// compression case study. Sequence (target) length 192, per-GPU batch 32.
pub fn transformer_xl_base() -> ModelSpec {
    let d = 512;
    let d_inner = 2048;
    let vocab = 267_735; // WikiText-103 vocabulary
    let mut l = LayerList::new();
    l.embedding("word_emb", vocab, d);
    for b in 0..16 {
        let p = format!("layers.{b}");
        l.linear_no_bias(&format!("{p}.attn.qkv_net"), d, 3 * d);
        l.linear_no_bias(&format!("{p}.attn.o_net"), d, d);
        l.linear_no_bias(&format!("{p}.attn.r_net"), d, d);
        l.norm(&format!("{p}.attn.layer_norm"), d);
        l.linear(&format!("{p}.ff.CoreNet.0"), d, d_inner);
        l.linear(&format!("{p}.ff.CoreNet.3"), d_inner, d);
        l.norm(&format!("{p}.ff.layer_norm"), d);
    }
    ModelSpec::from_parts(ModelId::TransformerXl, l.0, 32, 192, Precision::AmpLevel2)
}

/// BERT base for SQuAD question answering — ~109 M parameters. Per-GPU
/// batch 3, sequence length 384, FP32 (paper Appendix C).
pub fn bert_base() -> ModelSpec {
    let d = 768;
    let mut l = LayerList::new();
    l.embedding("embeddings.word_embeddings", 30_522, d);
    l.embedding("embeddings.position_embeddings", 512, d);
    l.embedding("embeddings.token_type_embeddings", 2, d);
    l.norm("embeddings.LayerNorm", d);
    for b in 0..12 {
        let p = format!("encoder.layer.{b}");
        l.linear(&format!("{p}.attention.self.query"), d, d);
        l.linear(&format!("{p}.attention.self.key"), d, d);
        l.linear(&format!("{p}.attention.self.value"), d, d);
        l.linear(&format!("{p}.attention.output.dense"), d, d);
        l.norm(&format!("{p}.attention.output.LayerNorm"), d);
        l.linear(&format!("{p}.intermediate.dense"), d, 4 * d);
        l.linear(&format!("{p}.output.dense"), 4 * d, d);
        l.norm(&format!("{p}.output.LayerNorm"), d);
    }
    l.linear("pooler.dense", d, d);
    l.linear("qa_outputs", d, 2);
    ModelSpec::from_parts(ModelId::BertBase, l.0, 3, 384, Precision::Fp32)
}

/// GPT-2 small on WikiText-2 — ~124 M parameters. Per-GPU batch 3,
/// sequence length 1024, AMP level 2.
pub fn gpt2_small() -> ModelSpec {
    let d = 768;
    let mut l = LayerList::new();
    l.embedding("wte", 50_257, d);
    l.embedding("wpe", 1024, d);
    for b in 0..12 {
        let p = format!("h.{b}");
        l.norm(&format!("{p}.ln_1"), d);
        l.linear(&format!("{p}.attn.c_attn"), d, 3 * d);
        l.linear(&format!("{p}.attn.c_proj"), d, d);
        l.norm(&format!("{p}.ln_2"), d);
        l.linear(&format!("{p}.mlp.c_fc"), d, 4 * d);
        l.linear(&format!("{p}.mlp.c_proj"), 4 * d, d);
    }
    l.norm("ln_f", d);
    ModelSpec::from_parts(ModelId::Gpt2, l.0, 3, 1024, Precision::AmpLevel2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_params(id: ModelId, expected_m: f64, tol_m: f64) {
        let m = ModelSpec::build(id);
        let got = m.param_count() as f64 / 1e6;
        assert!(
            (got - expected_m).abs() < tol_m,
            "{id}: {got:.2}M params, expected ~{expected_m}M"
        );
    }

    #[test]
    fn resnet50_param_count() {
        assert_params(ModelId::ResNet50, 25.56, 0.5);
    }

    #[test]
    fn vgg16_param_count() {
        assert_params(ModelId::Vgg16, 138.36, 1.0);
    }

    #[test]
    fn vit_base_param_count() {
        assert_params(ModelId::VitBase, 86.6, 1.5);
    }

    #[test]
    fn transformer_xl_param_count() {
        assert_params(ModelId::TransformerXl, 191.9, 3.0);
    }

    #[test]
    fn bert_base_param_count() {
        assert_params(ModelId::BertBase, 109.5, 1.5);
    }

    #[test]
    fn gpt2_param_count() {
        assert_params(ModelId::Gpt2, 124.4, 1.5);
    }

    #[test]
    fn txl_embedding_dominates() {
        let m = ModelSpec::build(ModelId::TransformerXl);
        let big = m.largest_layer();
        assert_eq!(big.kind(), LayerKind::Embedding);
        assert!(big.elements() as f64 / m.param_count() as f64 > 0.6);
    }

    #[test]
    fn vgg_fc_head_dominates() {
        let m = ModelSpec::build(ModelId::Vgg16);
        let big = m.largest_layer();
        assert_eq!(big.kind(), LayerKind::Linear);
        assert!(big.elements() > 100_000_000 / 2 * 2 / 3); // fc6: 102.7M
    }

    #[test]
    fn filtered_fraction_is_small_everywhere() {
        for id in ModelId::all() {
            let m = ModelSpec::build(id);
            assert!(
                m.filtered_fraction() < 0.01,
                "{id}: norm/bias fraction {}",
                m.filtered_fraction()
            );
        }
    }

    #[test]
    fn all_models_have_unique_layer_names() {
        for id in ModelId::all() {
            let m = ModelSpec::build(id);
            let mut names: Vec<&str> = m.layers().iter().map(|l| l.name()).collect();
            let total = names.len();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), total, "{id} has duplicate layer names");
        }
    }

    #[test]
    fn grad_bytes_respects_precision() {
        let txl = ModelSpec::build(ModelId::TransformerXl);
        // AMP level 2 => 2 bytes per element.
        assert_eq!(txl.grad_bytes(), txl.param_count() * 2);
        let bert = ModelSpec::build(ModelId::BertBase);
        assert_eq!(bert.grad_bytes(), bert.param_count() * 4);
    }

    #[test]
    fn resnet_layer_structure() {
        let m = ModelSpec::build(ModelId::ResNet50);
        // 1 stem + 16 blocks x 3 convs + 4 downsamples + fc = 54 weight
        // tensors of kind Conv/Linear.
        let convs = m
            .layers()
            .iter()
            .filter(|l| matches!(l.kind(), LayerKind::Conv))
            .count();
        assert_eq!(convs, 1 + 16 * 3 + 4);
        let linears = m
            .layers()
            .iter()
            .filter(|l| matches!(l.kind(), LayerKind::Linear))
            .count();
        assert_eq!(linears, 1);
    }

    #[test]
    fn batch_recipe_totals_match_paper() {
        // Appendix C: total batches on 8 GPUs.
        assert_eq!(ModelSpec::build(ModelId::ResNet50).per_gpu_batch() * 8, 256);
        assert_eq!(ModelSpec::build(ModelId::Vgg16).per_gpu_batch() * 8, 256);
        assert_eq!(ModelSpec::build(ModelId::VitBase).per_gpu_batch() * 8, 576);
        assert_eq!(
            ModelSpec::build(ModelId::TransformerXl).per_gpu_batch() * 8,
            256
        );
        assert_eq!(ModelSpec::build(ModelId::Gpt2).per_gpu_batch() * 8, 24);
    }
}
